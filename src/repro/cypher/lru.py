"""A small thread-safe LRU cache with hit/miss accounting.

Used to bound the engine's parse cache (previously an unbounded dict)
and to back the query service's result cache.  Both caches expose their
counters on the ``/metrics`` endpoint, so the cache keeps hit/miss
statistics itself rather than leaving that to callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

_MISSING = object()


class LRUCache:
    """Least-recently-used cache bounded to ``maxsize`` entries."""

    GUARDED_BY = {
        "_data": "_lock",
        "hits": "write:_lock",
        "misses": "write:_lock",
        "evictions": "write:_lock",
        "maxsize": "frozen",
    }

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the oldest if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def info(self) -> dict[str, Any]:
        """Size and hit-rate statistics, for metrics endpoints."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }
