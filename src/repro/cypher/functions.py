"""Built-in scalar functions and aggregates of the Cypher subset.

Scalar functions receive already-evaluated arguments.  Aggregates are
identified by name (:data:`AGGREGATE_NAMES`) and computed by the engine
over each group; the callables here receive the full list of collected
(non-null) values.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.cypher.errors import CypherRuntimeError
from repro.cypher.values import sort_key
from repro.graphdb.model import Node, Relationship

AGGREGATE_NAMES = frozenset(
    {
        "count", "collect", "sum", "avg", "min", "max",
        "percentilecont", "percentiledisc", "stdev",
    }
)


def _null_safe(func: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a scalar function to return null when its first arg is null."""

    def wrapper(*args: Any) -> Any:
        if args and args[0] is None:
            return None
        return func(*args)

    return wrapper


def _size(value: Any) -> Any:
    if isinstance(value, (list, tuple, str, dict)):
        return len(value)
    raise CypherRuntimeError(f"size() not defined for {type(value).__name__}")


def _labels(value: Any) -> list[str]:
    if not isinstance(value, Node):
        raise CypherRuntimeError("labels() requires a node")
    return sorted(value.labels)


def _type(value: Any) -> str:
    if not isinstance(value, Relationship):
        raise CypherRuntimeError("type() requires a relationship")
    return value.type


def _id(value: Any) -> int:
    if isinstance(value, (Node, Relationship)):
        return value.id
    raise CypherRuntimeError("id() requires a node or relationship")


def _keys(value: Any) -> list[str]:
    if isinstance(value, (Node, Relationship)):
        return sorted(value.properties)
    if isinstance(value, dict):
        return sorted(value)
    raise CypherRuntimeError("keys() requires a node, relationship, or map")


def _properties(value: Any) -> dict[str, Any]:
    if isinstance(value, (Node, Relationship)):
        return dict(value.properties)
    if isinstance(value, dict):
        return dict(value)
    raise CypherRuntimeError("properties() requires a node, relationship, or map")


def _to_integer(value: Any) -> Any:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(float(value)) if "." in value else int(value, 10)
        except ValueError:
            return None
    raise CypherRuntimeError(f"toInteger() not defined for {type(value).__name__}")


def _to_float(value: Any) -> Any:
    if isinstance(value, bool):
        raise CypherRuntimeError("toFloat() not defined for booleans")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    raise CypherRuntimeError(f"toFloat() not defined for {type(value).__name__}")


def _to_string(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _head(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise CypherRuntimeError("head() requires a list")
    return value[0] if value else None


def _last(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise CypherRuntimeError("last() requires a list")
    return value[-1] if value else None


def _range(start: Any, end: Any, step: Any = 1) -> list[int]:
    if step == 0:
        raise CypherRuntimeError("range() step must not be zero")
    sign = 1 if step > 0 else -1
    return list(range(int(start), int(end) + sign, int(step)))


def _substring(value: str, start: int, length: int | None = None) -> str:
    if length is None:
        return value[start:]
    return value[start : start + length]


def _round(value: float, precision: int = 0) -> float:
    result = round(float(value) + 0.0, int(precision))
    return result if precision else float(result)


def _start_node(store_getter, value: Any) -> Node:
    if not isinstance(value, Relationship):
        raise CypherRuntimeError("startNode() requires a relationship")
    return store_getter(value.start_id)


def _path_nodes(value: Any) -> list[Node]:
    if not isinstance(value, (list, tuple)):
        raise CypherRuntimeError("nodes() requires a path")
    return [item for item in value if isinstance(item, Node)]


def _path_relationships(value: Any) -> list[Relationship]:
    if not isinstance(value, (list, tuple)):
        raise CypherRuntimeError("relationships() requires a path")
    return [item for item in value if isinstance(item, Relationship)]


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "nodes": _null_safe(_path_nodes),
    "relationships": _null_safe(_path_relationships),
    "size": _null_safe(_size),
    "length": _null_safe(_size),
    "labels": _null_safe(_labels),
    "type": _null_safe(_type),
    "id": _null_safe(_id),
    "keys": _null_safe(_keys),
    "properties": _null_safe(_properties),
    "tointeger": _null_safe(_to_integer),
    "tofloat": _null_safe(_to_float),
    "tostring": _null_safe(_to_string),
    "toupper": _null_safe(lambda s: s.upper()),
    "tolower": _null_safe(lambda s: s.lower()),
    "trim": _null_safe(lambda s: s.strip()),
    "ltrim": _null_safe(lambda s: s.lstrip()),
    "rtrim": _null_safe(lambda s: s.rstrip()),
    "reverse": _null_safe(lambda s: s[::-1] if isinstance(s, str) else list(reversed(s))),
    "split": _null_safe(lambda s, sep: s.split(sep)),
    "replace": _null_safe(lambda s, old, new: s.replace(old, new)),
    "substring": _null_safe(_substring),
    "left": _null_safe(lambda s, n: s[:n]),
    "right": _null_safe(lambda s, n: s[len(s) - n:] if n < len(s) else s),
    "abs": _null_safe(abs),
    "sign": _null_safe(lambda x: (x > 0) - (x < 0)),
    "ceil": _null_safe(lambda x: float(math.ceil(x))),
    "floor": _null_safe(lambda x: float(math.floor(x))),
    "round": _null_safe(_round),
    "sqrt": _null_safe(lambda x: math.sqrt(x)),
    "log": _null_safe(lambda x: math.log(x)),
    "log10": _null_safe(lambda x: math.log10(x)),
    "exp": _null_safe(lambda x: math.exp(x)),
    "coalesce": _coalesce,
    "head": _head,
    "last": _last,
    "tail": _null_safe(lambda xs: list(xs[1:])),
    "range": _range,
    "exists": lambda value: value is not None,
}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


def agg_count(values: list[Any]) -> int:
    return len(values)


def agg_collect(values: list[Any]) -> list[Any]:
    return list(values)


def agg_sum(values: list[Any]) -> Any:
    return sum(values) if values else 0


def agg_avg(values: list[Any]) -> Any:
    return sum(values) / len(values) if values else None


def agg_min(values: list[Any]) -> Any:
    return min(values, key=sort_key) if values else None


def agg_max(values: list[Any]) -> Any:
    return max(values, key=sort_key) if values else None


def agg_stdev(values: list[Any]) -> Any:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


def agg_percentile_cont(values: list[Any], percentile: float) -> Any:
    """Linear-interpolation percentile, matching Neo4j's percentileCont."""
    if not values:
        return None
    if not 0.0 <= percentile <= 1.0:
        raise CypherRuntimeError("percentile must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = percentile * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def agg_percentile_disc(values: list[Any], percentile: float) -> Any:
    """Nearest-rank percentile, matching Neo4j's percentileDisc."""
    if not values:
        return None
    if not 0.0 <= percentile <= 1.0:
        raise CypherRuntimeError("percentile must be in [0, 1]")
    ordered = sorted(values)
    rank = int(math.ceil(percentile * len(ordered)))
    return ordered[max(rank - 1, 0)]
