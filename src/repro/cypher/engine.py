"""Query execution: the clause pipeline.

A query is executed as a pipeline of row transformations.  A *row* is a
dict mapping variable names to values (nodes, relationships, scalars,
lists).  Each clause consumes the rows from the previous clause:

    MATCH      -> expands each row into pattern matches (a join)
    UNWIND     -> one output row per list element
    WITH/RETURN-> projection, implicit grouping with aggregates,
                  DISTINCT, ORDER BY, SKIP, LIMIT
    CREATE/MERGE/SET/REMOVE/DELETE -> mutations, rows pass through

Parsed queries are cached per engine in a bounded LRU, so re-running the
paper's study queries on fresh snapshots costs no re-parsing while an
adversarial stream of distinct queries cannot grow memory without bound.

MATCH clauses execute through the cost-based planner
(:mod:`repro.cypher.planner`): WHERE conjuncts are pushed to bind time,
indexed equality conjuncts become index seeks, and multi-pattern
clauses are join-reordered.  ``optimize=False`` builds a naive engine
(textual pattern order, WHERE evaluated on complete bindings only) —
the reference executor for the optimizer-equivalence test harness and
the latency benchmarks' baseline.

The engine is safe for concurrent *read* queries: per-run state
(parameters, the active guard) lives in thread-local storage, and the
query service serializes write queries through the store's write lock.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.analytics.registry import ProcedureContext, get_procedure, suggest
from repro.cypher import ast
from repro.cypher.errors import CypherRuntimeError
from repro.cypher.fingerprint import fingerprint_query
from repro.cypher.functions import (
    AGGREGATE_NAMES,
    SCALAR_FUNCTIONS,
    agg_avg,
    agg_collect,
    agg_count,
    agg_max,
    agg_min,
    agg_percentile_cont,
    agg_percentile_disc,
    agg_stdev,
    agg_sum,
)
from repro.cypher.guard import QueryGuard
from repro.cypher.lru import LRUCache
from repro.cypher.matcher import PatternMatcher
from repro.cypher.parser import parse
from repro.cypher.planner import MatchPlan, plan_match
from repro.cypher.result import QueryResult, WriteStats
from repro.cypher.values import (
    compare,
    equals,
    hash_key,
    is_truthy,
    list_membership,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    sort_key,
)
from repro.graphdb.model import Node, Relationship
from repro.graphdb.store import GraphStore
from repro.obs import NULL_TRACER, ProfileNode, Profiler, collecting, record_access

Row = dict[str, Any]


#: Clause types that mutate the store; used to route queries to the
#: store's write lock (everything else can run under a shared read lock).
_WRITE_CLAUSES = (
    ast.CreateClause,
    ast.MergeClause,
    ast.SetClause,
    ast.RemoveClause,
    ast.DeleteClause,
)

#: Parse-cache bound: generous for study workloads (dozens of distinct
#: queries) while keeping an adversarial query stream in check.
DEFAULT_PARSE_CACHE_SIZE = 512


@dataclass(frozen=True)
class Explanation:
    """EXPLAIN output: the plan lines plus static lint diagnostics."""

    plan: list[str]
    warnings: list  # list[repro.lint.Diagnostic]

    def __iter__(self):
        return iter(self.plan)


class CypherEngine:
    """Executes Cypher-subset queries against a :class:`GraphStore`."""

    def __init__(
        self,
        store: GraphStore,
        parse_cache_size: int = DEFAULT_PARSE_CACHE_SIZE,
        optimize: bool = True,
    ):
        self.store = store
        #: Optimizer switch: False forces the naive executor (textual
        #: join order, no pushdown) — the equivalence-testing baseline.
        self.optimize = optimize
        self._matcher = PatternMatcher(store, self._evaluate, self._tick)
        self._parse_cache: LRUCache = LRUCache(parse_cache_size)
        #: query text -> (fingerprint, normalized text).  Keyed by the
        #: raw text like the parse cache, so the statement-statistics
        #: path never re-walks the AST for a repeated query.
        self._fingerprint_cache: LRUCache = LRUCache(parse_cache_size)
        self._tls = threading.local()
        #: Span tracer; the query service swaps in its own so engine
        #: spans (parse, execute) nest under the request's trace.
        self.tracer = NULL_TRACER
        #: Planner statistics (:class:`repro.analytics.GraphStatistics`).
        #: When set, MATCH planning estimates cardinalities from measured
        #: label counts and expansion factors; when None the planner
        #: keeps its uniform-cost model.
        self.statistics = None
        #: Precomputed analytics (:class:`repro.analytics.AnalyticsReport`).
        #: Zero-argument ``CALL`` invocations are served from it whenever
        #: its version matches the store's mutation counter.
        self.analytics = None
        #: How many CALL executions were served from ``analytics``.
        self.procedure_cache_hits = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        query: str,
        parameters: dict[str, Any] | None = None,
        guard: QueryGuard | None = None,
        profiler: Profiler | None = None,
    ) -> QueryResult:
        """Parse (with caching) and execute a query.

        ``guard`` imposes a cooperative time budget and a result row
        limit; see :class:`repro.cypher.guard.QueryGuard`.  ``profiler``
        collects the executed operator tree (rows, store hits, wall
        time per clause) — see :meth:`profile` for the one-call form.
        """
        with self.tracer.span("parse", query_chars=len(query)):
            tree = self._parsed(query)
        self._tls.guard = guard
        try:
            with self.tracer.span("execute") as span:
                if profiler is None:
                    result = self._execute(tree, parameters or {})
                else:
                    with collecting(profiler.collector):
                        result = self._execute(tree, parameters or {}, profiler)
                    profiler.finish(len(result.records))
                if span is not None:
                    span.attributes["rows"] = len(result.records)
                    if profiler is not None and profiler.root.hits:
                        span.attributes["counters"] = dict(profiler.root.hits)
        finally:
            self._tls.guard = None
            self._tls.parameters = {}
        if guard is not None:
            guard.check_rows(len(result.records))
        return result

    def profile(
        self,
        query: str,
        parameters: dict[str, Any] | None = None,
        guard: QueryGuard | None = None,
    ) -> tuple[QueryResult, ProfileNode]:
        """Execute a query under PROFILE: run it for real and return the
        result together with the annotated operator tree — per executed
        clause, the rows produced, the store hits broken down by access
        path (index seek / label scan / full scan / expand), and the
        wall time."""
        profiler = Profiler()
        result = self.run(query, parameters, guard, profiler=profiler)
        return result, profiler.root

    def is_write_query(self, query: str) -> bool:
        """True when the query contains any mutating clause.

        The query service uses this to decide between the store's shared
        read lock and its exclusive write lock, and to bypass the result
        cache for writes.
        """
        tree = self._parsed(query)
        parts = (tree, *tree.union_parts)
        return any(
            isinstance(clause, _WRITE_CLAUSES)
            for part in parts
            for clause in part.clauses
        )

    def parse_cache_info(self) -> dict[str, Any]:
        """Size and hit-rate of the bounded parse cache (for /metrics)."""
        return self._parse_cache.info()

    def fingerprint(self, query: str) -> tuple[str, str]:
        """``(fingerprint, normalized text)`` for a query — the stable
        statement identity used by :mod:`repro.obs.statements`.  Two
        queries differing only in literals, parameter names, whitespace,
        or keyword case share a fingerprint (see
        :mod:`repro.cypher.fingerprint`).  Cached alongside the parse
        cache, so the steady-state cost is one LRU lookup.
        """
        cached = self._fingerprint_cache.get(query)
        if cached is None:
            cached = fingerprint_query(self._parsed(query))
            self._fingerprint_cache.put(query, cached)
        return cached

    def _parsed(self, query: str) -> ast.Query:
        tree = self._parse_cache.get(query)
        if tree is None:
            tree = parse(query)
            self._parse_cache.put(query, tree)
        return tree

    def explain(self, query: str) -> "Explanation":
        """Describe how each MATCH would be executed (plan introspection).

        For every path pattern, reports the anchor element the planner
        picks and the access path (index seek, label scan, or full
        scan), with its estimated cardinality — the information behind
        the ablation benchmarks.  The result also carries the static
        lint diagnostics for the query (see :mod:`repro.lint`), so
        every EXPLAIN surfaces ontology mistakes before execution;
        iterating an :class:`Explanation` yields the plan lines, which
        keeps ``for line in engine.explain(q)`` working.
        """
        # Imported lazily: repro.lint depends on the cypher parser, so a
        # module-level import would be circular.
        from repro.lint import QueryLinter

        tree = self._parsed(query)
        plan: list[str] = []
        for clause in tree.clauses:
            if isinstance(clause, ast.MatchClause):
                plan.extend(self._explain_match(clause))
            elif isinstance(clause, ast.CallClause):
                plan.append(self._explain_call(clause))
            else:
                plan.append(type(clause).__name__.replace("Clause", "").upper())
        warnings = QueryLinter(self.store).lint_tree(tree)
        return Explanation(plan, warnings)

    def _explain_match(self, clause: ast.MatchClause) -> list[str]:
        """Plan lines for one MATCH: per pattern in join order, the
        anchor/access-path description; then one line per pushdown
        decision (promoted seeks, bind-time filters, the residual)."""
        kind = "OPTIONAL MATCH" if clause.optional else "MATCH"
        if not self.optimize:
            return [
                f"{kind} {self._matcher.describe_pattern(pattern, {})}"
                for pattern in clause.patterns
            ]
        match_plan = self._plan_clause(clause, frozenset())
        lines: list[str] = []
        total = len(match_plan.patterns)
        for rank, (source, pattern) in enumerate(
            zip(match_plan.order, match_plan.patterns, strict=True)
        ):
            line = f"{kind} {self._matcher.describe_pattern(pattern, {})}"
            if total > 1:
                line += f" join={rank + 1}/{total} pattern={source}"
            if match_plan.estimates is not None:
                line += f" est~{match_plan.estimates[rank]:.0f}"
            lines.append(line)
        lines.extend(f"  {text}" for text in match_plan.describe_predicates())
        return lines

    def _explain_call(self, clause: ast.CallClause) -> str:
        """One plan line for a CALL: the procedure, the projected
        columns, and whether the build-time precompute would serve it."""
        spec = get_procedure(clause.procedure)
        if spec is None:
            return f"CALL {clause.procedure} (unknown procedure)"
        columns = [item.alias for item in clause.yields] or list(spec.columns)
        line = f"CALL {spec.name} yield=[{', '.join(columns)}]"
        if (
            not clause.args
            and self.analytics is not None
            and self.analytics.version == self.store.version
            and spec.name in self.analytics.procedures
        ):
            line += " precomputed"
        return line

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------

    def _execute(
        self,
        query: ast.Query,
        parameters: dict[str, Any],
        profiler: Profiler | None = None,
    ) -> QueryResult:
        self._tls.parameters = parameters
        result = self._execute_union_part(query.clauses, parameters, profiler, 0, query)
        for index, part in enumerate(query.union_parts, start=1):
            other = self._execute_union_part(part.clauses, parameters, profiler, index, query)
            if other.columns != result.columns:
                raise CypherRuntimeError(
                    f"UNION column mismatch: {result.columns} vs {other.columns}"
                )
            result.records.extend(other.records)
            _merge_stats(result.stats, other.stats)
        if query.union_parts and not query.union_all:
            seen: set[Any] = set()
            unique: list[Row] = []
            for record in result.records:
                key = tuple(hash_key(record[col]) for col in result.columns)
                if key not in seen:
                    seen.add(key)
                    unique.append(record)
            result.records = unique
        return result

    def _execute_union_part(
        self,
        clauses: tuple[ast.Clause, ...],
        parameters: dict[str, Any],
        profiler: Profiler | None,
        index: int,
        query: ast.Query,
    ) -> QueryResult:
        """One UNION part, wrapped in its own profile operator when the
        query actually has UNION parts."""
        if profiler is None or not query.union_parts:
            return self._execute_part(clauses, parameters, profiler)
        total = len(query.union_parts) + 1
        with profiler.operator("UnionPart", f"{index + 1}/{total}") as node:
            result = self._execute_part(clauses, parameters, profiler)
            node.rows = len(result.records)
        return result

    def _execute_part(
        self,
        clauses: tuple[ast.Clause, ...],
        parameters: dict[str, Any],
        profiler: Profiler | None = None,
    ) -> QueryResult:
        context = _Context(parameters)
        rows: list[Row] = [{}]
        columns: list[str] | None = None
        for clause in clauses:
            if columns is not None:
                raise CypherRuntimeError("RETURN must be the final clause")
            if profiler is None:
                rows, columns = self._apply_clause(clause, rows, context)
            else:
                name = type(clause).__name__.replace("Clause", "")
                with profiler.operator(name, self._clause_detail(clause)) as node:
                    rows, columns = self._apply_clause(clause, rows, context)
                    node.rows = len(rows)
        if columns is None and clauses and isinstance(clauses[-1], ast.CallClause):
            # A standalone CALL (no trailing RETURN) yields its
            # procedure columns directly, like Neo4j.
            columns = [item.alias for item in self._effective_yields(clauses[-1])]
        if columns is None:
            return QueryResult([], [], context.stats)
        return QueryResult(columns, rows, context.stats)

    def _apply_clause(
        self, clause: ast.Clause, rows: list[Row], context: "_Context"
    ) -> tuple[list[Row], list[str] | None]:
        """Dispatch one clause; returns (rows, columns-if-RETURN)."""
        if isinstance(clause, ast.MatchClause):
            return self._apply_match(clause, rows, context), None
        if isinstance(clause, ast.UnwindClause):
            return self._apply_unwind(clause, rows, context), None
        if isinstance(clause, ast.WithClause):
            return self._apply_with(clause, rows, context), None
        if isinstance(clause, ast.ReturnClause):
            return self._apply_return(clause, rows, context)
        if isinstance(clause, ast.CreateClause):
            return self._apply_create(clause, rows, context), None
        if isinstance(clause, ast.MergeClause):
            return self._apply_merge(clause, rows, context), None
        if isinstance(clause, ast.SetClause):
            return self._apply_set(clause.items, rows, context), None
        if isinstance(clause, ast.RemoveClause):
            return self._apply_remove(clause, rows, context), None
        if isinstance(clause, ast.DeleteClause):
            return self._apply_delete(clause, rows, context), None
        if isinstance(clause, ast.CallClause):
            return self._apply_call(clause, rows, context), None
        raise CypherRuntimeError(f"unsupported clause {clause!r}")

    def _clause_detail(self, clause: ast.Clause) -> str:
        """The planner annotation shown next to a profiled operator."""
        if isinstance(clause, ast.MatchClause):
            kind = "optional " if clause.optional else ""
            if not self.optimize:
                described = "; ".join(
                    self._matcher.describe_pattern(pattern, {})
                    for pattern in clause.patterns
                )
                return f"{kind}{described}"
            match_plan = self._plan_clause(clause, frozenset())
            described = "; ".join(
                self._matcher.describe_pattern(pattern, {})
                for pattern in match_plan.patterns
            )
            detail = f"{kind}{described}"
            if match_plan.reordered:
                order = ",".join(str(i) for i in match_plan.order)
                detail += f" join_order=[{order}]"
            pushed = match_plan.pushed_count()
            if pushed:
                detail += f" pushed={pushed}"
            return detail
        if isinstance(clause, ast.MergeClause):
            return self._matcher.describe_pattern(clause.pattern, {})
        if isinstance(clause, ast.UnwindClause):
            return f"AS {clause.alias}"
        if isinstance(clause, (ast.WithClause, ast.ReturnClause)):
            flags = []
            if clause.distinct:
                flags.append("DISTINCT")
            if clause.order_by:
                flags.append("ORDER BY")
            if clause.limit is not None:
                flags.append("LIMIT")
            if not clause.star:
                flags.append(f"{len(clause.items)} items")
            return " ".join(flags)
        if isinstance(clause, ast.CallClause):
            detail = clause.procedure
            if clause.yields:
                aliases = ",".join(item.alias for item in clause.yields)
                detail += f" yield={aliases}"
            return detail
        return ""

    # -- reading clauses -------------------------------------------------

    def _plan_clause(
        self, clause: ast.MatchClause, bound: frozenset[str]
    ) -> MatchPlan:
        """Plan one MATCH clause against the current store statistics."""
        return plan_match(
            clause.patterns,
            clause.where,
            self.store,
            bound,
            statistics=self.statistics,
        )

    def _apply_match(
        self, clause: ast.MatchClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        output: list[Row] = []
        new_variables = _pattern_variables(clause.patterns)
        if self.optimize:
            # Rows of one pipeline stage share a variable set, so one
            # plan serves every row of the clause.
            bound = frozenset(rows[0]) if rows else frozenset()
            plan = self._plan_clause(clause, bound)
            patterns: tuple[ast.PathPattern, ...] = plan.patterns
            pushed = plan.pushed or None
            prefilters, residual = plan.prefilters, plan.residual
        else:
            patterns, pushed = clause.patterns, None
            prefilters, residual = (), clause.where
        for row in rows:
            context.row = row
            matched = False
            if all(is_truthy(self._evaluate(p, row)) for p in prefilters):
                for binding in self._matcher.match_patterns(patterns, row, pushed):
                    self._tick()
                    if residual is not None:
                        context.row = binding
                        if not is_truthy(self._evaluate(residual, binding)):
                            continue
                    matched = True
                    output.append(binding)
            if not matched and clause.optional:
                padded = dict(row)
                for name in new_variables:
                    padded.setdefault(name, None)
                output.append(padded)
        return output

    def _apply_unwind(
        self, clause: ast.UnwindClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        output: list[Row] = []
        for row in rows:
            context.row = row
            value = self._evaluate(clause.expression, row)
            if value is None:
                continue
            if not isinstance(value, (list, tuple)):
                value = [value]
            for item in value:
                extended = dict(row)
                extended[clause.alias] = item
                output.append(extended)
        return output

    def _effective_yields(
        self, clause: ast.CallClause
    ) -> tuple[ast.YieldItem, ...]:
        """The YIELD projection, defaulting to every procedure column."""
        if clause.yields:
            return clause.yields
        spec = get_procedure(clause.procedure)
        if spec is None:
            raise CypherRuntimeError(
                _unknown_procedure_message(clause.procedure)
            )
        return tuple(ast.YieldItem(column, column) for column in spec.columns)

    def _apply_call(
        self, clause: ast.CallClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        """Invoke a registered procedure and stream its records.

        Like UNWIND, each input row fans out into one output row per
        procedure record, so CALL composes with the rest of the
        pipeline.  Arguments are evaluated per row (they may reference
        bound variables or parameters); argument-free invocations are
        served from the engine's precomputed analytics when the cached
        generation matches the store.
        """
        spec = get_procedure(clause.procedure)
        if spec is None:
            raise CypherRuntimeError(
                _unknown_procedure_message(clause.procedure)
            )
        yields = clause.yields or tuple(
            ast.YieldItem(column, column) for column in spec.columns
        )
        for item in yields:
            if item.column not in spec.columns:
                raise CypherRuntimeError(
                    f"procedure {spec.name} has no column {item.column!r} "
                    f"(columns: {', '.join(spec.columns)})"
                )
        output: list[Row] = []
        for row in rows:
            context.row = row
            args = [self._evaluate(arg, row) for arg in clause.args]
            for record in self._procedure_rows(spec, args):
                self._tick()
                extended = dict(row)
                for item in yields:
                    extended[item.alias] = record[item.column]
                output.append(extended)
        return output

    def _procedure_rows(
        self, spec: Any, args: list[Any]
    ) -> list[dict[str, Any]]:
        """Rows for one procedure invocation, precomputed when possible."""
        if not args and self.analytics is not None:
            cached = self.analytics.procedures.get(spec.name)
            if cached is not None and self.analytics.version == self.store.version:
                self.procedure_cache_hits += 1
                record_access("procedure_cache_hit")
                return cached
        try:
            return spec.run(ProcedureContext(self.store, self.statistics), *args)
        except TypeError as exc:
            raise CypherRuntimeError(
                f"bad arguments for {spec.name}{spec.signature}: {exc}"
            ) from exc
        except ValueError as exc:
            raise CypherRuntimeError(
                f"bad arguments for {spec.name}{spec.signature}: {exc}"
            ) from exc

    def _apply_with(
        self, clause: ast.WithClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        projected = self._project(
            rows,
            clause.items,
            clause.distinct,
            clause.star,
            clause.order_by,
            clause.skip,
            clause.limit,
            context,
        )
        if clause.where is None:
            return projected
        return [
            row
            for row in projected
            if is_truthy(self._evaluate(clause.where, row))
        ]

    def _apply_return(
        self, clause: ast.ReturnClause, rows: list[Row], context: "_Context"
    ) -> tuple[list[Row], list[str]]:
        if clause.star:
            names = sorted({name for row in rows for name in row if not name.startswith("__")})
            items = tuple(
                ast.ProjectionItem(ast.Variable(name), name) for name in names
            )
        else:
            items = clause.items
        projected = self._project(
            rows,
            items,
            clause.distinct,
            False,
            clause.order_by,
            clause.skip,
            clause.limit,
            context,
        )
        return projected, [item.alias for item in items]

    def _project(
        self,
        rows: list[Row],
        items: tuple[ast.ProjectionItem, ...],
        distinct: bool,
        star: bool,
        order_by: tuple[ast.SortItem, ...],
        skip: ast.Expression | None,
        limit: ast.Expression | None,
        context: "_Context",
    ) -> list[Row]:
        if star:
            projected = [dict(row) for row in rows]
        elif any(_has_aggregate(item.expression) for item in items):
            projected = self._project_grouped(rows, items)
        else:
            projected = []
            for row in rows:
                self._tick()
                out: Row = {}
                for item in items:
                    out[item.alias] = self._evaluate(item.expression, row)
                # Keep source bindings available for ORDER BY on
                # non-projected expressions, under a side channel.
                out["__source__"] = row
                projected.append(out)
        if distinct:
            seen: set[Any] = set()
            unique: list[Row] = []
            for row in projected:
                key = tuple(
                    hash_key(row[item.alias]) for item in items
                ) if not star else tuple(
                    (name, hash_key(value)) for name, value in sorted(
                        row.items()
                    ) if name != "__source__"
                )
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            projected = unique
        if order_by:
            def key_of(row: Row) -> tuple:
                keys = []
                for sort_item in order_by:
                    value = self._evaluate_sort(sort_item.expression, row)
                    key = sort_key(value)
                    keys.append(key)
                return tuple(keys)

            # Stable multi-key sort honouring per-key direction.
            for sort_item in reversed(order_by):
                projected.sort(
                    key=lambda row, si=sort_item: sort_key(
                        self._evaluate_sort(si.expression, row)
                    ),
                    reverse=sort_item.descending,
                )
        start = int(self._evaluate(skip, {})) if skip is not None else 0
        if start:
            projected = projected[start:]
        if limit is not None:
            projected = projected[: int(self._evaluate(limit, {}))]
        for row in projected:
            row.pop("__source__", None)
        return projected

    def _evaluate_sort(self, expression: ast.Expression, row: Row) -> Any:
        """Evaluate a sort key against the projected row, falling back to
        the pre-projection bindings for non-projected expressions."""
        scope = dict(row.get("__source__", {}))
        scope.update({k: v for k, v in row.items() if k != "__source__"})
        return self._evaluate(expression, scope)

    def _project_grouped(
        self, rows: list[Row], items: tuple[ast.ProjectionItem, ...]
    ) -> list[Row]:
        group_items = [
            item for item in items if not _has_aggregate(item.expression)
        ]
        groups: dict[tuple, tuple[Row, list[Row]]] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(
                hash_key(self._evaluate(item.expression, row)) for item in group_items
            )
            if key not in groups:
                groups[key] = (row, [])
                order.append(key)
            groups[key][1].append(row)
        # With no grouping keys and no rows, aggregates still yield one row
        # (count(*) over nothing is 0).
        if not group_items and not groups:
            groups[()] = ({}, [])
            order.append(())
        output: list[Row] = []
        for key in order:
            representative, members = groups[key]
            out: Row = {}
            for item in items:
                out[item.alias] = self._evaluate(
                    item.expression, representative, group_rows=members
                )
            out["__source__"] = representative
            output.append(out)
        return output

    # -- writing clauses -------------------------------------------------

    def _apply_create(
        self, clause: ast.CreateClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        output: list[Row] = []
        for row in rows:
            extended = dict(row)
            for pattern in clause.patterns:
                self._create_path(pattern, extended, context)
            output.append(extended)
        return output

    def _create_path(
        self, pattern: ast.PathPattern, binding: Row, context: "_Context"
    ) -> list[Node]:
        nodes: list[Node] = []
        for node_pattern in pattern.nodes:
            nodes.append(self._create_or_reuse_node(node_pattern, binding, context))
        for index, rel_pattern in enumerate(pattern.relationships):
            if rel_pattern.direction == "both":
                raise CypherRuntimeError("CREATE requires a directed relationship")
            if rel_pattern.is_variable_length or len(rel_pattern.types) != 1:
                raise CypherRuntimeError(
                    "CREATE requires exactly one relationship type per hop"
                )
            start, end = nodes[index], nodes[index + 1]
            if rel_pattern.direction == "in":
                start, end = end, start
            props = {
                key: self._evaluate(expr, binding)
                for key, expr in rel_pattern.properties
            }
            rel = self.store.create_relationship(
                start.id, rel_pattern.types[0], end.id, props
            )
            context.stats.relationships_created += 1
            context.stats.properties_set += len(props)
            if rel_pattern.variable:
                binding[rel_pattern.variable] = rel
        return nodes

    def _create_or_reuse_node(
        self, node_pattern: ast.NodePattern, binding: Row, context: "_Context"
    ) -> Node:
        if node_pattern.variable and node_pattern.variable in binding:
            existing = binding[node_pattern.variable]
            if not isinstance(existing, Node):
                raise CypherRuntimeError(
                    f"variable {node_pattern.variable!r} is not a node"
                )
            if node_pattern.labels or node_pattern.properties:
                raise CypherRuntimeError(
                    f"cannot redeclare bound variable {node_pattern.variable!r}"
                )
            return existing
        props = {
            key: self._evaluate(expr, binding) for key, expr in node_pattern.properties
        }
        node = self.store.create_node(node_pattern.labels, props)
        context.stats.nodes_created += 1
        context.stats.labels_added += len(node_pattern.labels)
        context.stats.properties_set += len(props)
        if node_pattern.variable:
            binding[node_pattern.variable] = node
        return node

    def _apply_merge(
        self, clause: ast.MergeClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        output: list[Row] = []
        for row in rows:
            matches = list(self._matcher.match_single(clause.pattern, row))
            if matches:
                for binding in matches:
                    if clause.on_match:
                        self._apply_set(clause.on_match, [binding], context)
                    output.append(binding)
                continue
            extended = dict(row)
            self._create_path(clause.pattern, extended, context)
            if clause.on_create:
                self._apply_set(clause.on_create, [extended], context)
            output.append(extended)
        return output

    def _apply_set(
        self, items: Iterable[ast.SetItem], rows: list[Row], context: "_Context"
    ) -> list[Row]:
        for row in rows:
            for item in items:
                subject = self._evaluate(item.subject, row)
                if subject is None:
                    continue
                if item.kind == "label":
                    if not isinstance(subject, Node):
                        raise CypherRuntimeError("SET :Label requires a node")
                    for label in item.labels:
                        self.store.add_label(subject.id, label)
                        context.stats.labels_added += 1
                    continue
                if item.kind == "property":
                    value = self._evaluate(item.value, row)
                    self._set_properties(subject, {item.key: value}, context)
                    continue
                mapping = self._evaluate(item.value, row)
                if isinstance(mapping, (Node, Relationship)):
                    mapping = dict(mapping.properties)
                if not isinstance(mapping, dict):
                    raise CypherRuntimeError("SET with map requires a map value")
                if item.kind == "replace_map":
                    existing = list(subject.properties)
                    cleared = {key: None for key in existing if key not in mapping}
                    self._set_properties(subject, {**cleared, **mapping}, context)
                else:  # merge_map
                    self._set_properties(subject, mapping, context)
        return rows

    def _set_properties(
        self, subject: Any, properties: dict[str, Any], context: "_Context"
    ) -> None:
        if isinstance(subject, Node):
            self.store.update_node(subject.id, properties)
        elif isinstance(subject, Relationship):
            self.store.update_relationship(subject.id, properties)
        else:
            raise CypherRuntimeError("SET requires a node or relationship")
        context.stats.properties_set += len(properties)

    def _apply_remove(
        self, clause: ast.RemoveClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        for row in rows:
            for item in clause.items:
                subject = self._evaluate(item.subject, row)
                if subject is None:
                    continue
                if item.kind == "label":
                    raise CypherRuntimeError("REMOVE :Label is not supported")
                self._set_properties(subject, {item.key: None}, context)
        return rows

    def _apply_delete(
        self, clause: ast.DeleteClause, rows: list[Row], context: "_Context"
    ) -> list[Row]:
        deleted_nodes: set[int] = set()
        deleted_rels: set[int] = set()
        for row in rows:
            for expression in clause.expressions:
                value = self._evaluate(expression, row)
                if value is None:
                    continue
                if isinstance(value, Relationship):
                    if value.id not in deleted_rels:
                        self.store.delete_relationship(value.id)
                        deleted_rels.add(value.id)
                        context.stats.relationships_deleted += 1
                elif isinstance(value, Node):
                    if value.id not in deleted_nodes:
                        before = self.store.relationship_count
                        self.store.delete_node(value.id, detach=clause.detach)
                        deleted_nodes.add(value.id)
                        context.stats.nodes_deleted += 1
                        context.stats.relationships_deleted += (
                            before - self.store.relationship_count
                        )
                else:
                    raise CypherRuntimeError("DELETE requires nodes or relationships")
        return rows

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _evaluate(
        self,
        expression: ast.Expression | None,
        row: Row,
        group_rows: list[Row] | None = None,
    ) -> Any:
        if expression is None:
            return None
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Parameter):
            try:
                return getattr(self._tls, "parameters", {})[expression.name]
            except KeyError:
                raise CypherRuntimeError(
                    f"missing parameter ${expression.name}"
                ) from None
        if isinstance(expression, ast.Variable):
            if expression.name in row:
                return row[expression.name]
            raise CypherRuntimeError(f"undefined variable {expression.name!r}")
        if isinstance(expression, ast.PropertyAccess):
            subject = self._evaluate(expression.subject, row, group_rows)
            if subject is None:
                return None
            if isinstance(subject, (Node, Relationship)):
                return subject.properties.get(expression.key)
            if isinstance(subject, dict):
                return subject.get(expression.key)
            raise CypherRuntimeError(
                f"cannot access property {expression.key!r} of {type(subject).__name__}"
            )
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_call(expression, row, group_rows)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression, row, group_rows)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression, row, group_rows)
        if isinstance(expression, ast.IsNull):
            value = self._evaluate(expression.operand, row, group_rows)
            return (value is not None) if expression.negated else (value is None)
        if isinstance(expression, ast.ListLiteral):
            return [self._evaluate(item, row, group_rows) for item in expression.items]
        if isinstance(expression, ast.MapLiteral):
            return {
                key: self._evaluate(value, row, group_rows)
                for key, value in expression.items
            }
        if isinstance(expression, ast.IndexAccess):
            return self._evaluate_index(expression, row, group_rows)
        if isinstance(expression, ast.CaseExpression):
            return self._evaluate_case(expression, row, group_rows)
        if isinstance(expression, ast.ListComprehension):
            return self._evaluate_comprehension(expression, row, group_rows)
        if isinstance(expression, ast.ListPredicate):
            return self._evaluate_list_predicate(expression, row, group_rows)
        if isinstance(expression, ast.Reduce):
            return self._evaluate_reduce(expression, row, group_rows)
        if isinstance(expression, ast.PatternPredicate):
            return self._matcher.pattern_exists(expression.pattern, row)
        raise CypherRuntimeError(f"cannot evaluate {expression!r}")

    def _evaluate_list_predicate(
        self, expression: ast.ListPredicate, row: Row, group_rows: list[Row] | None
    ) -> Any:
        source = self._evaluate(expression.source, row, group_rows)
        if source is None:
            return None
        verdicts = []
        for item in source:
            scope = dict(row)
            scope[expression.variable] = item
            verdicts.append(self._evaluate(expression.predicate, scope, group_rows))
        trues = sum(1 for v in verdicts if v is True)
        has_null = any(v is None for v in verdicts)
        if expression.kind == "all":
            if any(v is False for v in verdicts):
                return False
            return None if has_null else True
        if expression.kind == "any":
            if trues:
                return True
            return None if has_null else False
        if expression.kind == "none":
            if trues:
                return False
            return None if has_null else True
        # single
        if trues > 1:
            return False
        if has_null:
            return None
        return trues == 1

    def _evaluate_reduce(
        self, expression: ast.Reduce, row: Row, group_rows: list[Row] | None
    ) -> Any:
        source = self._evaluate(expression.source, row, group_rows)
        if source is None:
            return None
        accumulator = self._evaluate(expression.init, row, group_rows)
        for item in source:
            scope = dict(row)
            scope[expression.accumulator] = accumulator
            scope[expression.variable] = item
            accumulator = self._evaluate(expression.expression, scope, group_rows)
        return accumulator

    def _tick(self) -> None:
        """Cooperative cancellation point, called from inner loops."""
        guard = getattr(self._tls, "guard", None)
        if guard is not None:
            guard.tick()

    def _evaluate_call(
        self, call: ast.FunctionCall, row: Row, group_rows: list[Row] | None
    ) -> Any:
        if call.name in AGGREGATE_NAMES:
            if group_rows is None:
                raise CypherRuntimeError(
                    f"aggregate {call.name}() used outside RETURN/WITH"
                )
            return self._evaluate_aggregate(call, group_rows)
        args = [self._evaluate(arg, row, group_rows) for arg in call.args]
        func = SCALAR_FUNCTIONS.get(call.name)
        if func is None:
            if call.name == "startnode":
                rel = args[0]
                return None if rel is None else self.store.get_node(rel.start_id)
            if call.name == "endnode":
                rel = args[0]
                return None if rel is None else self.store.get_node(rel.end_id)
            raise CypherRuntimeError(f"unknown function {call.name}()")
        return func(*args)

    def _evaluate_aggregate(self, call: ast.FunctionCall, rows: list[Row]) -> Any:
        if call.name == "count" and call.star:
            return len(rows)
        if not call.args:
            raise CypherRuntimeError(f"{call.name}() requires an argument")
        values = []
        for member in rows:
            value = self._evaluate(call.args[0], member)
            if value is not None:
                values.append(value)
        if call.distinct:
            seen: set[Any] = set()
            unique = []
            for value in values:
                key = hash_key(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if call.name == "count":
            return agg_count(values)
        if call.name == "collect":
            return agg_collect(values)
        if call.name == "sum":
            return agg_sum(values)
        if call.name == "avg":
            return agg_avg(values)
        if call.name == "min":
            return agg_min(values)
        if call.name == "max":
            return agg_max(values)
        if call.name == "stdev":
            return agg_stdev(values)
        if call.name in ("percentilecont", "percentiledisc"):
            percentile = self._evaluate(call.args[1], rows[0] if rows else {})
            if call.name == "percentilecont":
                return agg_percentile_cont(values, percentile)
            return agg_percentile_disc(values, percentile)
        raise CypherRuntimeError(f"unknown aggregate {call.name}()")

    def _evaluate_unary(
        self, expression: ast.UnaryOp, row: Row, group_rows: list[Row] | None
    ) -> Any:
        value = self._evaluate(expression.operand, row, group_rows)
        if expression.op == "not":
            return logical_not(value)
        if value is None:
            return None
        return -value

    def _evaluate_binary(
        self, expression: ast.BinaryOp, row: Row, group_rows: list[Row] | None
    ) -> Any:
        op = expression.op
        if op in ("and", "or", "xor"):
            left = self._evaluate(expression.left, row, group_rows)
            # Short-circuit where three-valued logic allows.
            if op == "and" and left is False:
                return False
            if op == "or" and left is True:
                return True
            right = self._evaluate(expression.right, row, group_rows)
            if op == "and":
                return logical_and(left, right)
            if op == "or":
                return logical_or(left, right)
            return logical_xor(left, right)
        left = self._evaluate(expression.left, row, group_rows)
        right = self._evaluate(expression.right, row, group_rows)
        if op == "eq":
            return equals(left, right)
        if op == "neq":
            verdict = equals(left, right)
            return None if verdict is None else not verdict
        if op in ("lt", "le", "gt", "ge"):
            return compare(left, right, op)
        if op == "in":
            return list_membership(left, right)
        if op == "starts_with":
            if left is None or right is None:
                return None
            return left.startswith(right)
        if op == "ends_with":
            if left is None or right is None:
                return None
            return left.endswith(right)
        if op == "contains":
            if left is None or right is None:
                return None
            return right in left
        if op == "regex":
            if left is None or right is None:
                return None
            return re.fullmatch(right, left) is not None
        if left is None or right is None:
            return None
        if op == "+":
            if isinstance(left, list) or isinstance(right, list):
                left_list = left if isinstance(left, list) else [left]
                right_list = right if isinstance(right, list) else [right]
                return left_list + right_list
            if isinstance(left, str) != isinstance(right, str):
                raise CypherRuntimeError(f"cannot add {left!r} and {right!r}")
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise CypherRuntimeError("integer division by zero")
                quotient = left // right
                # Cypher truncates toward zero for integer division.
                if quotient < 0 and quotient * right != left:
                    quotient += 1
                return quotient
            return left / right
        if op == "%":
            return left % right
        if op == "^":
            return float(left**right)
        raise CypherRuntimeError(f"unknown operator {op}")

    def _evaluate_index(
        self, expression: ast.IndexAccess, row: Row, group_rows: list[Row] | None
    ) -> Any:
        subject = self._evaluate(expression.subject, row, group_rows)
        if subject is None:
            return None
        if expression.is_slice:
            start = (
                self._evaluate(expression.index, row, group_rows)
                if expression.index is not None
                else None
            )
            end = (
                self._evaluate(expression.end, row, group_rows)
                if expression.end is not None
                else None
            )
            return subject[start:end]
        index = self._evaluate(expression.index, row, group_rows)
        if isinstance(subject, dict):
            return subject.get(index)
        if isinstance(subject, (Node, Relationship)):
            return subject.properties.get(index)
        if isinstance(subject, (list, tuple, str)):
            if index is None or not -len(subject) <= index < len(subject):
                return None
            return subject[index]
        raise CypherRuntimeError(f"cannot index {type(subject).__name__}")

    def _evaluate_case(
        self, expression: ast.CaseExpression, row: Row, group_rows: list[Row] | None
    ) -> Any:
        if expression.operand is not None:
            operand = self._evaluate(expression.operand, row, group_rows)
            for condition, value in expression.whens:
                if equals(operand, self._evaluate(condition, row, group_rows)) is True:
                    return self._evaluate(value, row, group_rows)
        else:
            for condition, value in expression.whens:
                if is_truthy(self._evaluate(condition, row, group_rows)):
                    return self._evaluate(value, row, group_rows)
        return self._evaluate(expression.default, row, group_rows)

    def _evaluate_comprehension(
        self, expression: ast.ListComprehension, row: Row, group_rows: list[Row] | None
    ) -> Any:
        source = self._evaluate(expression.source, row, group_rows)
        if source is None:
            return None
        result = []
        for item in source:
            scope = dict(row)
            scope[expression.variable] = item
            if expression.predicate is not None and not is_truthy(
                self._evaluate(expression.predicate, scope, group_rows)
            ):
                continue
            if expression.projection is not None:
                result.append(self._evaluate(expression.projection, scope, group_rows))
            else:
                result.append(item)
        return result


class _Context:
    """Per-execution mutable state: parameters, stats, current row."""

    def __init__(self, parameters: dict[str, Any]):
        self.parameters = parameters
        self.stats = WriteStats()
        self.row: Row = {}


def _merge_stats(target: WriteStats, other: WriteStats) -> None:
    target.nodes_created += other.nodes_created
    target.nodes_deleted += other.nodes_deleted
    target.relationships_created += other.relationships_created
    target.relationships_deleted += other.relationships_deleted
    target.properties_set += other.properties_set
    target.labels_added += other.labels_added


def _has_aggregate(expression: ast.Expression) -> bool:
    """Walk an expression tree looking for aggregate function calls."""
    if isinstance(expression, ast.FunctionCall):
        if expression.name in AGGREGATE_NAMES:
            return True
        return any(_has_aggregate(arg) for arg in expression.args)
    if isinstance(expression, ast.UnaryOp):
        return _has_aggregate(expression.operand)
    if isinstance(expression, ast.BinaryOp):
        return _has_aggregate(expression.left) or _has_aggregate(expression.right)
    if isinstance(expression, ast.IsNull):
        return _has_aggregate(expression.operand)
    if isinstance(expression, ast.PropertyAccess):
        return _has_aggregate(expression.subject)
    if isinstance(expression, ast.ListLiteral):
        return any(_has_aggregate(item) for item in expression.items)
    if isinstance(expression, ast.MapLiteral):
        return any(_has_aggregate(value) for _, value in expression.items)
    if isinstance(expression, ast.IndexAccess):
        targets = [expression.subject, expression.index, expression.end]
        return any(_has_aggregate(t) for t in targets if t is not None)
    if isinstance(expression, ast.CaseExpression):
        parts: list[ast.Expression] = []
        if expression.operand is not None:
            parts.append(expression.operand)
        for condition, value in expression.whens:
            parts.extend((condition, value))
        if expression.default is not None:
            parts.append(expression.default)
        return any(_has_aggregate(part) for part in parts)
    if isinstance(expression, ast.ListComprehension):
        parts = [expression.source]
        if expression.predicate is not None:
            parts.append(expression.predicate)
        if expression.projection is not None:
            parts.append(expression.projection)
        return any(_has_aggregate(part) for part in parts)
    if isinstance(expression, ast.ListPredicate):
        return _has_aggregate(expression.source) or _has_aggregate(
            expression.predicate
        )
    if isinstance(expression, ast.Reduce):
        return any(
            _has_aggregate(part)
            for part in (expression.init, expression.source, expression.expression)
        )
    return False


def _pattern_variables(patterns: tuple[ast.PathPattern, ...]) -> list[str]:
    """All variable names introduced by a set of patterns."""
    names: list[str] = []
    for pattern in patterns:
        if pattern.path_variable:
            names.append(pattern.path_variable)
        for node in pattern.nodes:
            if node.variable:
                names.append(node.variable)
        for rel in pattern.relationships:
            if rel.variable:
                names.append(rel.variable)
    return names


def _unknown_procedure_message(name: str) -> str:
    """Error text for a CALL naming no registered procedure, with a
    did-you-mean hint from the registry."""
    message = f"unknown procedure {name!r}"
    hints = suggest(name)
    if hints:
        message += "; did you mean " + " or ".join(hints) + "?"
    return message
