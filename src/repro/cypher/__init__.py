"""A query engine for a practical subset of the Cypher language.

This is the reproduction's substitute for Neo4j's query layer.  The
subset covers every query published in the IYP paper (Listings 1-6) and
the day-to-day vocabulary of the studies:

- ``MATCH`` / ``OPTIONAL MATCH`` with multi-hop paths, undirected or
  directed relationships, alternative relationship types, inline property
  maps, and variable-length patterns (``*1..3``);
- ``WHERE`` with boolean logic, comparisons, ``STARTS WITH`` /
  ``ENDS WITH`` / ``CONTAINS`` / ``IN`` / ``IS [NOT] NULL`` / ``=~``;
- ``RETURN`` / ``WITH`` including ``DISTINCT``, implicit grouping with
  aggregates (``count``, ``collect``, ``sum``, ``avg``, ``min``, ``max``,
  ``percentileCont``...), ``ORDER BY``, ``SKIP``, ``LIMIT``;
- ``UNWIND``, ``CREATE``, ``MERGE`` (with ``ON CREATE/MATCH SET``),
  ``SET``, ``REMOVE``, ``DELETE`` / ``DETACH DELETE``;
- ``CASE`` expressions and query parameters (``$name``).

Typical use::

    from repro.cypher import CypherEngine
    engine = CypherEngine(store)
    result = engine.run("MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN DISTINCT x.asn")
    asns = result.column("x.asn")
"""

from repro.cypher.engine import CypherEngine
from repro.cypher.errors import (
    CypherError,
    CypherRuntimeError,
    CypherSyntaxError,
    QueryAbortedError,
    QueryTimeoutError,
    RowLimitError,
)
from repro.cypher.guard import QueryGuard
from repro.cypher.lru import LRUCache
from repro.cypher.result import QueryResult

__all__ = [
    "CypherEngine",
    "CypherError",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "LRUCache",
    "QueryAbortedError",
    "QueryGuard",
    "QueryResult",
    "QueryTimeoutError",
    "RowLimitError",
]
