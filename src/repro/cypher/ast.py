"""Abstract syntax tree for the Cypher subset.

The tree is produced by :mod:`repro.cypher.parser` and consumed by
:mod:`repro.cypher.engine`.  All nodes are plain frozen dataclasses; the
executor never mutates them, so parsed queries are safely cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """Location of a token in the query text (1-based line/column).

    Spans are attached to AST nodes with ``compare=False`` so two parses
    of equivalent queries still compare equal and remain cacheable.
    """

    offset: int
    line: int
    column: int
    length: int = 1

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Parameter(Expression):
    name: str


@dataclass(frozen=True)
class Variable(Expression):
    name: str
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class PropertyAccess(Expression):
    subject: Expression
    key: str
    key_span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # lower-cased
    args: tuple[Expression, ...]
    distinct: bool = False
    star: bool = False  # count(*)


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # 'not' | '-' | '+'
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # and, or, xor, =, <>, <, <=, >, >=, +, -, *, /, %, ^,
    # in, starts_with, ends_with, contains, regex
    left: Expression
    right: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool


@dataclass(frozen=True)
class ListLiteral(Expression):
    items: tuple[Expression, ...]


@dataclass(frozen=True)
class MapLiteral(Expression):
    items: tuple[tuple[str, Expression], ...]


@dataclass(frozen=True)
class IndexAccess(Expression):
    """``expr[idx]`` or slice ``expr[a..b]`` on lists/maps."""

    subject: Expression
    index: Expression | None
    end: Expression | None = None
    is_slice: bool = False


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Both simple (``CASE x WHEN v ...``) and searched CASE."""

    operand: Expression | None
    whens: tuple[tuple[Expression, Expression], ...]
    default: Expression | None


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[x IN list WHERE pred | expr]``"""

    variable: str
    source: Expression
    predicate: Expression | None
    projection: Expression | None


@dataclass(frozen=True)
class ListPredicate(Expression):
    """``all/any/none/single(x IN list WHERE predicate)``"""

    kind: str  # 'all' | 'any' | 'none' | 'single'
    variable: str
    source: Expression
    predicate: Expression


@dataclass(frozen=True)
class Reduce(Expression):
    """``reduce(acc = init, x IN list | expr)``"""

    accumulator: str
    init: Expression
    variable: str
    source: Expression
    expression: Expression


@dataclass(frozen=True)
class PatternPredicate(Expression):
    """A bare pattern used as a predicate, e.g. ``WHERE (a)-[:X]-(b)``,
    or wrapped in ``EXISTS { ... }`` / ``exists((a)-[:X]-(b))``."""

    pattern: "PathPattern"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    variable: str | None
    labels: tuple[str, ...]
    properties: tuple[tuple[str, Expression], ...] = ()
    span: Span | None = field(default=None, compare=False)
    label_spans: tuple[Span, ...] = field(default=(), compare=False)
    property_spans: tuple[Span, ...] = field(default=(), compare=False)


@dataclass(frozen=True)
class RelPattern:
    variable: str | None
    types: tuple[str, ...]
    properties: tuple[tuple[str, Expression], ...] = ()
    direction: str = "both"  # 'out', 'in', 'both'
    min_hops: int = 1
    max_hops: int = 1  # -1 means unbounded
    span: Span | None = field(default=None, compare=False)
    type_spans: tuple[Span, ...] = field(default=(), compare=False)
    property_spans: tuple[Span, ...] = field(default=(), compare=False)

    @property
    def is_variable_length(self) -> bool:
        return self.min_hops != 1 or self.max_hops != 1


@dataclass(frozen=True)
class PathPattern:
    """Alternating node / relationship elements: n, r, n, r, ..., n."""

    nodes: tuple[NodePattern, ...]
    relationships: tuple[RelPattern, ...]
    path_variable: str | None = None
    shortest: bool = False  # wrapped in shortestPath(...)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.relationships) + 1:
            raise ValueError("path must alternate nodes and relationships")


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


class Clause:
    """Marker base class for clause nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class MatchClause(Clause):
    patterns: tuple[PathPattern, ...]
    optional: bool = False
    where: Expression | None = None


@dataclass(frozen=True)
class UnwindClause(Clause):
    expression: Expression
    alias: str


@dataclass(frozen=True)
class ProjectionItem:
    expression: Expression
    alias: str


@dataclass(frozen=True)
class SortItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class WithClause(Clause):
    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    star: bool = False  # WITH *
    where: Expression | None = None
    order_by: tuple[SortItem, ...] = ()
    skip: Expression | None = None
    limit: Expression | None = None


@dataclass(frozen=True)
class ReturnClause(Clause):
    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    star: bool = False  # RETURN *
    order_by: tuple[SortItem, ...] = ()
    skip: Expression | None = None
    limit: Expression | None = None


@dataclass(frozen=True)
class CreateClause(Clause):
    patterns: tuple[PathPattern, ...]


@dataclass(frozen=True)
class MergeClause(Clause):
    pattern: PathPattern
    on_create: tuple["SetItem", ...] = ()
    on_match: tuple["SetItem", ...] = ()


@dataclass(frozen=True)
class SetItem:
    """One assignment in SET / ON CREATE SET / ON MATCH SET.

    kind: 'property'  -> subject.key = value
          'merge_map' -> subject += map
          'replace_map' -> subject = map
          'label'     -> subject :Label
    """

    kind: str
    subject: Expression
    key: str | None = None
    value: Expression | None = None
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class SetClause(Clause):
    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class RemoveClause(Clause):
    items: tuple[SetItem, ...]  # kind 'property' (no value) or 'label'


@dataclass(frozen=True)
class DeleteClause(Clause):
    expressions: tuple[Expression, ...]
    detach: bool = False


@dataclass(frozen=True)
class YieldItem:
    """One ``YIELD column [AS alias]`` projection of a CALL clause."""

    column: str
    alias: str
    span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class CallClause(Clause):
    """``CALL proc.name(args) [YIELD col [AS alias], ...]``.

    ``procedure`` is the lower-cased dotted name; an empty ``yields``
    means every column of the procedure is projected under its own
    name.  ``name_span`` covers the dotted name for diagnostics.
    """

    procedure: str
    args: tuple[Expression, ...] = ()
    yields: tuple[YieldItem, ...] = ()
    name_span: Span | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Query:
    clauses: tuple[Clause, ...]
    # UNION support: each part is a full clause list; rows are concatenated.
    union_parts: tuple["Query", ...] = ()
    union_all: bool = False


@dataclass(frozen=True)
class EmptyReturn(Clause):
    """Internal sentinel for write-only queries (no RETURN clause)."""
