"""Tokenizer for the Cypher subset.

Keywords are case-insensitive (``MATCH`` == ``match``); identifiers,
labels and relationship types are case-sensitive, following Neo4j.
``//`` starts a comment that runs to end of line.  Backtick-quoted
identifiers are supported for names containing spaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cypher.errors import CypherSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    PARAMETER = "parameter"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "MATCH", "OPTIONAL", "WHERE", "RETURN", "WITH", "AS", "DISTINCT",
        "ORDER", "BY", "ASC", "ASCENDING", "DESC", "DESCENDING", "LIMIT",
        "SKIP", "AND", "OR", "XOR", "NOT", "IN", "STARTS", "ENDS",
        "CONTAINS", "IS", "NULL", "TRUE", "FALSE", "CREATE", "MERGE",
        "SET", "REMOVE", "DELETE", "DETACH", "UNWIND", "ON", "CASE",
        "WHEN", "THEN", "ELSE", "END", "EXISTS", "UNION", "ALL",
        "CALL", "YIELD",
    }
)

# Multi-character punctuation, longest first so '<=' wins over '<'.
_MULTI_PUNCT = ("<>", "<=", ">=", "=~", "..", "+=")
_SINGLE_PUNCT = set("()[]{}:,.-<>=+*/%|^")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages).

    ``raw`` preserves the original spelling; keywords are upper-cased in
    ``value`` but may be used as labels or property keys (e.g. the IYP
    label ``:AS``), where the original case matters.  ``line`` and
    ``column`` are 1-based source coordinates derived from ``position``
    so parse errors and lint diagnostics can point at the exact token.
    """

    type: TokenType
    value: str
    position: int
    raw: str = ""
    line: int = 1
    column: int = 1

    def __post_init__(self) -> None:
        if not self.raw:
            object.__setattr__(self, "raw", self.value)

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_punct(self, *values: str) -> bool:
        return self.type is TokenType.PUNCT and self.value in values


class LineMap:
    """Maps character offsets in a query to 1-based (line, column)."""

    def __init__(self, text: str):
        self._starts = [0]
        index = text.find("\n")
        while index != -1:
            self._starts.append(index + 1)
            index = text.find("\n", index + 1)

    def locate(self, offset: int) -> tuple[int, int]:
        from bisect import bisect_right

        line = bisect_right(self._starts, offset)
        return line, offset - self._starts[line - 1] + 1


def tokenize(text: str) -> list[Token]:
    """Tokenize a query string; raises CypherSyntaxError on bad input."""
    lines = LineMap(text)

    def make(kind: TokenType, value: str, position: int, raw: str = "") -> Token:
        line, column = lines.locate(position)
        return Token(kind, value, position, raw, line, column)

    def error(message: str, position: int) -> CypherSyntaxError:
        line, column = lines.locate(position)
        return CypherSyntaxError(message, position, line, column)

    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char in " \t\r\n":
            i += 1
            continue
        if char == "/" and text[i : i + 2] == "//":
            newline = text.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if char in "'\"":
            start = i
            try:
                value, i = _read_string(text, i)
            except CypherSyntaxError as exc:
                raise error(
                    str(exc).partition(" (")[0], exc.position or start
                ) from exc
            tokens.append(make(TokenType.STRING, value, start))
            continue
        if char == "`":
            end = text.find("`", i + 1)
            if end == -1:
                raise error("unterminated backtick identifier", i)
            tokens.append(make(TokenType.IDENT, text[i + 1 : end], i))
            i = end + 1
            continue
        if char == "$":
            start = i + 1
            j = start
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == start:
                raise error("empty parameter name", i)
            tokens.append(make(TokenType.PARAMETER, text[start:j], i))
            i = j
            continue
        if char.isdigit() or (char == "." and i + 1 < length and text[i + 1].isdigit()):
            token, i = _read_number(text, i)
            line, column = lines.locate(token.position)
            tokens.append(
                Token(token.type, token.value, token.position, "", line, column)
            )
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(make(TokenType.KEYWORD, upper, i, word))
            else:
                tokens.append(make(TokenType.IDENT, word, i))
            i = j
            continue
        pair = text[i : i + 2]
        if pair in _MULTI_PUNCT:
            tokens.append(make(TokenType.PUNCT, pair, i))
            i += 2
            continue
        if char in _SINGLE_PUNCT:
            tokens.append(make(TokenType.PUNCT, char, i))
            i += 1
            continue
        raise error(f"unexpected character {char!r}", i)
    tokens.append(make(TokenType.EOF, "", length))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    quote = text[start]
    parts: list[str] = []
    i = start + 1
    escapes = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"'}
    while i < len(text):
        char = text[i]
        if char == "\\":
            if i + 1 >= len(text):
                raise CypherSyntaxError("dangling escape in string", i)
            parts.append(escapes.get(text[i + 1], text[i + 1]))
            i += 2
            continue
        if char == quote:
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise CypherSyntaxError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[Token, int]:
    i = start
    length = len(text)
    while i < length and text[i].isdigit():
        i += 1
    is_float = False
    # A '..' after digits is a range operator, not a decimal point.
    if i < length and text[i] == "." and text[i : i + 2] != ".." and (
        i + 1 < length and text[i + 1].isdigit()
    ):
        is_float = True
        i += 1
        while i < length and text[i].isdigit():
            i += 1
    if i < length and text[i] in "eE":
        j = i + 1
        if j < length and text[j] in "+-":
            j += 1
        if j < length and text[j].isdigit():
            is_float = True
            i = j
            while i < length and text[i].isdigit():
                i += 1
    kind = TokenType.FLOAT if is_float else TokenType.INTEGER
    return Token(kind, text[start:i], start), i
