"""Errors raised by the Cypher engine."""

from __future__ import annotations


class CypherError(Exception):
    """Base class for query-engine errors."""


class CypherSyntaxError(CypherError):
    """Raised when a query cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class CypherRuntimeError(CypherError):
    """Raised when a well-formed query fails during execution."""
