"""Errors raised by the Cypher engine."""

from __future__ import annotations


class CypherError(Exception):
    """Base class for query-engine errors."""


class CypherSyntaxError(CypherError):
    """Raised when a query cannot be tokenized or parsed.

    ``position`` is the character offset into the query text; ``line``
    and ``column`` are the corresponding 1-based source coordinates when
    the failing token is known, so error messages (and the linter's
    LNT000 diagnostics) can point at the exact spot.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        line: int | None = None,
        column: int | None = None,
    ):
        self.position = position
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        elif position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class CypherRuntimeError(CypherError):
    """Raised when a well-formed query fails during execution."""


class QueryAbortedError(CypherError):
    """Base class for admission-control aborts (timeout, row limit).

    These are not query bugs: the query was valid but exceeded a resource
    limit imposed by the caller.  The query service maps them to
    structured JSON errors; the store itself is left untouched (aborts
    are only raised on the read path or before any mutation applies).
    """


class QueryTimeoutError(QueryAbortedError):
    """Raised cooperatively when a query exceeds its time budget."""

    def __init__(self, timeout: float):
        self.timeout = timeout
        super().__init__(f"query exceeded its {timeout:g}s time budget")


class RowLimitError(QueryAbortedError):
    """Raised when a query produces more rows than the caller allows."""

    def __init__(self, produced: int, limit: int):
        self.produced = produced
        self.limit = limit
        super().__init__(
            f"query produced {produced} rows, above the {limit}-row limit"
        )
