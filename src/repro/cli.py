"""Command-line interface: build, query, and inspect knowledge graphs.

The offline analogue of the IYP project's operational scripts::

    python -m repro build --scale small --output iyp.json.gz
    python -m repro query --snapshot iyp.json.gz \
        "MATCH (a:AS) RETURN count(a)"
    python -m repro serve --snapshot iyp.json.gz --port 8734
    python -m repro serve --archive archive --watch 5
    python -m repro top --port 8734 --once
    python -m repro quality --dir archive
    python -m repro archive list --dir archive
    python -m repro inventory
    python -m repro ontology
    python -m repro studies --scale small
    python -m repro info --snapshot iyp.json.gz

``query`` and ``serve`` share one admission-control path
(:mod:`repro.server.admission`): ``--timeout`` and ``--limit`` on the
interactive command enforce the same budgets a served query gets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import IYP
from repro.datasets.registry import DATASETS, organizations
from repro.graphdb import load_snapshot, save_snapshot
from repro.ontology import ENTITIES, RELATIONSHIPS
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world

_SCALES = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
    "2015": WorldConfig.year2015,
}


def _load_iyp(snapshot: str) -> IYP:
    return IYP(load_snapshot(snapshot))


def _print_crawler_runs(report) -> None:
    """Per-crawler telemetry table (``build --verbose``)."""
    print(f"{'crawler':<34} {'seconds':>8} {'n+':>7} {'n~':>7} {'r+':>8} {'r~':>8}")
    print("-" * 76)
    for run in report.crawler_runs:
        flag = "  ERROR" if run.error else ""
        print(
            f"{run.name:<34} {run.seconds:>8.3f} {run.nodes_created:>7,} "
            f"{run.nodes_merged:>7,} {run.relationships_created:>8,} "
            f"{run.relationships_merged:>8,}{flag}"
        )


def cmd_build(args: argparse.Namespace) -> int:
    """Build the knowledge graph and write (and optionally archive) a snapshot."""
    config = _SCALES[args.scale](seed=args.seed)
    print(f"Building synthetic world (scale={args.scale}, seed={args.seed})...")
    world = build_world(config)
    datasets = args.datasets.split(",") if args.datasets else None
    archive = None
    if args.archive:
        from repro.archive import SnapshotArchive

        archive = SnapshotArchive(args.archive)
    iyp, report = build_iyp(
        world,
        dataset_names=datasets,
        archive=archive,
        archive_label=args.archive_label,
    )
    print(
        f"Built {report.nodes:,} nodes / {report.relationships:,} "
        f"relationships in {report.total_seconds:.1f}s"
    )
    if args.verbose:
        _print_crawler_runs(report)
    if report.archived_as:
        entry = archive.resolve(report.archived_as)
        print(
            f"Archived as {entry.label} in {args.archive}/ "
            f"(checksum {entry.checksum[:12]})"
        )
    save_snapshot(iyp.store, args.output, format=2 if args.format == "v2" else 1)
    size_mb = Path(args.output).stat().st_size / 1e6
    print(f"Snapshot written to {args.output} ({size_mb:.1f} MB)")
    return 0


def _parse_params(pairs: list[str] | None) -> dict[str, object]:
    """``--param key=value`` pairs; values parse as JSON, falling back
    to plain strings (so ``--param asn=2497`` is a number but
    ``--param org_name=NTT`` needs no quoting)."""
    import json

    params: dict[str, object] = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_query(args: argparse.Namespace) -> int:
    """Run a Cypher query against a snapshot.

    ``--timeout`` and ``--limit`` reuse the query service's admission
    control: the query runs under the same cooperative guard a served
    request gets, and aborts are reported the same way.  ``--profile``
    executes the query for real and prints the annotated operator tree
    (rows, store hits, timings) above the results.
    """
    from repro.cypher.errors import QueryAbortedError
    from repro.server.admission import AdmissionController

    iyp = _load_iyp(args.snapshot)
    if args.explain:
        explanation = iyp.engine.explain(args.query)
        for step in explanation.plan:
            print(step)
        _print_warnings(explanation.warnings)
        return 0
    params = _parse_params(args.param)
    controller = AdmissionController(
        max_concurrent=1,
        default_timeout=args.timeout,
        default_max_rows=args.limit,
    )
    try:
        with controller.slot():
            if args.profile:
                result, plan = iyp.engine.profile(
                    args.query, params, guard=controller.guard()
                )
                print(plan.render())
                print()
            else:
                result = iyp.engine.run(args.query, params, guard=controller.guard())
    except QueryAbortedError as exc:
        print(f"query aborted: {exc}", file=sys.stderr)
        return 1
    print(result.to_table(max_rows=args.limit or 50))
    if result.stats:
        stats = result.stats
        print(
            f"-- nodes +{stats.nodes_created}/-{stats.nodes_deleted}, "
            f"rels +{stats.relationships_created}/-{stats.relationships_deleted}, "
            f"props {stats.properties_set}"
        )
    return 0


def _print_warnings(warnings, source: str | None = None) -> None:
    for finding in warnings:
        print(finding.format(source))


def cmd_explain(args: argparse.Namespace) -> int:
    """Show the execution plan of a query, with lint warnings."""
    iyp = _load_iyp(args.snapshot)
    explanation = iyp.engine.explain(args.query)
    for step in explanation.plan:
        print(step)
    _print_warnings(explanation.warnings)
    return 0


def _lint_sources(args: argparse.Namespace) -> list[tuple[str, str]]:
    """Resolve ``repro lint`` inputs to (source name, query) pairs.

    Each positional source is a file (queries extracted by extension),
    ``-`` for stdin, or — failing both — inline query text.
    """
    from repro.lint import extract_queries

    pairs: list[tuple[str, str]] = []
    for source in args.sources:
        if source == "-":
            pairs.append(("<stdin>", sys.stdin.read()))
        elif Path(source).is_file():
            pairs.extend(extract_queries(source))
        else:
            pairs.append(("<query>", source))
    return pairs


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically check Cypher queries against the ontology.

    Without ``--strict`` the exit code reflects errors only; with it,
    warnings fail too (info-level notes never do).  ``--snapshot``
    additionally enables the index-aware checks (LNT008).
    """
    from repro.lint import QueryLinter, fails_strict

    if getattr(args, "python", False):
        # Concurrency-safety mode: the sources are Python files/dirs.
        return cmd_check_concurrency(
            argparse.Namespace(paths=args.sources, strict=args.strict)
        )

    store = load_snapshot(args.snapshot) if args.snapshot else None
    linter = QueryLinter(store)
    pairs = _lint_sources(args)
    if not pairs:
        print("nothing to lint", file=sys.stderr)
        return 2
    failed = False
    total = 0
    for source, query in pairs:
        findings = linter.lint(query)
        total += len(findings)
        _print_warnings(findings, source)
        if args.strict:
            failed = failed or fails_strict(findings)
        else:
            failed = failed or any(f.severity == "error" for f in findings)
    queries = len(pairs)
    print(f"linted {queries} quer{'y' if queries == 1 else 'ies'}: "
          f"{total} diagnostic{'' if total == 1 else 's'}")
    return 1 if failed else 0


def cmd_check_concurrency(args: argparse.Namespace) -> int:
    """Run the concurrency-safety analyzer over the serving stack.

    Checks the lock contracts declared through ``GUARDED_BY`` maps and
    ``@guarded_by`` decorators (RACE001-RACE006) and the static
    lock-order graph (RACE007).  With no paths, analyzes the default
    targets (repro.graphdb, repro.server, repro.obs, repro.archive,
    repro.concurrency, and the shared LRU cache).  ``--strict`` fails on
    warnings as well as errors.
    """
    from repro.lint import analyze_paths, default_targets, fails_strict

    if args.paths:
        files: list[Path] = []
        for raw in args.paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                files.append(path)
            else:
                print(f"no such file: {raw}", file=sys.stderr)
                return 2
    else:
        files = default_targets()

    findings = analyze_paths(files)
    for path, diag in findings:
        print(diag.format(path))
    diags = [diag for _, diag in findings]
    count = len(diags)
    print(f"checked {len(files)} file{'' if len(files) == 1 else 's'}: "
          f"{count} finding{'' if count == 1 else 's'}")
    if args.strict:
        return 1 if fails_strict(diags) else 0
    return 1 if any(d.severity == "error" for d in diags) else 0


def cmd_validate_graph(args: argparse.Namespace) -> int:
    """Sweep a snapshot for ontology schema violations, per crawler."""
    from repro.lint import SCHEMA_CODES, GraphValidator

    store = load_snapshot(args.snapshot)
    report = GraphValidator().validate(store)
    print(
        f"checked {report.nodes_checked:,} nodes / "
        f"{report.relationships_checked:,} relationships"
    )
    if report.ok:
        print("no schema violations")
        return 0
    for code, count in report.by_code().items():
        print(f"  {code} ({SCHEMA_CODES[code]}): {count}")
    print("violations by crawler:")
    for crawler, items in report.by_crawler().items():
        print(f"  {crawler:<34} {len(items):>6,}")
        for violation in items[: args.show]:
            print(f"    {violation}")
    return 1


def cmd_info(args: argparse.Namespace) -> int:
    """Summarize a snapshot: size, labels, relationship types."""
    iyp = _load_iyp(args.snapshot)
    summary = iyp.summary()
    print(f"nodes:         {summary['nodes']:,}")
    print(f"relationships: {summary['relationships']:,}")
    print("labels:")
    for label, count in summary["labels"].items():
        print(f"  :{label:<26} {count:>8,}")
    print("relationship types:")
    for rel_type, count in summary["relationship_types"].items():
        print(f"  :{rel_type:<26} {count:>8,}")
    return 0


def _print_diff(diff, verbose: bool) -> None:
    """Shared rendering for ``repro diff`` and ``repro archive diff``."""
    summary = diff.summary()
    for section, counts in summary.items():
        if not counts:
            continue
        print(f"{section}:")
        for token, count in counts.items():
            print(f"  {token:<30} {count:>8,}")
    if verbose:
        for key in diff.nodes_added[:20]:
            print(f"+ node {key}")
        for key in diff.nodes_removed[:20]:
            print(f"- node {key}")
        for key, changes in diff.nodes_modified[:20]:
            print(f"~ node {key}")
            for prop, (before, after) in sorted(changes.items()):
                print(f"    .{prop}: {before!r} -> {after!r}")
        for key, changes in diff.relationships_modified[:20]:
            print(f"~ rel {key}")
            for prop, (before, after) in sorted(changes.items()):
                print(f"    .{prop}: {before!r} -> {after!r}")


def cmd_diff(args: argparse.Namespace) -> int:
    """Diff two snapshots by entity identity (longitudinal workflow).

    With ``--exit-code`` the command exits 1 when the snapshots differ,
    so CI can use it as a serialization-regression tripwire.  With
    ``--format json`` the diff is emitted as an ordered delta batch —
    the exact record format ``GraphStore.apply_delta`` replays and the
    archive's binary delta entries carry — so scripts can turn any two
    snapshots into a shippable delta.
    """
    from repro.core.diff import snapshot_diff

    old = load_snapshot(args.old)
    new = load_snapshot(args.new)
    diff = snapshot_diff(old, new)
    if args.format == "json":
        from repro.delta import delta_from_diff, delta_to_json

        batch = delta_from_diff(old, new, diff)
        print(delta_to_json(batch))
        return 1 if args.exit_code and not batch.empty else 0
    if diff.unchanged:
        print("snapshots are identical (by entity identity)")
        return 0
    _print_diff(diff, args.verbose)
    return 1 if args.exit_code else 0


def cmd_inventory(_args: argparse.Namespace) -> int:
    """List the dataset registry (the paper's Table 8)."""
    print(f"{len(DATASETS)} datasets from {len(organizations())} organizations\n")
    print(f"{'organization':<26} {'dataset':<28} {'frequency':<10} license")
    print("-" * 84)
    for spec in DATASETS:
        print(
            f"{spec.organization:<26} {spec.name:<28} {spec.frequency:<10} "
            f"{spec.license}"
        )
    return 0


def cmd_ontology(_args: argparse.Namespace) -> int:
    """List entities and relationships (Tables 6 and 7)."""
    print(f"{len(ENTITIES)} entities:")
    for definition in ENTITIES.values():
        keys = ", ".join(definition.key_properties)
        print(f"  :{definition.label:<26} key: {keys}")
    print(f"\n{len(RELATIONSHIPS)} relationships:")
    for definition in RELATIONSHIPS.values():
        endpoints = ", ".join(f"{s}->{e}" for s, e in definition.endpoints[:3])
        print(f"  :{definition.type:<26} {endpoints}")
    return 0


def cmd_studies(args: argparse.Namespace) -> int:
    """Run every reproduction study and print the headline numbers."""
    from repro.studies import (
        compare_origin_datasets,
        run_combined_study,
        run_dns_robustness_study,
        run_ripki_study,
        run_spof_study,
    )

    config = _SCALES[args.scale](seed=args.seed)
    world = build_world(config)
    iyp, report = build_iyp(world)
    print(f"graph: {report.nodes:,} nodes / {report.relationships:,} rels\n")

    ripki = run_ripki_study(iyp)
    print("RiPKI (Table 2):", {k: round(v, 1) for k, v in ripki.table2_row().items()})
    dns = run_dns_robustness_study(iyp)
    print("DNS practices (Table 3):", {k: round(v, 1) for k, v in dns.table3_row().items()})
    print(
        "Shared infra (Table 4): "
        f"NS med/max {dns.cno_by_ns.median}/{dns.cno_by_ns.maximum}, "
        f"/24 med/max {dns.cno_by_slash24.median}/{dns.cno_by_slash24.maximum}"
    )
    combined = run_combined_study(iyp)
    print(
        "NS RPKI (5.1.1): "
        f"prefixes {combined.ns_prefixes_covered_pct:.1f}%, "
        f"domains {combined.domains_on_covered_ns_pct:.1f}%"
    )
    spof = run_spof_study(iyp)
    top = spof.top_countries(3)
    print("SPoF top countries (Fig 5):", [c for c, _ in top])
    comparison = compare_origin_datasets(iyp)
    print(
        f"Dataset diff (6.1): {comparison.total} disagreements, "
        f"IPv6-dominated={comparison.ipv6_dominated}"
    )
    return 0


def cmd_selfcheck(args: argparse.Namespace) -> int:
    """Validate a world configuration's internal consistency."""
    from repro.simnet.validate import validate_world

    config = _SCALES[args.scale](seed=args.seed)
    world = build_world(config)
    report = validate_world(world)
    print(f"checks run: {report.checks_run}")
    if report.ok:
        print("world is consistent")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def cmd_report(args: argparse.Namespace) -> int:
    """Generate the weekly study report from a snapshot."""
    from repro.studies.report import generate_report

    iyp = _load_iyp(args.snapshot)
    report = generate_report(iyp, snapshot_label=args.snapshot)
    if args.output:
        Path(args.output).write_text(report.markdown, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(report.markdown)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a knowledge graph over HTTP (the public-instance analogue).

    With ``--archive`` the served store comes out of a snapshot archive
    (``--snapshot`` is then an archive selector, default ``latest``),
    ``/query`` accepts ``snapshot=`` for time travel, ``POST /admin/swap``
    hot-swaps the live store, and ``--watch`` polls the archive so new
    builds go live without a restart.  ``--follow`` is the incremental
    variant of ``--watch``: archived *delta* entries are applied to the
    live store in place — O(changes), no reload, no swap — falling back
    to a full load-and-swap whenever the pending entries do not form a
    clean delta chain on what is being served.
    """
    from repro.server import QueryService, create_server
    from repro.server.metrics import Metrics

    if args.watch is not None and args.follow is not None:
        print("--watch and --follow are mutually exclusive", file=sys.stderr)
        return 1
    # One registry across build and serving, so pipeline counters show
    # up on the served /metrics endpoint.
    metrics = Metrics()
    archive = None
    snapshot_label = None
    if args.archive:
        from repro.archive import SnapshotArchive

        archive = SnapshotArchive(args.archive)
        if not archive.entries():
            print(f"archive {args.archive}/ has no snapshots", file=sys.stderr)
            return 1
        selector = args.snapshot or "latest"
        entry = archive.resolve(selector)
        print(f"Loading archived snapshot {entry.label} ({entry.filename})...")
        store = archive.load(entry)
        snapshot_label = entry.label
    elif args.snapshot:
        print(f"Loading snapshot {args.snapshot}...")
        store = load_snapshot(args.snapshot)
    else:
        print(f"Building synthetic world (scale={args.scale}, seed={args.seed})...")
        world = build_world(_SCALES[args.scale](seed=args.seed))
        iyp, report = build_iyp(world, metrics=metrics)
        print(
            f"Built {report.nodes:,} nodes / {report.relationships:,} "
            f"relationships in {report.total_seconds:.1f}s"
        )
        store = iyp.store
    if args.workers > 1 and args.backend != "columnar":
        print("--workers N (N>1) requires --backend columnar", file=sys.stderr)
        return 1
    if args.backend == "columnar":
        if args.workers > 1:
            return _serve_pool(args, store, archive, snapshot_label)
        from repro.columnar import ColumnarGraphStore

        print("Building columnar arrays (read-only backend)...")
        store = ColumnarGraphStore.from_store(store)
    service = QueryService(
        store,
        max_concurrent=args.max_concurrent,
        default_timeout=args.timeout,
        default_max_rows=args.max_rows,
        cache_size=args.cache_size,
        metrics=metrics,
        tracing=not args.no_trace,
        slow_query_seconds=args.slow_query_threshold,
        archive=archive,
        snapshot_label=snapshot_label,
    )
    watcher = None
    interval = args.watch if args.watch is not None else args.follow
    if interval is not None:
        if archive is None:
            print("--watch/--follow requires --archive", file=sys.stderr)
            return 1
        from repro.archive import ArchiveWatcher

        follow = args.follow is not None
        watcher = ArchiveWatcher(service, archive, interval=interval, follow=follow)
        watcher.start()
        mode = "following deltas in" if follow else "watching"
        print(f"{mode.capitalize()} {args.archive}/ every {interval:g}s")
    server = create_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"Serving {store.node_count:,} nodes / "
        f"{store.relationship_count:,} relationships on http://{host}:{port}"
    )
    print(
        "Endpoints: POST /query /profile /lint /admin/swap; GET /explain "
        "/ontology /archive /archive/info /stats /healthz /readyz /metrics "
        "/quality /debug/slowlog /debug/statements /debug/traces /debug/trace"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if watcher is not None:
            watcher.stop()
        server.server_close()
        dump = service.slowlog.format_text()
        if dump:
            print(dump)
        if service.statements is not None:
            statements = service.statements.format_text()
            if statements:
                print(statements)
    return 0


def _serve_pool(
    args: argparse.Namespace, store, archive, snapshot_label: str | None
) -> int:
    """Multi-process serving: pack the graph into shared memory and
    pre-fork ``--workers`` query processes onto one listening socket.

    Hot swap is parent-driven here (``/admin/swap`` would only reach
    whichever worker accepted the connection): with ``--watch`` the
    parent polls the archive, packs new snapshots into fresh segments,
    and broadcasts them to every worker; the old segment is unlinked
    once all workers acknowledge.  ``--follow`` keeps those swap
    semantics on this path (a frozen shared-memory segment cannot be
    mutated in place) — delta entries still work, because the archive's
    chain-aware ``load()`` materializes base + deltas before packing.
    """
    import multiprocessing
    import signal
    import time as time_mod

    from repro.columnar.pool import WorkerPool
    from repro.columnar.shm import pack_store

    if "fork" not in multiprocessing.get_all_start_methods():
        print("--workers requires fork support (POSIX)", file=sys.stderr)
        return 1
    # SIGTERM (docker stop, systemd) must unwind like Ctrl-C so the
    # shared-memory segment is unlinked, not leaked in /dev/shm.
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    print(f"Packing {store.node_count:,} nodes into shared memory...")
    manifest = pack_store(store)
    pool = WorkerPool(
        manifest,
        host=args.host,
        port=args.port,
        workers=args.workers,
        service_config={
            "max_concurrent": args.max_concurrent,
            "default_timeout": args.timeout,
            "default_max_rows": args.max_rows,
            "cache_size": args.cache_size,
            "tracing": not args.no_trace,
            "slow_query_seconds": args.slow_query_threshold,
            "snapshot_label": snapshot_label,
        },
    )
    pool.start()
    host, port = pool.address
    print(
        f"Serving {manifest.nodes:,} nodes / "
        f"{manifest.relationships:,} relationships on http://{host}:{port} "
        f"({args.workers} worker processes, backend columnar, "
        f"segment {manifest.name})"
    )
    last_label = snapshot_label
    interval = args.watch if args.watch is not None else args.follow
    try:
        while True:
            time_mod.sleep(interval if interval else 3600.0)
            if archive is None or not interval:
                continue
            entry = archive.resolve("latest")
            if entry.label == last_label:
                continue
            print(f"New snapshot {entry.label}; packing and swapping...")
            new_manifest = pack_store(archive.load(entry))
            summary = pool.swap(new_manifest, label=entry.label)
            last_label = entry.label
            print(
                f"Swapped {summary['workers']} workers to {entry.label}; "
                f"unlinked {summary['unlinked_segment']}"
            )
    except KeyboardInterrupt:
        print("\nshutting down worker pool")
    finally:
        pool.stop()
    return 0


def cmd_store_info(args: argparse.Namespace) -> int:
    """Describe a graph store: composition plus the estimated memory
    footprint of each backend for the same data."""
    import json

    from repro.columnar import ColumnarGraphStore

    if args.snapshot:
        print(f"Loading snapshot {args.snapshot}...", file=sys.stderr)
        store = load_snapshot(args.snapshot)
    else:
        world = build_world(_SCALES[args.scale](seed=args.seed))
        iyp, _report = build_iyp(world)
        store = iyp.store
    columnar = ColumnarGraphStore.from_store(store)
    info = {
        "nodes": store.node_count,
        "relationships": store.relationship_count,
        "labels": dict(sorted(store.label_counts().items())),
        "relationship_types": dict(
            sorted(store.relationship_type_counts().items())
        ),
        "indexes": [list(pair) for pair in store.indexes()],
        "constraints": [list(pair) for pair in store.constraints()],
        "backends": {
            store.backend_name: store.memory_info(),
            columnar.backend_name: columnar.memory_info(),
        },
    }
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    print(f"nodes:         {info['nodes']:,}")
    print(f"relationships: {info['relationships']:,}")
    print("labels:")
    for label, count in info["labels"].items():
        print(f"  {label:<24} {count:>10,}")
    print("relationship types:")
    for rel_type, count in info["relationship_types"].items():
        print(f"  {rel_type:<24} {count:>10,}")
    print(f"indexes:       {', '.join(':'.join(p) for p in info['indexes']) or '-'}")
    print(
        "constraints:   "
        f"{', '.join(':'.join(p) for p in info['constraints']) or '-'}"
    )
    print("estimated memory footprint (bytes):")
    backends = info["backends"]
    components = sorted(
        {key for sizes in backends.values() for key in sizes}
    )
    header = f"  {'component':<22}" + "".join(
        f"{name:>14}" for name in sorted(backends)
    )
    print(header)
    for component in components:
        row = f"  {component:<22}"
        for name in sorted(backends):
            row += f"{backends[name].get(component, 0):>14,}"
        print(row)
    return 0


def _render_statements(snapshot: dict) -> str:
    """Statement-statistics table shared by ``repro top`` refreshes."""
    lines = [
        f"{snapshot['statements_tracked']} statement(s) tracked "
        f"(capacity {snapshot['capacity']}), "
        f"{snapshot['recorded_total']:,} calls recorded, "
        f"{snapshot['evicted_total']:,} evicted — sorted by {snapshot['sort']}",
        f"{'fingerprint':<14} {'calls':>7} {'rows':>9} {'err':>4} {'hit%':>5} "
        f"{'total s':>8} {'mean ms':>8} {'p95 ms':>8} {'p99 ms':>8}  query",
        "-" * 110,
    ]
    for stmt in snapshot["statements"]:
        query = stmt["query"]
        if len(query) > 48:
            query = query[:45] + "..."
        errors = sum(stmt["errors"].values())
        lines.append(
            f"{stmt['fingerprint']:<14} {stmt['calls']:>7,} {stmt['rows']:>9,} "
            f"{errors:>4} {stmt['cache_hit_rate'] * 100:>4.0f}% "
            f"{stmt['total_seconds']:>8.3f} {stmt['mean_ms']:>8.2f} "
            f"{stmt['p95_ms']:>8.2f} {stmt['p99_ms']:>8.2f}  {query}"
        )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Live statement monitor against a running server.

    Polls ``GET /debug/statements`` and redraws a ``pg_stat_statements``
    style table every ``--interval`` seconds; ``--once`` prints a single
    snapshot and exits (the scriptable mode CI and tests use).
    """
    import json
    import time
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    url = (
        f"http://{args.host}:{args.port}/debug/statements"
        f"?top={args.top}&sort={args.sort}"
    )
    while True:
        try:
            with urlopen(url, timeout=10) as response:
                snapshot = json.loads(response.read())
        except HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            print(f"server returned {exc.code}: {detail}", file=sys.stderr)
            return 1
        except (URLError, OSError) as exc:
            reason = getattr(exc, "reason", exc)
            print(f"cannot reach {url}: {reason}", file=sys.stderr)
            return 1
        if not args.once:
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
        print(_render_statements(snapshot))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
            return 0


def cmd_quality(args: argparse.Namespace) -> int:
    """Longitudinal data-quality report over a snapshot archive.

    Reads freshness, coverage, and cross-source agreement out of the
    archive manifest alone (no snapshot is loaded).  Exits 1 when the
    latest snapshot is stale or any crawler is erroring/diverging, so
    the command doubles as a pipeline-health check.
    """
    import json

    from repro.obs import archive_quality, render_quality_report

    archive = _open_archive(args)
    entries = archive.entries()
    if not entries:
        print(f"archive {args.dir}/ is empty", file=sys.stderr)
        return 1
    report = archive_quality(
        [entry.to_dict() for entry in entries],
        stale_after_seconds=args.stale_after * 86400.0,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_quality_report(report))
    return 1 if (report["stale"] or report["problem_crawlers"]) else 0


def _open_archive(args: argparse.Namespace):
    from repro.archive import SnapshotArchive

    return SnapshotArchive(args.dir)


def cmd_archive_list(args: argparse.Namespace) -> int:
    """List a snapshot archive's manifest, oldest first."""
    archive = _open_archive(args)
    entries = archive.entries()
    if not entries:
        print(f"archive {args.dir}/ is empty")
        return 0
    print(f"{'label':<22} {'fmt':>3} {'nodes':>10} {'rels':>10} created")
    print("-" * 70)
    for entry in entries:
        print(
            f"{entry.label:<22} {'v' + str(entry.format):>3} {entry.nodes:>10,} "
            f"{entry.relationships:>10,} {entry.created_at}"
        )
    return 0


def cmd_archive_info(args: argparse.Namespace) -> int:
    """Show one archive entry's manifest record in full."""
    import json

    archive = _open_archive(args)
    try:
        info = archive.info(args.snapshot)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def cmd_archive_verify(args: argparse.Namespace) -> int:
    """Check every archived snapshot against its manifest record."""
    archive = _open_archive(args)
    report = archive.verify(deep=args.deep)
    mode = "deep" if args.deep else "checksum"
    print(f"verified {report.entries_checked} snapshot(s) ({mode})")
    if report.ok:
        print("archive is consistent")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def cmd_archive_diff(args: argparse.Namespace) -> int:
    """Diff two archived snapshots by entity identity."""
    archive = _open_archive(args)
    try:
        diff = archive.diff(args.old, args.new)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if diff.unchanged:
        print(f"{args.old} and {args.new} are identical (by entity identity)")
        return 0
    _print_diff(diff, args.verbose)
    return 1 if args.exit_code else 0


def cmd_archive_prune(args: argparse.Namespace) -> int:
    """Delete all but the newest N snapshots."""
    archive = _open_archive(args)
    removed = archive.prune(args.keep)
    if not removed:
        print("nothing to prune")
        return 0
    for entry in removed:
        print(f"pruned {entry.label} ({entry.filename})")
    return 0


def cmd_archive_add(args: argparse.Namespace) -> int:
    """Import an existing snapshot file into the archive."""
    archive = _open_archive(args)
    store = load_snapshot(args.snapshot)
    label = args.label or Path(args.snapshot).name.split(".")[0]
    entry = archive.add(store, label)
    print(
        f"archived {entry.label} ({entry.filename}, "
        f"{entry.nodes:,} nodes / {entry.relationships:,} rels)"
    )
    return 0


def cmd_analytics(args: argparse.Namespace) -> int:
    """Run one ``algo.*`` procedure against a snapshot.

    ``repro analytics list`` enumerates the registry; any other measure
    name (with or without the ``algo.`` prefix) loads the snapshot, runs
    the procedure, and prints the top rows.  ``--arg`` passes positional
    procedure arguments; values parse as JSON with a plain-string
    fallback, mirroring ``query --param``.
    """
    import json

    from repro.analytics import PROCEDURES, ProcedureContext, get_procedure, suggest

    if args.measure == "list":
        print(f"{'procedure':<28} {'columns':<24} {'precomputed':<12} summary")
        print("-" * 100)
        for spec in PROCEDURES.values():
            columns = ",".join(spec.columns)
            flag = "yes" if spec.precompute else "no"
            print(f"{spec.name:<28} {columns:<24} {flag:<12} {spec.summary}")
        return 0
    name = args.measure if "." in args.measure else f"algo.{args.measure}"
    spec = get_procedure(name)
    if spec is None:
        hint = ""
        hints = suggest(name)
        if hints:
            hint = f" (did you mean {' or '.join(hints)}?)"
        print(f"unknown procedure {name!r}{hint}", file=sys.stderr)
        return 1
    call_args = []
    for raw in args.arg or ():
        try:
            call_args.append(json.loads(raw))
        except json.JSONDecodeError:
            call_args.append(raw)
    iyp = _load_iyp(args.snapshot)
    try:
        rows = spec.run(ProcedureContext(iyp.store), *call_args)
    except (TypeError, ValueError) as exc:
        print(f"bad arguments for {spec.name}{spec.signature}: {exc}", file=sys.stderr)
        return 1
    print(f"{spec.name}{spec.signature}: {len(rows)} row(s)")
    if rows:
        widths = {column: max(len(column), 12) for column in spec.columns}
        print("  ".join(column.ljust(widths[column]) for column in spec.columns))
        for record in rows[: args.top]:
            print(
                "  ".join(
                    str(record[column]).ljust(widths[column])
                    for column in spec.columns
                )
            )
        if len(rows) > args.top:
            print(f"... {len(rows) - args.top} more row(s)")
    return 0


def cmd_docs(args: argparse.Namespace) -> int:
    """Generate the documentation pages from registry and ontology."""
    from repro.docs import write_docs

    for path in write_docs(args.output):
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Internet Yellow Pages reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a knowledge graph snapshot")
    build.add_argument("--scale", choices=sorted(_SCALES), default="small")
    build.add_argument("--seed", type=int, default=20240501)
    build.add_argument("--datasets", help="comma-separated dataset subset")
    build.add_argument("--output", default="iyp.json.gz")
    build.add_argument(
        "--verbose", action="store_true",
        help="print per-crawler telemetry (timings, nodes/rels created vs merged)",
    )
    build.add_argument(
        "--format", choices=("v1", "v2"), default="v1",
        help="snapshot format for --output: v1 gzip-JSON (default) or "
             "the v2 framed binary format",
    )
    build.add_argument(
        "--archive", metavar="DIR",
        help="also archive the built graph into this snapshot archive",
    )
    build.add_argument(
        "--archive-label", metavar="LABEL",
        help="label for the archived snapshot (default: build-NNNN)",
    )
    build.set_defaults(func=cmd_build)

    query = sub.add_parser("query", help="run a Cypher query on a snapshot")
    query.add_argument("query")
    query.add_argument("--snapshot", default="iyp.json.gz")
    query.add_argument(
        "--limit", type=int, default=None,
        help="abort when the query returns more rows than this "
             "(default: unlimited; display still truncates at 50)",
    )
    query.add_argument(
        "--timeout", type=float, default=None,
        help="abort the query after this many seconds",
    )
    query.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="query parameter (repeatable); values parse as JSON, "
             "falling back to plain strings",
    )
    query.add_argument(
        "--profile", action="store_true",
        help="execute the query and print the annotated operator tree "
             "(rows, store hits, timings) above the results",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print the execution plan and lint warnings without "
             "running the query",
    )
    query.set_defaults(func=cmd_query)

    serve = sub.add_parser("serve", help="serve a snapshot over HTTP")
    serve.add_argument(
        "--snapshot",
        help="snapshot to serve (default: build a world); with --archive "
             "this is an archive selector instead of a file path",
    )
    serve.add_argument(
        "--archive", metavar="DIR",
        help="serve out of this snapshot archive (enables time travel "
             "via snapshot= and hot swapping via POST /admin/swap)",
    )
    serve.add_argument(
        "--watch", type=float, metavar="SECONDS",
        help="poll the archive at this interval and hot-swap to new "
             "snapshots as they appear (requires --archive)",
    )
    serve.add_argument(
        "--follow", type=float, metavar="SECONDS",
        help="like --watch, but apply archived delta entries to the "
             "live store in place (O(changes), no reload); falls back "
             "to a full swap when the chain breaks (requires --archive)",
    )
    serve.add_argument("--scale", choices=sorted(_SCALES), default="small")
    serve.add_argument("--seed", type=int, default=20240501)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734)
    serve.add_argument(
        "--max-concurrent", type=int, default=8,
        help="admission control: maximum concurrent queries",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-query time budget in seconds",
    )
    serve.add_argument(
        "--max-rows", type=int, default=100_000,
        help="default per-query result row limit",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result cache capacity (entries)",
    )
    serve.add_argument(
        "--slow-query-threshold", type=float, default=1.0, metavar="SECONDS",
        help="queries at or above this many seconds land in the slow-query log",
    )
    serve.add_argument(
        "--no-trace", action="store_true",
        help="disable span tracing and per-query profiling",
    )
    serve.add_argument(
        "--backend", choices=("dict", "columnar"), default="dict",
        help="store backend: the mutable dict-of-objects store, or the "
             "read-only columnar array store (shareable across processes)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="with --backend columnar: pre-fork N query processes "
             "attached to one shared-memory graph segment",
    )
    serve.set_defaults(func=cmd_serve)

    store_info = sub.add_parser(
        "store-info",
        help="graph composition and per-backend memory footprint",
    )
    store_info.add_argument(
        "--snapshot", help="snapshot file to inspect (default: build a world)"
    )
    store_info.add_argument("--scale", choices=sorted(_SCALES), default="small")
    store_info.add_argument("--seed", type=int, default=20240501)
    store_info.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    store_info.set_defaults(func=cmd_store_info)

    top = sub.add_parser(
        "top", help="live statement monitor against a running server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8734)
    top.add_argument(
        "--top", type=int, default=20, help="statements to show (default 20)"
    )
    top.add_argument(
        "--sort", choices=("total_seconds", "calls", "rows", "mean_ms", "p99_ms"),
        default="total_seconds",
        help="ranking column (default total_seconds)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2s)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (scriptable mode)",
    )
    top.set_defaults(func=cmd_top)

    quality = sub.add_parser(
        "quality", help="longitudinal data-quality report over an archive"
    )
    quality.add_argument(
        "--dir", default="archive", metavar="DIR",
        help="archive directory (default: archive/)",
    )
    quality.add_argument(
        "--stale-after", type=float, default=8.0, metavar="DAYS",
        help="flag the archive stale beyond this age (default 8 days)",
    )
    quality.add_argument(
        "--json", action="store_true",
        help="emit the raw report as JSON instead of the table",
    )
    quality.set_defaults(func=cmd_quality)

    explain = sub.add_parser("explain", help="show a query's execution plan")
    explain.add_argument("query")
    explain.add_argument("--snapshot", default="iyp.json.gz")
    explain.set_defaults(func=cmd_explain)

    lint = sub.add_parser(
        "lint", help="statically check Cypher queries against the ontology"
    )
    lint.add_argument(
        "sources", nargs="+", metavar="SOURCE",
        help="a .py/.md/.cypher file, '-' for stdin, or an inline query",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    lint.add_argument(
        "--snapshot",
        help="lint against this snapshot's indexes too (enables LNT008)",
    )
    lint.add_argument(
        "--python", action="store_true",
        help="treat SOURCEs as Python files/dirs and run the "
             "concurrency-safety analyzer instead of the query linter",
    )
    lint.set_defaults(func=cmd_lint)

    concurrency = sub.add_parser(
        "check-concurrency",
        help="check the codebase's own lock discipline (RACE001-RACE007)",
    )
    concurrency.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="Python files or directories (default: the serving stack)",
    )
    concurrency.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    concurrency.set_defaults(func=cmd_check_concurrency)

    validate = sub.add_parser(
        "validate-graph", help="sweep a snapshot for ontology violations"
    )
    validate.add_argument("--snapshot", default="iyp.json.gz")
    validate.add_argument(
        "--show", type=int, default=3, metavar="N",
        help="violations to print per crawler (default 3)",
    )
    validate.set_defaults(func=cmd_validate_graph)

    info = sub.add_parser("info", help="summarize a snapshot")
    info.add_argument("--snapshot", default="iyp.json.gz")
    info.set_defaults(func=cmd_info)

    diff = sub.add_parser("diff", help="diff two snapshots by identity")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json emits the diff as an ordered delta batch (the "
             "apply_delta record format)",
    )
    diff.add_argument(
        "--verbose", action="store_true",
        help="list changed entities, including per-property before/after",
    )
    diff.add_argument(
        "--exit-code", action="store_true",
        help="exit 1 when the snapshots differ (CI tripwire)",
    )
    diff.set_defaults(func=cmd_diff)

    archive = sub.add_parser(
        "archive", help="manage a directory of archived snapshots"
    )
    archive_sub = archive.add_subparsers(dest="archive_command", required=True)

    def _archive_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        sub_parser = archive_sub.add_parser(name, help=help_text)
        sub_parser.add_argument(
            "--dir", default="archive", metavar="DIR",
            help="archive directory (default: archive/)",
        )
        return sub_parser

    archive_list = _archive_parser("list", "list archived snapshots")
    archive_list.set_defaults(func=cmd_archive_list)

    archive_info = _archive_parser("info", "show one entry's manifest record")
    archive_info.add_argument("snapshot", help="label, unique prefix, or 'latest'")
    archive_info.set_defaults(func=cmd_archive_info)

    archive_verify = _archive_parser(
        "verify", "check snapshots against the manifest"
    )
    archive_verify.add_argument(
        "--deep", action="store_true",
        help="also load each snapshot and recount nodes/relationships",
    )
    archive_verify.set_defaults(func=cmd_archive_verify)

    archive_diff = _archive_parser("diff", "diff two archived snapshots")
    archive_diff.add_argument("old", help="label, unique prefix, or 'latest'")
    archive_diff.add_argument("new", help="label, unique prefix, or 'latest'")
    archive_diff.add_argument(
        "--verbose", action="store_true",
        help="list changed entities, including per-property before/after",
    )
    archive_diff.add_argument(
        "--exit-code", action="store_true",
        help="exit 1 when the snapshots differ (CI tripwire)",
    )
    archive_diff.set_defaults(func=cmd_archive_diff)

    archive_prune = _archive_parser("prune", "delete all but the newest N")
    archive_prune.add_argument("--keep", type=int, required=True, metavar="N")
    archive_prune.set_defaults(func=cmd_archive_prune)

    archive_add = _archive_parser("add", "import a snapshot file")
    archive_add.add_argument("snapshot", help="snapshot file (v1 or v2)")
    archive_add.add_argument("--label", help="entry label (default: file stem)")
    archive_add.set_defaults(func=cmd_archive_add)

    inventory = sub.add_parser("inventory", help="list the dataset registry")
    inventory.set_defaults(func=cmd_inventory)

    ontology = sub.add_parser("ontology", help="list entities and relationships")
    ontology.set_defaults(func=cmd_ontology)

    studies = sub.add_parser("studies", help="run all reproduction studies")
    studies.add_argument("--scale", choices=sorted(_SCALES), default="small")
    studies.add_argument("--seed", type=int, default=20240501)
    studies.set_defaults(func=cmd_studies)

    selfcheck = sub.add_parser(
        "selfcheck", help="validate a world configuration's consistency"
    )
    selfcheck.add_argument("--scale", choices=sorted(_SCALES), default="small")
    selfcheck.add_argument("--seed", type=int, default=20240501)
    selfcheck.set_defaults(func=cmd_selfcheck)

    report = sub.add_parser("report", help="generate the weekly study report")
    report.add_argument("--snapshot", default="iyp.json.gz")
    report.add_argument("--output", help="write markdown here (default: stdout)")
    report.set_defaults(func=cmd_report)

    docs = sub.add_parser("docs", help="generate documentation pages")
    docs.add_argument("--output", default="documentation")
    docs.set_defaults(func=cmd_docs)

    analytics = sub.add_parser(
        "analytics", help="run a graph analytics procedure on a snapshot"
    )
    analytics.add_argument(
        "measure",
        help="procedure name (with or without the algo. prefix), or "
        "'list' to enumerate the registry",
    )
    analytics.add_argument("--snapshot", default="iyp.json.gz")
    analytics.add_argument(
        "--arg",
        action="append",
        help="positional procedure argument (repeatable, JSON or string)",
    )
    analytics.add_argument(
        "--top", type=int, default=20, help="rows to print (default 20)"
    )
    analytics.set_defaults(func=cmd_analytics)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
