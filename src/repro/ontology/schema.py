"""Schema validation of a graph against the IYP ontology.

The validator checks that every node carries a known entity label and
its identifying properties, that every relationship type is defined and
connects permitted endpoint labels, and that every relationship carries
the provenance ("reference") properties of Section 2.2 — except for the
links added by the refinement pass, which are flagged as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphdb.model import Node, Relationship
from repro.graphdb.store import GraphStore
from repro.ontology.entities import ENTITIES
from repro.ontology.relationships import RELATIONSHIPS

# The provenance properties systematically added to every imported link
# (paper Section 2.2).
REFERENCE_PROPERTIES = (
    "reference_org",
    "reference_name",
    "reference_url_info",
    "reference_url_data",
    "reference_time_modification",
    "reference_time_fetch",
)


@dataclass
class OntologyViolation:
    """One schema violation found during validation."""

    kind: str  # 'node' or 'relationship'
    element_id: int
    message: str

    def __str__(self) -> str:
        return f"{self.kind} {self.element_id}: {self.message}"


@dataclass
class ValidationReport:
    """Aggregated validation outcome."""

    violations: list[OntologyViolation] = field(default_factory=list)
    nodes_checked: int = 0
    relationships_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class SchemaValidator:
    """Validates a :class:`GraphStore` against the ontology."""

    def __init__(self, require_reference: bool = True):
        self._require_reference = require_reference

    def validate(self, store: GraphStore) -> ValidationReport:
        """Validate every node and relationship in the store."""
        report = ValidationReport()
        for node in store.iter_nodes():
            report.nodes_checked += 1
            self._check_node(node, report)
        for rel in store.iter_relationships():
            report.relationships_checked += 1
            self._check_relationship(store, rel, report)
        return report

    def _check_node(self, node: Node, report: ValidationReport) -> None:
        known = [label for label in node.labels if label in ENTITIES]
        if not known:
            report.violations.append(
                OntologyViolation(
                    "node", node.id, f"no ontology label among {sorted(node.labels)}"
                )
            )
            return
        for label in known:
            definition = ENTITIES[label]
            missing = [
                key
                for key in definition.key_properties
                if key not in node.properties
            ]
            if missing:
                report.violations.append(
                    OntologyViolation(
                        "node",
                        node.id,
                        f":{label} missing identifying properties {missing}",
                    )
                )

    def _check_relationship(
        self, store: GraphStore, rel: Relationship, report: ValidationReport
    ) -> None:
        definition = RELATIONSHIPS.get(rel.type)
        if definition is None:
            report.violations.append(
                OntologyViolation(
                    "relationship", rel.id, f"unknown relationship type :{rel.type}"
                )
            )
            return
        start = store.get_node(rel.start_id)
        end = store.get_node(rel.end_id)
        if not self._endpoints_permitted(definition.endpoints, start, end):
            report.violations.append(
                OntologyViolation(
                    "relationship",
                    rel.id,
                    f":{rel.type} between {sorted(start.labels)} and "
                    f"{sorted(end.labels)} not permitted by the ontology",
                )
            )
        if self._require_reference and "reference_name" not in rel.properties:
            report.violations.append(
                OntologyViolation(
                    "relationship",
                    rel.id,
                    f":{rel.type} lacks provenance (reference_name)",
                )
            )

    @staticmethod
    def _endpoints_permitted(
        endpoints: tuple[tuple[str, str], ...], start: Node, end: Node
    ) -> bool:
        for start_label, end_label in endpoints:
            start_ok = start_label == "*" or start_label in start.labels
            end_ok = end_label == "*" or end_label in end.labels
            if start_ok and end_ok:
                return True
            # IYP relationships are stored directed but queried
            # undirected; accept the reverse orientation too.
            rev_start_ok = end_label == "*" or end_label in start.labels
            rev_end_ok = start_label == "*" or start_label in end.labels
            if rev_start_ok and rev_end_ok:
                return True
        return False
