"""Property catalog for the ontology.

Documents the properties that crawlers and the refinement pass actually
write onto each node label and relationship type, along with the
expected value kind.  The linter uses this catalog to flag property
names that no dataset produces (LNT004) and comparisons whose literal
type cannot match the stored values (LNT009); :mod:`repro.docs` renders
it into the ontology reference tables.

Kinds are deliberately coarse: ``"int"``, ``"float"``, ``"str"``,
``"list"``.  ``"int"`` and ``"float"`` are mutually compatible in
comparisons (Cypher numeric semantics); everything else must match
exactly.  Labels absent from the catalog (there are none today) would
simply opt out of property checking.
"""

from __future__ import annotations

from repro.ontology.entities import ENTITIES
from repro.ontology.relationships import RELATIONSHIPS
from repro.ontology.schema import REFERENCE_PROPERTIES

# Value kind of each entity's identifying key property.
_KEY_KINDS: dict[str, str] = {
    "AS": "int",  # asn
    "AtlasMeasurement": "int",  # id
    "AtlasProbe": "int",  # id
    "CaidaIXID": "int",  # id
    "PeeringdbFacID": "int",  # id
    "PeeringdbIXID": "int",  # id
    "PeeringdbNetID": "int",  # id
    "PeeringdbOrgID": "int",  # id
}

# Non-key node properties written by crawlers or the refinement pass.
_NODE_EXTRAS: dict[str, dict[str, str]] = {
    "IP": {"af": "int"},
    "Prefix": {"af": "int"},
    "Country": {"alpha3": "str", "name": "str"},
    "AtlasProbe": {"status": "str", "tags": "list", "af": "int"},
    "AtlasMeasurement": {"type": "str", "af": "int"},
}

# Type-specific relationship properties (every relationship additionally
# carries the reference_* provenance properties).
_REL_EXTRAS: dict[str, dict[str, str]] = {
    "RANK": {"rank": "int"},
    "DEPENDS_ON": {"hege": "float"},
    "POPULATION": {"percent": "float", "users": "int", "value": "float"},
    "ROUTE_ORIGIN_AUTHORIZATION": {"maxLength": "int"},
    "CATEGORIZED": {"ratio": "float"},
}


def _node_catalog() -> dict[str, dict[str, str]]:
    catalog: dict[str, dict[str, str]] = {}
    for definition in ENTITIES.values():
        props = {
            key: _KEY_KINDS.get(definition.label, "str")
            for key in definition.key_properties
        }
        props.update(_NODE_EXTRAS.get(definition.label, {}))
        catalog[definition.label] = props
    return catalog


def _relationship_catalog() -> dict[str, dict[str, str]]:
    provenance = {name: "str" for name in REFERENCE_PROPERTIES}
    catalog: dict[str, dict[str, str]] = {}
    for definition in RELATIONSHIPS.values():
        props = dict(provenance)
        props.update(_REL_EXTRAS.get(definition.type, {}))
        catalog[definition.type] = props
    return catalog


#: label -> {property name -> kind} for every ontology entity.
NODE_PROPERTIES: dict[str, dict[str, str]] = _node_catalog()

#: relationship type -> {property name -> kind} for every ontology type.
RELATIONSHIP_PROPERTIES: dict[str, dict[str, str]] = _relationship_catalog()


def node_property_kind(label: str, name: str) -> str | None:
    """Kind of ``label.name``, or None if unknown to the catalog."""
    return NODE_PROPERTIES.get(label, {}).get(name)


def relationship_property_kind(rel_type: str, name: str) -> str | None:
    """Kind of the property on ``rel_type``, or None if unknown."""
    return RELATIONSHIP_PROPERTIES.get(rel_type, {}).get(name)
