"""Entity (node type) definitions — Table 6 of the paper.

Each entity names the property (or properties) that uniquely identify a
node of that type.  Entities flagged ``loose`` (IXP, Organization, Name)
are identified by name only loosely; exact identification goes through
EXTERNAL_ID relationships to ID nodes, exactly as in IYP.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EntityDef:
    """One node type of the ontology."""

    label: str
    key_properties: tuple[str, ...]
    description: str
    loose: bool = False  # identity is approximate (see EXTERNAL_ID)


ENTITIES: dict[str, EntityDef] = {
    e.label: e
    for e in [
        EntityDef("AS", ("asn",), "Autonomous System, identified by its ASN."),
        EntityDef(
            "AtlasMeasurement", ("id",), "RIPE Atlas measurement, identified by id."
        ),
        EntityDef("AtlasProbe", ("id",), "RIPE Atlas probe, identified by id."),
        EntityDef(
            "AuthoritativeNameServer",
            ("name",),
            "Authoritative DNS nameserver for a set of domain names.",
        ),
        EntityDef(
            "BGPCollector",
            ("name",),
            "A RIPE RIS or RouteViews BGP collector, identified by name.",
        ),
        EntityDef(
            "CaidaIXID", ("id",), "Unique IXP identifier from CAIDA's IXP dataset."
        ),
        EntityDef(
            "Country",
            ("country_code",),
            "An economy, identified by its two-letter (country_code) or "
            "three-letter (alpha3) code.",
        ),
        EntityDef(
            "DomainName",
            ("name",),
            "A DNS zone / domain name that is not necessarily a resolvable "
            "FQDN (see HostName).",
        ),
        EntityDef(
            "Estimate",
            ("name",),
            "A report approximating a quantity, e.g. the World Bank "
            "population estimate.",
        ),
        EntityDef(
            "Facility", ("name",), "Co-location facility for IXPs and ASes.", loose=True
        ),
        EntityDef("HostName", ("name",), "A fully qualified domain name."),
        EntityDef(
            "IP",
            ("ip",),
            "An IPv4 or IPv6 address; the af property gives the address family.",
        ),
        EntityDef(
            "IXP", ("name",), "An Internet Exchange Point, loosely identified by "
            "name (see EXTERNAL_ID).", loose=True,
        ),
        EntityDef(
            "Name", ("name",), "A name that can be associated to a network resource."
        ),
        EntityDef(
            "OpaqueID",
            ("id",),
            "Opaque-id from RIR delegated files; resources sharing one are "
            "registered to the same holder.",
        ),
        EntityDef(
            "Organization", ("name",), "An organization, loosely identified by name.",
            loose=True,
        ),
        EntityDef(
            "PeeringdbFacID", ("id",), "Facility identifier assigned by PeeringDB."
        ),
        EntityDef("PeeringdbIXID", ("id",), "IXP identifier assigned by PeeringDB."),
        EntityDef("PeeringdbNetID", ("id",), "AS identifier assigned by PeeringDB."),
        EntityDef(
            "PeeringdbOrgID", ("id",), "Organization identifier assigned by PeeringDB."
        ),
        EntityDef(
            "Prefix",
            ("prefix",),
            "An IPv4 or IPv6 prefix; the af property gives the address family.",
        ),
        EntityDef(
            "Ranking",
            ("name",),
            "A ranking of Internet resources (e.g. Tranco); rank values live "
            "on RANK relationships.",
        ),
        EntityDef(
            "Tag",
            ("label",),
            "The output of a manual or automated classification.",
        ),
        EntityDef("URL", ("url",), "The full URL of an Internet resource."),
    ]
}


def entity(label: str) -> EntityDef:
    """Return the entity definition for a label; raises KeyError."""
    return ENTITIES[label]
