"""Relationship type definitions — Table 7 of the paper.

Endpoint constraints list the permitted (start label, end label) pairs.
A pair of ``("*", "*")`` means unconstrained.  Directions follow IYP's
modeling: e.g. ``(:AS)-[:ORIGINATE]->(:Prefix)`` and
``(:DomainName)-[:MANAGED_BY]->(:AuthoritativeNameServer)``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RelationshipDef:
    """One relationship type of the ontology."""

    type: str
    endpoints: tuple[tuple[str, str], ...]
    description: str


RELATIONSHIPS: dict[str, RelationshipDef] = {
    r.type: r
    for r in [
        RelationshipDef(
            "ALIAS_OF",
            (("HostName", "HostName"),),
            "Equivalent to a DNS CNAME record; relates two HostNames.",
        ),
        RelationshipDef(
            "ASSIGNED",
            (
                ("AS", "OpaqueID"),
                ("Prefix", "OpaqueID"),
                ("AtlasProbe", "IP"),
            ),
            "RIR allocation of a resource to a holder, or the IP assigned "
            "to an Atlas probe.",
        ),
        RelationshipDef(
            "AVAILABLE",
            (("AS", "OpaqueID"), ("Prefix", "OpaqueID")),
            "Resource is unallocated and available at the related RIR.",
        ),
        RelationshipDef(
            "CATEGORIZED",
            (("AS", "Tag"), ("Prefix", "Tag"), ("URL", "Tag")),
            "Resource classified according to the Tag.",
        ),
        RelationshipDef(
            "COUNTRY",
            (("*", "Country"),),
            "Relates any node to a country (geo-location or registration).",
        ),
        RelationshipDef(
            "DEPENDS_ON",
            (("AS", "AS"), ("Prefix", "AS"), ("Country", "AS")),
            "Reachability of the AS/Prefix (or a country's networks as a "
            "whole) depends on a certain AS.",
        ),
        RelationshipDef(
            "EXTERNAL_ID",
            (
                ("AS", "PeeringdbNetID"),
                ("IXP", "PeeringdbIXID"),
                ("IXP", "CaidaIXID"),
                ("Facility", "PeeringdbFacID"),
                ("Organization", "PeeringdbOrgID"),
            ),
            "Relates a node to an identifier used by an organization.",
        ),
        RelationshipDef(
            "LOCATED_IN",
            (
                ("IXP", "Facility"),
                ("AS", "Facility"),
                ("AtlasProbe", "AS"),
                ("IP", "Facility"),
            ),
            "Geographical or topological location of a resource.",
        ),
        RelationshipDef(
            "MANAGED_BY",
            (
                ("AS", "Organization"),
                ("DomainName", "AuthoritativeNameServer"),
                ("IXP", "Organization"),
                ("Prefix", "Organization"),
                ("Prefix", "AuthoritativeNameServer"),
            ),
            "Entity in charge of a network resource (an AS by its "
            "organization, a DomainName or a reverse zone by its "
            "authoritative nameserver).",
        ),
        RelationshipDef(
            "MEMBER_OF",
            (("AS", "IXP"), ("AS", "Organization")),
            "Membership of an organization, e.g. an AS is member of an IXP.",
        ),
        RelationshipDef(
            "NAME",
            (("*", "Name"),),
            "Relates an entity to its usual or registered name.",
        ),
        RelationshipDef(
            "ORIGINATE",
            (("AS", "Prefix"),),
            "The prefix is seen originated by that AS in BGP.",
        ),
        RelationshipDef(
            "PARENT",
            (("DomainName", "DomainName"),),
            "Zone cut between a parent zone and a more specific zone.",
        ),
        RelationshipDef(
            "PART_OF",
            (
                ("IP", "Prefix"),
                ("Prefix", "Prefix"),
                ("HostName", "DomainName"),
                ("DomainName", "DomainName"),
                ("AtlasProbe", "AtlasMeasurement"),
                ("URL", "HostName"),
            ),
            "One entity is a part of another (IP in Prefix, HostName in "
            "DomainName, covered Prefix in covering Prefix, participating "
            "probe in Atlas measurement).",
        ),
        RelationshipDef(
            "PEERS_WITH",
            (("AS", "AS"), ("AS", "BGPCollector")),
            "BGP connection between two ASes, or an AS and a collector.",
        ),
        RelationshipDef(
            "POPULATION",
            (("AS", "Country"), ("Country", "Estimate"), ("AS", "Estimate")),
            "Fraction of a country's Internet population hosted by an AS, "
            "or a country's estimated population.",
        ),
        RelationshipDef(
            "QUERIED_FROM",
            (("DomainName", "AS"), ("DomainName", "Country")),
            "The AS/Country is among the top querying the DomainName "
            "(Cloudflare Radar).",
        ),
        RelationshipDef(
            "RANK",
            (("*", "Ranking"),),
            "The resource appears in the Ranking; the rank property gives "
            "the position.",
        ),
        RelationshipDef(
            "RESERVED",
            (("AS", "OpaqueID"), ("Prefix", "OpaqueID")),
            "Resource reserved for a certain purpose by RIRs or IANA.",
        ),
        RelationshipDef(
            "RESOLVES_TO",
            (
                ("HostName", "IP"),
                ("AuthoritativeNameServer", "IP"),
            ),
            "A DNS resolution of the HostName yielded this IP address.",
        ),
        RelationshipDef(
            "ROUTE_ORIGIN_AUTHORIZATION",
            (("AS", "Prefix"),),
            "The AS is authorized by RPKI to originate the Prefix.",
        ),
        RelationshipDef(
            "SIBLING_OF",
            (("AS", "AS"), ("Organization", "Organization")),
            "The two resources represent the same entity.",
        ),
        RelationshipDef(
            "TARGET",
            (
                ("AtlasMeasurement", "IP"),
                ("AtlasMeasurement", "HostName"),
                ("AtlasMeasurement", "AS"),
            ),
            "An Atlas measurement probes that resource.",
        ),
        RelationshipDef(
            "WEBSITE",
            (
                ("URL", "Organization"),
                ("URL", "Facility"),
                ("URL", "IXP"),
                ("URL", "AS"),
            ),
            "A common website for the resource.",
        ),
    ]
}


def relationship(rel_type: str) -> RelationshipDef:
    """Return the relationship definition for a type; raises KeyError."""
    return RELATIONSHIPS[rel_type]
