"""The IYP ontology: entities, relationships, and schema validation.

Mirrors Tables 6 and 7 of the paper: 24 entity (node) types and 24
relationship types, each with a description, identifying properties, and
permitted endpoint combinations.  The loader validates imported data
against this schema, and the studies use it for documentation.
"""

from repro.ontology.entities import ENTITIES, EntityDef, entity
from repro.ontology.properties import (
    NODE_PROPERTIES,
    RELATIONSHIP_PROPERTIES,
    node_property_kind,
    relationship_property_kind,
)
from repro.ontology.relationships import RELATIONSHIPS, RelationshipDef, relationship
from repro.ontology.schema import (
    REFERENCE_PROPERTIES,
    OntologyViolation,
    SchemaValidator,
)

__all__ = [
    "ENTITIES",
    "EntityDef",
    "NODE_PROPERTIES",
    "OntologyViolation",
    "REFERENCE_PROPERTIES",
    "RELATIONSHIPS",
    "RELATIONSHIP_PROPERTIES",
    "RelationshipDef",
    "SchemaValidator",
    "entity",
    "node_property_kind",
    "relationship",
    "relationship_property_kind",
]
