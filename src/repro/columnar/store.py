"""Read-only columnar graph backend over int-id arrays.

The dict backend (:class:`repro.graphdb.store.GraphStore`) stores one
Python object per node and relationship.  That is the right shape for a
mutable store, but it cannot be shared between processes and its memory
footprint is dominated by object headers.  This module stores the same
graph as a set of flat typed arrays — the live-engine version of the
IYP2 snapshot's columnar NODES/RELS/SHAPES layout:

Identity
    ``node_ids``/``rel_ids`` (int64, ascending).  When ids are dense a
    row lookup is one subtraction; otherwise a binary search.

Interned strings
    Every label, relationship type, and property key appears once in the
    ``strings`` table; rows reference label-set and key-tuple *shapes*
    (deduplicated tuples of string ids), exactly like the snapshot
    format's SHAPES section.

Adjacency
    A two-level CSR per direction: ``out_node_offsets`` maps a node row
    to its range of (type, rel-range) buckets, each bucket covering the
    relationship rows of one type, sorted.  Per-bucket self-loop counts
    make every degree question O(buckets) without touching edges.

Properties
    Columnar blobs: per-row JSON-encoded value tuples (in key-shape
    order) behind an offset array.  Nothing is materialized until a
    query actually touches an entity; materialized nodes/relationships
    are memoized per store so hot working sets behave like the dict
    backend.

Indexes
    Per-(label, prop) sorted key blobs with CSR postings, searched with
    a binary search over canonically encoded keys.  The encoding folds
    ``True == 1 == 1.0`` to one key, matching Python dict-index
    equality semantics.

The class implements :class:`repro.graphdb.interface.GraphReadStore`;
every mutating method raises
:class:`~repro.graphdb.errors.ReadOnlyStoreError` (the arrays may be
mapped read-only into other processes — see :mod:`repro.columnar.shm`).
"""

from __future__ import annotations

import json
from array import array
from bisect import bisect_left
from contextlib import AbstractContextManager
from typing import Any, Iterable, Iterator, Mapping

from repro.graphdb.errors import (
    ConstraintViolationError,
    DanglingEndpointError,
    NoSuchNodeError,
    NoSuchRelationshipError,
    ReadOnlyStoreError,
)
from repro.graphdb.interface import GraphReadStore
from repro.graphdb.model import Direction, Node, Relationship
from repro.graphdb.rwlock import new_rwlock
from repro.graphdb.store import directional_count
from repro.obs.record import current_collector, record_access

#: Array names and typecodes, in pack order.  ``q`` = int64, ``i`` =
#: int32, ``B`` = raw bytes (JSON blobs).  The tuple is the layout
#: contract between the builder, the store, and the shm packer.
ARRAY_SPECS: tuple[tuple[str, str], ...] = (
    ("node_ids", "q"),
    ("node_label_shape", "i"),
    ("node_key_shape", "i"),
    ("node_prop_offsets", "q"),
    ("node_prop_blob", "B"),
    ("label_offsets", "q"),
    ("label_members", "q"),
    ("rel_ids", "q"),
    ("rel_type", "i"),
    ("rel_start", "q"),
    ("rel_end", "q"),
    ("rel_key_shape", "i"),
    ("rel_prop_offsets", "q"),
    ("rel_prop_blob", "B"),
    ("rtype_offsets", "q"),
    ("rtype_rels", "q"),
    ("out_node_offsets", "q"),
    ("out_bucket_types", "i"),
    ("out_bucket_offsets", "q"),
    ("out_bucket_loops", "q"),
    ("out_adj", "q"),
    ("in_node_offsets", "q"),
    ("in_bucket_types", "i"),
    ("in_bucket_offsets", "q"),
    ("in_adj", "q"),
)


def _indexable(value: Any) -> bool:
    """Mirror of the dict backend's indexable-value predicate."""
    return isinstance(value, (str, int, float, bool))


def encode_index_key(value: Any) -> bytes:
    """Canonical byte encoding of an index key.

    Python dict indexes treat ``True``, ``1`` and ``1.0`` as the same
    key (hash equality); the sorted-blob index must collapse them the
    same way, so bools and integral floats fold to ints before
    encoding.  Strings and non-integral floats keep distinct prefixes
    so ``"1"`` never collides with ``1``.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    return b"s" + str(value).encode("utf-8")


def _dumps(values: list[Any]) -> bytes:
    return json.dumps(values, separators=(",", ":")).encode("utf-8")


class _Interner:
    """Append-only string table handing out stable integer ids."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._ids: dict[str, int] = {}

    def intern(self, value: str) -> int:
        sid = self._ids.get(value)
        if sid is None:
            sid = len(self.strings)
            self._ids[value] = sid
            self.strings.append(value)
        return sid


class _ShapeTable:
    """Deduplicated tuples of string ids (label sets, key tuples)."""

    def __init__(self) -> None:
        self.shapes: list[list[int]] = []
        self._ids: dict[tuple[int, ...], int] = {}

    def intern(self, shape: tuple[int, ...]) -> int:
        sid = self._ids.get(shape)
        if sid is None:
            sid = len(self.shapes)
            self._ids[shape] = sid
            self.shapes.append(list(shape))
        return sid


def build_columnar(
    nodes: Iterable[tuple[int, Iterable[str], dict[str, Any]]],
    relationships: Iterable[tuple[int, str, int, int, dict[str, Any]]],
    indexes: Iterable[tuple[str, str]] = (),
    constraints: Iterable[tuple[str, str]] = (),
    version: int = 0,
) -> tuple[dict[str, Any], dict[str, "array[int]"]]:
    """Build the (meta, arrays) pair from ``from_records``-shaped input.

    Performs the same loader validation as the dict backend: a
    relationship endpoint missing from the node records raises
    :class:`DanglingEndpointError` carrying the input position, and
    pre-existing duplicates under a uniqueness constraint raise
    :class:`ConstraintViolationError`.
    """
    interner = _Interner()
    shapes = _ShapeTable()

    # ---- nodes: collect, validate, sort by id -----------------------
    node_records = list(nodes)
    node_records.sort(key=lambda record: record[0])
    n = len(node_records)
    node_ids = array("q", (record[0] for record in node_records))
    row_of: dict[int, int] = {
        node_id: row for row, node_id in enumerate(node_ids)
    }

    node_label_shape = array("i", bytes(4 * n))
    node_key_shape = array("i", bytes(4 * n))
    node_prop_offsets = array("q", bytes(8 * (n + 1)))
    node_blob = bytearray()
    label_rows: dict[int, list[int]] = {}
    for row, (_, labels, props) in enumerate(node_records):
        label_sids = tuple(sorted(interner.intern(label) for label in labels))
        node_label_shape[row] = shapes.intern(label_sids)
        for sid in label_sids:
            label_rows.setdefault(sid, []).append(row)
        keys = sorted(props)
        node_key_shape[row] = shapes.intern(
            tuple(interner.intern(key) for key in keys)
        )
        if keys:
            node_blob.extend(_dumps([props[key] for key in keys]))
        node_prop_offsets[row + 1] = len(node_blob)

    label_sids_sorted = sorted(label_rows, key=lambda sid: interner.strings[sid])
    label_index_of = {sid: i for i, sid in enumerate(label_sids_sorted)}
    label_offsets = array("q", [0])
    label_members = array("q")
    for sid in label_sids_sorted:
        label_members.extend(label_rows[sid])
        label_offsets.append(len(label_members))

    # ---- property indexes (before rels: only nodes are indexed) -----
    constraint_pairs = {(str(a), str(b)) for a, b in constraints}
    index_pairs = sorted({(str(a), str(b)) for a, b in indexes} | constraint_pairs)
    index_arrays: dict[str, "array[int]"] = {}
    postings_by_slot: list[dict[bytes, list[int]]] = []
    for label, prop in index_pairs:
        postings: dict[bytes, list[int]] = {}
        for row in label_rows.get(interner._ids.get(label, -1), ()):
            value = node_records[row][2].get(prop)
            if _indexable(value):
                postings.setdefault(encode_index_key(value), []).append(row)
        postings_by_slot.append(postings)
    for label, prop in sorted(constraint_pairs):
        postings = postings_by_slot[index_pairs.index((label, prop))]
        for key, rows in postings.items():
            if len(rows) > 1:
                raise ConstraintViolationError(
                    f"existing duplicates for :{label}({prop}) "
                    f"[key {key!r}, {len(rows)} nodes]"
                )
    for slot, postings in enumerate(postings_by_slot):
        key_offsets = array("q", [0])
        key_blob = bytearray()
        post_offsets = array("q", [0])
        post = array("q")
        for key in sorted(postings):
            key_blob.extend(key)
            key_offsets.append(len(key_blob))
            post.extend(postings[key])
            post_offsets.append(len(post))
        index_arrays[f"idx{slot}_key_offsets"] = key_offsets
        index_arrays[f"idx{slot}_key_blob"] = array("B", key_blob)
        index_arrays[f"idx{slot}_post_offsets"] = post_offsets
        index_arrays[f"idx{slot}_post"] = post

    # ---- relationships: validate endpoints at input position --------
    rel_records = []
    for position, record in enumerate(relationships):
        rel_id, rel_type, start_id, end_id, props = record
        if start_id not in row_of:
            raise DanglingEndpointError(position, rel_id, "start", start_id)
        if end_id not in row_of:
            raise DanglingEndpointError(position, rel_id, "end", end_id)
        rel_records.append(record)
    rel_records.sort(key=lambda record: record[0])
    m = len(rel_records)
    rel_ids = array("q", (record[0] for record in rel_records))
    rel_type_arr = array("i", bytes(4 * m))
    rel_start = array("q", bytes(8 * m))
    rel_end = array("q", bytes(8 * m))
    rel_key_shape = array("i", bytes(4 * m))
    rel_prop_offsets = array("q", bytes(8 * (m + 1)))
    rel_blob = bytearray()
    type_rows: dict[int, list[int]] = {}
    for row, (_, rel_type, start_id, end_id, props) in enumerate(rel_records):
        tsid = interner.intern(rel_type)
        type_rows.setdefault(tsid, []).append(row)
        rel_start[row] = row_of[start_id]
        rel_end[row] = row_of[end_id]
        keys = sorted(props)
        rel_key_shape[row] = shapes.intern(
            tuple(interner.intern(key) for key in keys)
        )
        if keys:
            rel_blob.extend(_dumps([props[key] for key in keys]))
        rel_prop_offsets[row + 1] = len(rel_blob)

    type_sids_sorted = sorted(type_rows, key=lambda sid: interner.strings[sid])
    type_index_of = {sid: i for i, sid in enumerate(type_sids_sorted)}
    for row in range(m):
        rel_type_arr[row] = type_index_of[
            interner._ids[rel_records[row][1]]
        ]
    rtype_offsets = array("q", [0])
    rtype_rels = array("q")
    for sid in type_sids_sorted:
        rtype_rels.extend(type_rows[sid])
        rtype_offsets.append(len(rtype_rels))

    # ---- two-level CSR adjacency ------------------------------------
    out_by_node: dict[int, dict[int, list[int]]] = {}
    in_by_node: dict[int, dict[int, list[int]]] = {}
    for row in range(m):
        tidx = rel_type_arr[row]
        out_by_node.setdefault(rel_start[row], {}).setdefault(tidx, []).append(row)
        in_by_node.setdefault(rel_end[row], {}).setdefault(tidx, []).append(row)

    def _csr(
        by_node: dict[int, dict[int, list[int]]], count_loops: bool
    ) -> dict[str, "array[int]"]:
        node_offsets = array("q", [0])
        bucket_types = array("i")
        bucket_offsets = array("q", [0])
        bucket_loops = array("q")
        adj = array("q")
        for row in range(n):
            for tidx in sorted(by_node.get(row, ())):
                rel_rows = by_node[row][tidx]
                bucket_types.append(tidx)
                adj.extend(rel_rows)
                bucket_offsets.append(len(adj))
                if count_loops:
                    bucket_loops.append(
                        sum(
                            1
                            for r in rel_rows
                            if rel_start[r] == rel_end[r]
                        )
                    )
            node_offsets.append(len(bucket_types))
        out: dict[str, "array[int]"] = {
            "node_offsets": node_offsets,
            "bucket_types": bucket_types,
            "bucket_offsets": bucket_offsets,
            "adj": adj,
        }
        if count_loops:
            out["bucket_loops"] = bucket_loops
        return out

    out_csr = _csr(out_by_node, count_loops=True)
    in_csr = _csr(in_by_node, count_loops=False)

    node_base = node_ids[0] if n and node_ids[-1] - node_ids[0] == n - 1 else None
    rel_base = rel_ids[0] if m and rel_ids[-1] - rel_ids[0] == m - 1 else None

    meta: dict[str, Any] = {
        "strings": interner.strings,
        "shapes": shapes.shapes,
        "labels": [interner.strings[sid] for sid in label_sids_sorted],
        "types": [interner.strings[sid] for sid in type_sids_sorted],
        "index_slots": [list(pair) for pair in index_pairs],
        "constraints": sorted([list(pair) for pair in constraint_pairs]),
        "version": version,
        "node_count": n,
        "rel_count": m,
        "node_base": node_base,
        "rel_base": rel_base,
    }
    arrays: dict[str, "array[int]"] = {
        "node_ids": node_ids,
        "node_label_shape": node_label_shape,
        "node_key_shape": node_key_shape,
        "node_prop_offsets": node_prop_offsets,
        "node_prop_blob": array("B", node_blob),
        "label_offsets": label_offsets,
        "label_members": label_members,
        "rel_ids": rel_ids,
        "rel_type": rel_type_arr,
        "rel_start": rel_start,
        "rel_end": rel_end,
        "rel_key_shape": rel_key_shape,
        "rel_prop_offsets": rel_prop_offsets,
        "rel_prop_blob": array("B", rel_blob),
        "rtype_offsets": rtype_offsets,
        "rtype_rels": rtype_rels,
        "out_node_offsets": out_csr["node_offsets"],
        "out_bucket_types": out_csr["bucket_types"],
        "out_bucket_offsets": out_csr["bucket_offsets"],
        "out_bucket_loops": out_csr["bucket_loops"],
        "out_adj": out_csr["adj"],
        "in_node_offsets": in_csr["node_offsets"],
        "in_bucket_types": in_csr["bucket_types"],
        "in_bucket_offsets": in_csr["bucket_offsets"],
        "in_adj": in_csr["adj"],
    }
    arrays.update(index_arrays)
    return meta, arrays


class ColumnarGraphStore:
    """A read-only :class:`GraphReadStore` over columnar arrays.

    ``arrays`` values may be ``array.array`` objects (local build) or
    ``memoryview`` casts over a shared-memory segment (attached) — the
    access paths are identical.  The store keeps a reference to the
    backing ``shm`` object (if any) so the mapping outlives the
    manifest's name: queries in flight keep working even after the
    segment is unlinked by the publisher.
    """

    # Everything is assigned once in __init__ and read-only after; the
    # materialization memos are single-item dict ops (atomic under the
    # GIL) keyed by immutable rows, safe for concurrent readers.
    GUARDED_BY = {
        "_meta": "frozen",
        # Read-only after __init__ except for close(), which replaces
        # released views with empty arrays — single dict-item stores.
        "_arrays": "atomic",
        "_shm": "frozen",
        "_rwlock": "frozen",
        "_strings": "frozen",
        "_shapes": "frozen",
        "_labels": "frozen",
        "_types": "frozen",
        "_label_slot": "frozen",
        "_type_slot": "frozen",
        "_index_slot": "frozen",
        "_constraint_pairs": "frozen",
        "_version": "frozen",
        "_node_base": "frozen",
        "_rel_base": "frozen",
        "_node_cache": "atomic",
        "_rel_cache": "atomic",
        "_label_shape_cache": "atomic",
        "_key_shape_cache": "atomic",
    }

    def __init__(
        self,
        meta: Mapping[str, Any],
        arrays: Mapping[str, Any],
        shm: Any | None = None,
    ) -> None:
        self._meta = dict(meta)
        self._arrays = dict(arrays)
        self._shm = shm
        self._rwlock = new_rwlock("ColumnarGraphStore._rwlock")
        self._strings: list[str] = list(meta["strings"])
        self._shapes: list[list[int]] = [list(s) for s in meta["shapes"]]
        self._labels: list[str] = list(meta["labels"])
        self._types: list[str] = list(meta["types"])
        self._label_slot: dict[str, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        self._type_slot: dict[str, int] = {
            rel_type: i for i, rel_type in enumerate(self._types)
        }
        self._index_slot: dict[tuple[str, str], int] = {
            (str(pair[0]), str(pair[1])): slot
            for slot, pair in enumerate(meta["index_slots"])
        }
        self._constraint_pairs: list[tuple[str, str]] = [
            (str(pair[0]), str(pair[1])) for pair in meta["constraints"]
        ]
        self._version = int(meta["version"])
        self._node_base: int | None = meta["node_base"]
        self._rel_base: int | None = meta["rel_base"]
        self._node_cache: dict[int, Node] = {}
        self._rel_cache: dict[int, Relationship] = {}
        self._label_shape_cache: dict[int, frozenset[str]] = {}
        self._key_shape_cache: dict[int, tuple[str, ...]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(
        cls,
        nodes: Iterable[tuple[int, Iterable[str], dict[str, Any]]],
        relationships: Iterable[tuple[int, str, int, int, dict[str, Any]]],
        indexes: Iterable[tuple[str, str]] = (),
        constraints: Iterable[tuple[str, str]] = (),
    ) -> "ColumnarGraphStore":
        """Build from the same record stream the dict backend consumes."""
        meta, arrays = build_columnar(nodes, relationships, indexes, constraints)
        return cls(meta, arrays)

    @classmethod
    def from_store(cls, store: GraphReadStore) -> "ColumnarGraphStore":
        """Convert any :class:`GraphReadStore` (typically the dict
        backend) into its columnar form."""
        meta, arrays = build_columnar(
            (
                (node.id, node.labels, node.properties)
                for node in store.iter_nodes()
            ),
            (
                (rel.id, rel.type, rel.start_id, rel.end_id, rel.properties)
                for rel in store.iter_relationships()
            ),
            indexes=store.indexes(),
            constraints=store.constraints(),
            version=store.version,
        )
        return cls(meta, arrays)

    def close(self) -> None:
        """Release array views and detach from shared memory (if any).

        After ``close()`` the store must not be used.  Required before a
        ``SharedMemory.close()`` can succeed — exported memoryviews pin
        the mapping.
        """
        self._node_cache.clear()
        self._rel_cache.clear()
        for name, buf in list(self._arrays.items()):
            if isinstance(buf, memoryview):
                buf.release()
            self._arrays[name] = array("q")
        if self._shm is not None:
            self._shm.close()

    # -- identity ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return "columnar"

    @property
    def version(self) -> int:
        """Fixed at build time: the backend is immutable."""
        return self._version

    # -- concurrency ---------------------------------------------------

    def read_lock(self) -> AbstractContextManager[None]:
        """Shared lock: the store never mutates, but hot-swap still
        acquires the write side to drain in-flight readers."""
        return self._rwlock.read()

    def write_lock(self) -> AbstractContextManager[None]:
        return self._rwlock.write()

    # -- row lookups ---------------------------------------------------

    def _node_row(self, node_id: int) -> int:
        ids = self._arrays["node_ids"]
        n = len(ids)
        if self._node_base is not None:
            row = node_id - self._node_base
            if 0 <= row < n:
                return row
            raise NoSuchNodeError(f"no node with id {node_id}")
        row = bisect_left(ids, node_id)
        if row < n and ids[row] == node_id:
            return row
        raise NoSuchNodeError(f"no node with id {node_id}")

    def _rel_row(self, rel_id: int) -> int:
        ids = self._arrays["rel_ids"]
        m = len(ids)
        if self._rel_base is not None:
            row = rel_id - self._rel_base
            if 0 <= row < m:
                return row
            raise NoSuchRelationshipError(f"no relationship with id {rel_id}")
        row = bisect_left(ids, rel_id)
        if row < m and ids[row] == rel_id:
            return row
        raise NoSuchRelationshipError(f"no relationship with id {rel_id}")

    # -- materialization ----------------------------------------------

    def _shape_labels(self, shape_id: int) -> frozenset[str]:
        labels = self._label_shape_cache.get(shape_id)
        if labels is None:
            labels = frozenset(
                self._strings[sid] for sid in self._shapes[shape_id]
            )
            self._label_shape_cache[shape_id] = labels
        return labels

    def _shape_keys(self, shape_id: int) -> tuple[str, ...]:
        keys = self._key_shape_cache.get(shape_id)
        if keys is None:
            keys = tuple(self._strings[sid] for sid in self._shapes[shape_id])
            self._key_shape_cache[shape_id] = keys
        return keys

    def _decode_props(
        self, keys: tuple[str, ...], blob_name: str, offsets_name: str, row: int
    ) -> dict[str, Any]:
        if not keys:
            return {}
        offsets = self._arrays[offsets_name]
        start, end = offsets[row], offsets[row + 1]
        blob = self._arrays[blob_name]
        values = json.loads(bytes(blob[start:end]).decode("utf-8"))
        return dict(zip(keys, values, strict=True))

    def _node_at(self, row: int) -> Node:
        node = self._node_cache.get(row)
        if node is None:
            arrays = self._arrays
            node = Node(
                arrays["node_ids"][row],
                self._shape_labels(arrays["node_label_shape"][row]),
                self._decode_props(
                    self._shape_keys(arrays["node_key_shape"][row]),
                    "node_prop_blob",
                    "node_prop_offsets",
                    row,
                ),
            )
            self._node_cache[row] = node
        return node

    def _rel_at(self, row: int) -> Relationship:
        rel = self._rel_cache.get(row)
        if rel is None:
            arrays = self._arrays
            node_ids = arrays["node_ids"]
            rel = Relationship(
                arrays["rel_ids"][row],
                self._types[arrays["rel_type"][row]],
                node_ids[arrays["rel_start"][row]],
                node_ids[arrays["rel_end"][row]],
                self._decode_props(
                    self._shape_keys(arrays["rel_key_shape"][row]),
                    "rel_prop_blob",
                    "rel_prop_offsets",
                    row,
                ),
            )
            self._rel_cache[row] = rel
        return rel

    # -- statistics ----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._arrays["node_ids"])

    @property
    def relationship_count(self) -> int:
        return len(self._arrays["rel_ids"])

    def label_counts(self) -> dict[str, int]:
        offsets = self._arrays["label_offsets"]
        return {
            label: offsets[i + 1] - offsets[i]
            for i, label in enumerate(self._labels)
        }

    def label_count(self, label: str) -> int:
        slot = self._label_slot.get(label)
        if slot is None:
            return 0
        offsets = self._arrays["label_offsets"]
        return int(offsets[slot + 1] - offsets[slot])

    def relationship_type_counts(self) -> dict[str, int]:
        offsets = self._arrays["rtype_offsets"]
        return {
            rel_type: offsets[i + 1] - offsets[i]
            for i, rel_type in enumerate(self._types)
        }

    def _bucket_range(self, side: str, row: int) -> tuple[int, int]:
        offsets = self._arrays[f"{side}_node_offsets"]
        return offsets[row], offsets[row + 1]

    def _direction_totals(self, row: int, rel_type: str | None) -> tuple[int, int, int]:
        """(out, in, loops) for one node row, optionally one type."""
        arrays = self._arrays
        tidx = -1
        if rel_type is not None:
            slot = self._type_slot.get(rel_type)
            if slot is None:
                return 0, 0, 0
            tidx = slot
        out = inbound = loops = 0
        lo, hi = self._bucket_range("out", row)
        types = arrays["out_bucket_types"]
        offsets = arrays["out_bucket_offsets"]
        loop_counts = arrays["out_bucket_loops"]
        for bucket in range(lo, hi):
            if rel_type is not None and types[bucket] != tidx:
                continue
            out += offsets[bucket + 1] - offsets[bucket]
            loops += loop_counts[bucket]
        lo, hi = self._bucket_range("in", row)
        types = arrays["in_bucket_types"]
        offsets = arrays["in_bucket_offsets"]
        for bucket in range(lo, hi):
            if rel_type is not None and types[bucket] != tidx:
                continue
            inbound += offsets[bucket + 1] - offsets[bucket]
        return out, inbound, loops

    def degree(self, node_id: int, direction: Direction = Direction.BOTH) -> int:
        row = self._node_row(node_id)
        out, inbound, loops = self._direction_totals(row, None)
        return directional_count(out, inbound, loops, direction)

    def degree_by_type(
        self, node_id: int, rel_type: str, direction: Direction = Direction.BOTH
    ) -> int:
        row = self._node_row(node_id)
        out, inbound, loops = self._direction_totals(row, rel_type)
        return directional_count(out, inbound, loops, direction)

    # -- index metadata ------------------------------------------------

    def has_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._index_slot

    def indexes(self) -> list[tuple[str, str]]:
        return sorted(self._index_slot)

    def constraints(self) -> list[tuple[str, str]]:
        return sorted(self._constraint_pairs)

    # -- node access ---------------------------------------------------

    def get_node(self, node_id: int) -> Node:
        return self._node_at(self._node_row(node_id))

    def has_node(self, node_id: int) -> bool:
        try:
            self._node_row(node_id)
        except NoSuchNodeError:
            return False
        return True

    def _label_rows(self, label: str) -> Any:
        slot = self._label_slot.get(label)
        if slot is None:
            return ()
        offsets = self._arrays["label_offsets"]
        return self._arrays["label_members"][offsets[slot] : offsets[slot + 1]]

    def nodes_with_label(self, label: str) -> list[Node]:
        """All nodes carrying ``label``, sorted by id (CSR members are
        stored in ascending row = ascending id order)."""
        collector = current_collector()
        if collector is not None:
            collector.record("label_scan")
        nodes = [self._node_at(row) for row in self._label_rows(label)]
        if nodes and collector is not None:
            collector.record("nodes_scanned", len(nodes))
        return nodes

    def iter_nodes(self) -> Iterator[Node]:
        record_access("full_scan")
        return (self._node_at(row) for row in range(self.node_count))

    def _index_seek_rows(self, slot: int, value: Any) -> Any:
        key = encode_index_key(value)
        key_offsets = self._arrays[f"idx{slot}_key_offsets"]
        key_blob = self._arrays[f"idx{slot}_key_blob"]
        lo, hi = 0, len(key_offsets) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            probe = bytes(key_blob[key_offsets[mid] : key_offsets[mid + 1]])
            if probe < key:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(key_offsets) - 1:
            return ()
        if bytes(key_blob[key_offsets[lo] : key_offsets[lo + 1]]) != key:
            return ()
        post_offsets = self._arrays[f"idx{slot}_post_offsets"]
        return self._arrays[f"idx{slot}_post"][
            post_offsets[lo] : post_offsets[lo + 1]
        ]

    def find_nodes(self, label: str, prop: str, value: Any) -> list[Node]:
        """Index-backed (binary search over the sorted key blob) when an
        index exists, otherwise a filtering label scan."""
        collector = current_collector()
        slot = self._index_slot.get((label, prop))
        if slot is not None and _indexable(value):
            if collector is not None:
                collector.record("index_seek")
            nodes = [self._node_at(row) for row in self._index_seek_rows(slot, value)]
        else:
            if collector is not None:
                collector.record("label_scan")
            nodes = [
                node
                for node in (self._node_at(row) for row in self._label_rows(label))
                if node.properties.get(prop) == value
            ]
        if nodes and collector is not None:
            collector.record("nodes_scanned", len(nodes))
        return nodes

    # -- relationship access -------------------------------------------

    def get_relationship(self, rel_id: int) -> Relationship:
        return self._rel_at(self._rel_row(rel_id))

    def iter_relationships(self) -> Iterator[Relationship]:
        return (self._rel_at(row) for row in range(self.relationship_count))

    def _adj_rel_rows(
        self, side: str, row: int, rel_type: str | None
    ) -> Iterator[int]:
        arrays = self._arrays
        lo, hi = self._bucket_range(side, row)
        types = arrays[f"{side}_bucket_types"]
        offsets = arrays[f"{side}_bucket_offsets"]
        adj = arrays[f"{side}_adj"]
        tidx = -1
        if rel_type is not None:
            slot = self._type_slot.get(rel_type)
            if slot is None:
                return
            tidx = slot
        for bucket in range(lo, hi):
            if rel_type is not None and types[bucket] != tidx:
                continue
            for i in range(offsets[bucket], offsets[bucket + 1]):
                yield adj[i]

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_type: str | None = None,
    ) -> list[Relationship]:
        """Typed-CSR expansion; ``BOTH`` deduplicates self-loops exactly
        like the dict backend (the loop appears in the outgoing list)."""
        collector = current_collector()
        if collector is not None:
            collector.record("expand")
        row = self._node_row(node_id)
        result: list[Relationship] = []
        if direction in (Direction.OUT, Direction.BOTH):
            result.extend(
                self._rel_at(r) for r in self._adj_rel_rows("out", row, rel_type)
            )
        if direction in (Direction.IN, Direction.BOTH):
            dedupe = direction is Direction.BOTH
            rel_start = self._arrays["rel_start"]
            rel_end = self._arrays["rel_end"]
            for r in self._adj_rel_rows("in", row, rel_type):
                if dedupe and rel_start[r] == rel_end[r]:
                    continue  # self-loop already in the outgoing list
                result.append(self._rel_at(r))
        if result and collector is not None:
            collector.record("rels_expanded", len(result))
        return result

    def relationships_with_type(self, rel_type: str) -> list[Relationship]:
        slot = self._type_slot.get(rel_type)
        if slot is None:
            return []
        offsets = self._arrays["rtype_offsets"]
        rows = self._arrays["rtype_rels"][offsets[slot] : offsets[slot + 1]]
        return [self._rel_at(row) for row in rows]

    def relationships_between(
        self, start_id: int, end_id: int, rel_type: str | None = None
    ) -> list[Relationship]:
        start_row = self._node_row(start_id)
        end_row = self._node_row(end_id)
        rel_end = self._arrays["rel_end"]
        return [
            self._rel_at(r)
            for r in self._adj_rel_rows("out", start_row, rel_type)
            if rel_end[r] == end_row
        ]

    # -- bulk accessors (analytics / statistics) -----------------------

    def node_ids(self) -> Iterable[int]:
        return self._arrays["node_ids"]

    def label_ids(self, label: str) -> Iterable[int]:
        node_ids = self._arrays["node_ids"]
        return [node_ids[row] for row in self._label_rows(label)]

    def node_labels(self, node_id: int) -> frozenset[str]:
        row = self._node_row(node_id)
        return self._shape_labels(self._arrays["node_label_shape"][row])

    def node_property(self, node_id: int, key: str) -> Any:
        return self._node_at(self._node_row(node_id)).properties.get(key)

    def iter_edges(
        self, rel_type: str | None = None
    ) -> Iterator[tuple[str, int, int]]:
        arrays = self._arrays
        node_ids = arrays["node_ids"]
        rel_start = arrays["rel_start"]
        rel_end = arrays["rel_end"]
        if rel_type is None:
            types = arrays["rel_type"]
            names = self._types
            for row in range(self.relationship_count):
                yield (
                    names[types[row]],
                    node_ids[rel_start[row]],
                    node_ids[rel_end[row]],
                )
            return
        slot = self._type_slot.get(rel_type)
        if slot is None:
            return
        offsets = arrays["rtype_offsets"]
        rows = arrays["rtype_rels"]
        for i in range(offsets[slot], offsets[slot + 1]):
            row = rows[i]
            yield (rel_type, node_ids[rel_start[row]], node_ids[rel_end[row]])

    def typed_degrees(self, node_id: int) -> dict[str, tuple[int, int, int]]:
        row = self._node_row(node_id)
        arrays = self._arrays
        totals: dict[int, list[int]] = {}
        lo, hi = self._bucket_range("out", row)
        types = arrays["out_bucket_types"]
        offsets = arrays["out_bucket_offsets"]
        loop_counts = arrays["out_bucket_loops"]
        for bucket in range(lo, hi):
            entry = totals.setdefault(types[bucket], [0, 0, 0])
            entry[0] += offsets[bucket + 1] - offsets[bucket]
            entry[2] += loop_counts[bucket]
        lo, hi = self._bucket_range("in", row)
        types = arrays["in_bucket_types"]
        offsets = arrays["in_bucket_offsets"]
        for bucket in range(lo, hi):
            entry = totals.setdefault(types[bucket], [0, 0, 0])
            entry[1] += offsets[bucket + 1] - offsets[bucket]
        return {
            self._types[tidx]: (entry[0], entry[1], entry[2])
            for tidx, entry in totals.items()
        }

    def neighbor_ids(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> Iterator[int]:
        """One neighbor id per incident relationship (loops under BOTH
        are yielded twice, matching the dict backend's BFS primitive)."""
        row = self._node_row(node_id)
        node_ids = self._arrays["node_ids"]
        if direction in (Direction.OUT, Direction.BOTH):
            rel_end = self._arrays["rel_end"]
            for r in self._adj_rel_rows("out", row, rel_type):
                yield node_ids[rel_end[r]]
        if direction in (Direction.IN, Direction.BOTH):
            rel_start = self._arrays["rel_start"]
            for r in self._adj_rel_rows("in", row, rel_type):
                yield node_ids[rel_start[r]]

    def memory_info(self) -> dict[str, int]:
        """Exact array footprint by component (the dict backend reports
        a ``sys.getsizeof`` estimate over the same keys)."""
        sizes: dict[str, int] = {}
        for name, buf in self._arrays.items():
            if isinstance(buf, memoryview):
                sizes[name] = buf.nbytes
            else:
                sizes[name] = len(buf) * buf.itemsize
        nodes_bytes = sum(v for k, v in sizes.items() if k.startswith("node_"))
        rels_bytes = sum(v for k, v in sizes.items() if k.startswith("rel_"))
        adjacency_bytes = sum(
            v
            for k, v in sizes.items()
            if k.startswith(("out_", "in_", "rtype_"))
        )
        indexes_bytes = sum(
            v
            for k, v in sizes.items()
            if k.startswith(("idx", "label_"))
        )
        total = sum(sizes.values())
        return {
            "nodes_bytes": nodes_bytes,
            "relationships_bytes": rels_bytes,
            "adjacency_bytes": adjacency_bytes,
            "indexes_bytes": indexes_bytes,
            "total_bytes": total,
        }

    # -- write surface (rejected) --------------------------------------

    def _read_only(self, operation: str) -> ReadOnlyStoreError:
        return ReadOnlyStoreError(
            f"{operation}: the columnar backend is read-only "
            "(its arrays may be shared between processes); "
            "rebuild via from_records/from_store and hot-swap instead"
        )

    def create_index(self, label: str, prop: str) -> None:
        raise self._read_only("create_index")

    def create_unique_constraint(self, label: str, prop: str) -> None:
        raise self._read_only("create_unique_constraint")

    def create_node(
        self,
        labels: Iterable[str],
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        raise self._read_only("create_node")

    def merge_node(
        self,
        label: str,
        key_prop: str,
        key_value: Any,
        properties: Mapping[str, Any] | None = None,
        extra_labels: Iterable[str] = (),
    ) -> Node:
        raise self._read_only("merge_node")

    def add_label(self, node_id: int, label: str) -> None:
        raise self._read_only("add_label")

    def update_node(self, node_id: int, properties: Mapping[str, Any]) -> None:
        raise self._read_only("update_node")

    def delete_node(self, node_id: int, detach: bool = False) -> None:
        raise self._read_only("delete_node")

    def create_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
    ) -> Relationship:
        raise self._read_only("create_relationship")

    def merge_relationship(
        self,
        start_id: int,
        rel_type: str,
        end_id: int,
        properties: Mapping[str, Any] | None = None,
        match_props: Mapping[str, Any] | None = None,
    ) -> Relationship:
        raise self._read_only("merge_relationship")

    def update_relationship(
        self, rel_id: int, properties: Mapping[str, Any]
    ) -> None:
        raise self._read_only("update_relationship")

    def delete_relationship(self, rel_id: int) -> None:
        raise self._read_only("delete_relationship")
