"""Shared-memory packing for the columnar arrays.

One graph snapshot becomes ONE ``multiprocessing.shared_memory``
segment: every array from :func:`repro.columnar.store.build_columnar`
is copied in at an 8-byte-aligned offset, and a small picklable
:class:`SegmentManifest` (segment name + table of contents + the JSON
metadata) describes how to reconstruct the store.  Any process can then
:func:`attach_manifest` and get a working
:class:`~repro.columnar.store.ColumnarGraphStore` whose buffers are
zero-copy ``memoryview`` casts over the mapping.

Lifecycle (the swap/unlink protocol the worker pool relies on):

1. The publisher packs a segment (``pack_store``) and registers it with
   the process-local :class:`SegmentRegistry`.
2. Readers attach by name.  Attaching deliberately *unregisters* the
   mapping from Python's ``resource_tracker`` — only the publisher owns
   unlinking, and 3.11 has no ``track=False`` yet.
3. On swap, the publisher broadcasts the new manifest, waits for every
   reader to acknowledge it switched, then ``unlink()``\\ s the old
   segment.  POSIX keeps the backing pages alive until the last mapping
   closes, so readers that still hold historical stores over the old
   arrays keep working — the name just disappears.
4. An ``atexit`` hook unlinks anything the process still owns so a
   crashed publisher cannot leak ``/dev/shm`` segments.

The registry is module-level shared state mutated from server and
watcher threads, so all of it sits behind a lock (RACE005).
"""

from __future__ import annotations

import atexit
import os
import secrets
from array import array
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping

from repro.concurrency import new_lock
from repro.columnar.store import ColumnarGraphStore

#: Alignment for every array inside the segment; int64 is the widest
#: element, and 8-byte alignment keeps ``memoryview.cast`` legal.
ALIGNMENT = 8


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a process needs to attach a packed graph.

    Picklable by construction (plain strings/ints/lists) so it can
    travel over a ``multiprocessing`` pipe to pool workers.
    """

    #: ``shared_memory`` segment name (``/dev/shm/<name>`` on Linux).
    name: str
    #: Total segment size in bytes.
    size: int
    #: Columnar metadata (string table, shapes, index slots, ...).
    meta: dict[str, Any]
    #: ``(array_name, typecode, offset, nbytes)`` per array.
    toc: tuple[tuple[str, str, int, int], ...] = field(default_factory=tuple)

    @property
    def nodes(self) -> int:
        return int(self.meta["node_count"])

    @property
    def relationships(self) -> int:
        return int(self.meta["rel_count"])


class SegmentRegistry:
    """Tracks the shared-memory segments this process created.

    Publishers register on ``pack``, unlink on swap/shutdown, and the
    ``atexit`` sweep releases anything left over.  All state is behind
    ``_lock``: the serving path touches this from the main thread, the
    archive watcher thread, and test harnesses concurrently.
    """

    GUARDED_BY = {
        "_lock": "frozen",
        "_segments": "_lock",
    }

    def __init__(self) -> None:
        self._lock = new_lock("SegmentRegistry._lock")
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def register(self, shm: shared_memory.SharedMemory) -> None:
        with self._lock:
            self._segments[shm.name] = shm

    def owns(self, name: str) -> bool:
        with self._lock:
            return name in self._segments

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def unlink(self, name: str) -> bool:
        """Close and unlink a segment this process created.

        Returns False when the name is unknown (already unlinked, or
        created by another process).
        """
        with self._lock:
            shm = self._segments.pop(name, None)
        if shm is None:
            return False
        try:
            shm.close()
        except BufferError:
            # A live store still holds views over the mapping; the
            # caller keeps the mapping and we only drop the name.
            pass
        shm.unlink()
        return True

    def cleanup(self) -> None:
        """Unlink every remaining owned segment (atexit safety net)."""
        for name in self.names():
            try:
                self.unlink(name)
            except FileNotFoundError:
                pass


_REGISTRY = SegmentRegistry()
atexit.register(_REGISTRY.cleanup)


def segment_registry() -> SegmentRegistry:
    """The process-wide registry of owned segments."""
    return _REGISTRY


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def pack_arrays(
    meta: Mapping[str, Any],
    arrays: Mapping[str, "array[int]"],
    name_prefix: str = "repro-col",
) -> SegmentManifest:
    """Copy columnar arrays into one new shared-memory segment.

    The segment is registered with :func:`segment_registry`; the caller
    (the publisher) is responsible for eventually unlinking it.
    """
    toc: list[tuple[str, str, int, int]] = []
    offset = 0
    for name, arr in arrays.items():
        nbytes = len(arr) * arr.itemsize
        offset = _aligned(offset)
        toc.append((name, arr.typecode, offset, nbytes))
        offset += nbytes
    size = max(offset, ALIGNMENT)
    name = f"{name_prefix}-{os.getpid()}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    for (_, _, off, nbytes), arr in zip(toc, arrays.values(), strict=True):
        if nbytes:
            shm.buf[off : off + nbytes] = memoryview(arr).cast("B")
    _REGISTRY.register(shm)
    return SegmentManifest(
        name=shm.name, size=size, meta=dict(meta), toc=tuple(toc)
    )


def pack_store(
    store: Any, name_prefix: str = "repro-col"
) -> SegmentManifest:
    """Pack any GraphReadStore into a fresh shared segment.

    A :class:`ColumnarGraphStore` built locally (arrays in process
    memory) is re-packed as-is; any other backend is converted through
    ``from_records`` semantics first.
    """
    if isinstance(store, ColumnarGraphStore):
        return pack_arrays(store._meta, store._arrays, name_prefix)
    from repro.columnar.store import build_columnar

    meta, arrays = build_columnar(
        (
            (node.id, node.labels, node.properties)
            for node in store.iter_nodes()
        ),
        (
            (rel.id, rel.type, rel.start_id, rel.end_id, rel.properties)
            for rel in store.iter_relationships()
        ),
        indexes=store.indexes(),
        constraints=store.constraints(),
        version=store.version,
    )
    return pack_arrays(meta, arrays, name_prefix)


_ATTACH_LOCK = new_lock("columnar.shm._ATTACH_LOCK")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    3.11 has no ``SharedMemory(track=False)``: attaching registers the
    name with the (fork-inherited, process-tree-wide) resource tracker,
    and a later ``unregister`` from a worker would erase the creator's
    own registration — so the tracker must simply never hear about
    attach-side mappings.  Only the publisher owns unlinking.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_manifest(manifest: SegmentManifest) -> ColumnarGraphStore:
    """Attach to a packed segment and reconstruct the store (zero-copy).

    Attaching never registers with the ``resource_tracker`` — the
    publisher owns the segment's lifetime; see :func:`_attach_untracked`.
    """
    shm = _attach_untracked(manifest.name)
    buffers: dict[str, Any] = {}
    for name, typecode, offset, nbytes in manifest.toc:
        buffers[name] = shm.buf[offset : offset + nbytes].cast(typecode)
    return ColumnarGraphStore(manifest.meta, buffers, shm=shm)
