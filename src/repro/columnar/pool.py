"""Pre-forked multi-process query serving over one shared segment.

The GIL caps the threaded server at roughly one core of Cypher
execution no matter how many clients connect.  :class:`WorkerPool`
escapes that by forking N query *processes* that all:

- attach the same packed graph segment read-only (zero copy — the
  kernel shares the physical pages), and
- ``accept()`` from the same listening socket (created by the parent
  before forking, inherited across ``fork``), so the kernel load-
  balances connections without a proxy in front.

Each worker runs an ordinary :class:`repro.server.app.QueryService`
with its own generation-keyed result cache, admission control, and
observability — the whole serving stack is reused unchanged; only the
store underneath is shared.

Hot swap is parent-driven: ``swap(manifest)`` broadcasts the new
segment over per-worker control pipes; every worker attaches it and
calls ``QueryService.swap_store`` (which drains in-flight queries under
the old store's write lock), then acknowledges.  Once every worker has
acknowledged, the parent unlinks the old segment — POSIX keeps the
pages alive for any worker still holding the old mapping in its
historical-store LRU, so time-travel queries are unaffected; only the
name disappears.
"""

from __future__ import annotations

import logging
import multiprocessing
import socket
import socketserver
import threading
from typing import Any

from repro.columnar.shm import SegmentManifest, attach_manifest, segment_registry
from repro.concurrency import new_lock

log = logging.getLogger("repro.columnar.pool")

#: Control-channel message tags (parent -> worker, worker -> parent).
_MSG_READY = "ready"
_MSG_SWAP = "swap"
_MSG_SWAPPED = "swapped"
_MSG_STOP = "stop"


class _InheritedSocketServer:
    """Builds an ``IYPHTTPServer`` around an already-bound socket.

    The stdlib server wants to bind its own socket; pool workers must
    instead adopt the listener the parent created before forking.  The
    listener is non-blocking so that when several workers wake for the
    same connection the losers get ``BlockingIOError`` (swallowed by
    ``BaseServer._handle_request_noblock``) instead of blocking inside
    ``accept`` and going deaf to ``shutdown()``.
    """

    @staticmethod
    def build(sock: socket.socket, service: Any) -> Any:
        from repro.server.http import IYPRequestHandler, IYPHTTPServer

        class Server(IYPHTTPServer):
            def __init__(self) -> None:
                socketserver.BaseServer.__init__(
                    self, sock.getsockname(), IYPRequestHandler
                )
                self.socket = sock
                host, port = sock.getsockname()[:2]
                self.server_name = str(host)
                self.server_port = int(port)
                self.service = service

            def get_request(self) -> tuple[socket.socket, Any]:
                conn, addr = self.socket.accept()
                # The non-blocking flag state of an accepted socket is
                # platform-dependent; queries must read bodies blocking.
                conn.setblocking(True)
                return conn, addr

            def server_close(self) -> None:
                # Close only this process's dup of the listener; skip
                # IYPHTTPServer's slowlog dump (the pool logs per
                # worker at stop instead).
                socketserver.TCPServer.server_close(self)

        return Server()


def _worker_main(
    listener: socket.socket,
    manifest: SegmentManifest,
    control: Any,
    service_config: dict[str, Any],
) -> None:
    """Entry point of one forked query worker."""
    import signal

    from repro.server.app import QueryService

    # A terminal Ctrl-C signals the whole foreground process group;
    # workers must ignore it and wait for the parent's stop message so
    # shutdown is coordinated (and traceback-free).
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    store = attach_manifest(manifest)
    service = QueryService(store, **service_config)
    server = _InheritedSocketServer.build(listener, service)

    def control_loop() -> None:
        while True:
            try:
                message = control.recv()
            except (EOFError, OSError):
                server.shutdown()
                return
            if message[0] == _MSG_SWAP:
                new_store = attach_manifest(message[1])
                summary = service.swap_store(new_store, label=message[2])
                control.send((_MSG_SWAPPED, summary["generation"]))
            elif message[0] == _MSG_STOP:
                server.shutdown()
                return

    controller = threading.Thread(target=control_loop, daemon=True)
    controller.start()
    control.send((_MSG_READY, multiprocessing.current_process().pid))
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()


class WorkerPool:
    """N forked query servers sharing one socket and one graph segment.

    Parent-side façade: ``start()`` forks the workers and waits for
    their ready handshakes, ``swap()`` publishes a new segment and
    unlinks the old one after every worker drains onto it, ``stop()``
    shuts the pool down and unlinks the current segment.
    """

    GUARDED_BY = {
        "_lock": "frozen",
        "_listener": "frozen",
        "_context": "frozen",
        "_service_config": "frozen",
        "_workers": "_lock",
        "_pipes": "_lock",
        "_manifest": "_lock",
        "_started": "_lock",
    }

    def __init__(
        self,
        manifest: SegmentManifest,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        service_config: dict[str, Any] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._lock = new_lock("WorkerPool._lock")
        self._context = multiprocessing.get_context("fork")
        self._service_config = dict(service_config or {})
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        with self._lock:
            self._manifest = manifest
            self._workers: list[Any] = []
            self._pipes: list[Any] = []
            self._started = False
        self.worker_count = workers

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port 0 resolves at bind time."""
        addr = self._listener.getsockname()
        return str(addr[0]), int(addr[1])

    @property
    def manifest(self) -> SegmentManifest:
        with self._lock:
            return self._manifest

    def start(self, ready_timeout: float = 30.0) -> None:
        """Fork the workers and wait for every ready handshake."""
        with self._lock:
            if self._started:
                raise RuntimeError("pool already started")
            self._started = True
            manifest = self._manifest
        # Fork outside the lock: child processes must never be spawned
        # while holding it (the fork would copy a locked lock).
        spawned: list[Any] = []
        pipes: list[Any] = []
        for index in range(self.worker_count):
            parent_end, child_end = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    self._listener,
                    manifest,
                    child_end,
                    self._service_config,
                ),
                name=f"iyp-query-worker-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
            spawned.append(process)
            pipes.append(parent_end)
        with self._lock:
            self._workers.extend(spawned)
            self._pipes.extend(pipes)
        for pipe in pipes:
            if not pipe.poll(ready_timeout):
                self.stop()
                raise TimeoutError("worker did not become ready")
            message = pipe.recv()
            if message[0] != _MSG_READY:
                self.stop()
                raise RuntimeError(f"unexpected handshake {message!r}")
        log.info(
            "worker pool serving on %s:%d with %d processes",
            *self.address,
            self.worker_count,
        )

    def swap(
        self, manifest: SegmentManifest, label: str | None = None,
        ack_timeout: float = 60.0,
    ) -> dict[str, Any]:
        """Publish a new segment; unlink the old one once all workers
        acknowledge they swapped onto it."""
        with self._lock:
            if not self._started:
                raise RuntimeError("pool not started")
            old = self._manifest
            self._manifest = manifest
            pipes = list(self._pipes)
        generations = []
        for pipe in pipes:
            pipe.send((_MSG_SWAP, manifest, label))
        for pipe in pipes:
            if not pipe.poll(ack_timeout):
                raise TimeoutError("worker did not acknowledge swap")
            message = pipe.recv()
            if message[0] != _MSG_SWAPPED:
                raise RuntimeError(f"unexpected swap reply {message!r}")
            generations.append(message[1])
        unlinked = segment_registry().unlink(old.name)
        log.info(
            "swapped all %d workers to %s (generation %s); old segment "
            "%s %s",
            len(pipes),
            manifest.name,
            generations and generations[0],
            old.name,
            "unlinked" if unlinked else "left (not owned)",
        )
        return {
            "workers": len(pipes),
            "generations": generations,
            "unlinked_segment": old.name if unlinked else None,
        }

    def stop(self, join_timeout: float = 10.0) -> None:
        """Stop every worker, close the listener, unlink the segment."""
        with self._lock:
            workers = list(self._workers)
            pipes = list(self._pipes)
            self._workers.clear()
            self._pipes.clear()
            manifest = self._manifest
        for pipe in pipes:
            try:
                pipe.send((_MSG_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for process in workers:
            process.join(join_timeout)
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        for pipe in pipes:
            pipe.close()
        self._listener.close()
        segment_registry().unlink(manifest.name)
