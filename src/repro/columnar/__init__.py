"""Columnar GraphStore backend with shared-memory multi-process serving.

This package promotes the IYP2 snapshot's columnar NODES/RELS/SHAPES
layout (:mod:`repro.archive.format`) from a dump format to a live
storage engine:

- :mod:`repro.columnar.store` — :class:`ColumnarGraphStore`, a read-only
  :class:`repro.graphdb.interface.GraphReadStore` backend holding the
  graph as int-id arrays: an interned string table, per-(node, type,
  direction) CSR adjacency, and columnar property storage.  Built from
  the same ``from_records`` stream the dict backend consumes, without
  materializing per-entity dict objects.
- :mod:`repro.columnar.shm` — packs those arrays into one
  ``multiprocessing.shared_memory`` segment described by a small
  picklable :class:`SegmentManifest`; any process can attach read-only
  and reconstruct the store without copying the graph.
- :mod:`repro.columnar.pool` — :class:`WorkerPool`, a pre-forked set of
  query server processes sharing one listening socket and one segment,
  with parent-driven hot swap (publish new segment, drain, unlink old).

The Cypher engine, matcher, planner statistics, analytics procedures,
and archive loader all run unchanged against this backend because they
only touch the :class:`~repro.graphdb.interface.GraphReadStore`
contract.
"""

from repro.columnar.shm import SegmentManifest, attach_manifest, pack_store
from repro.columnar.store import ColumnarGraphStore

__all__ = [
    "ColumnarGraphStore",
    "SegmentManifest",
    "attach_manifest",
    "pack_store",
]
