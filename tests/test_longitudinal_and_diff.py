"""Longitudinal series and snapshot diffing."""

import pytest

from repro.core import IYP, Reference
from repro.core.diff import node_identity, snapshot_diff
from repro.studies.longitudinal import SnapshotSeries


def _mini_iyp(with_extra: bool = False) -> IYP:
    iyp = IYP()
    ref = Reference("T", "test.bgp")
    a = iyp.get_node("AS", asn=1)
    p = iyp.get_node("Prefix", prefix="10.0.0.0/8")
    iyp.add_link(a, "ORIGINATE", p, reference=ref)
    if with_extra:
        b = iyp.get_node("AS", asn=2)
        iyp.add_link(b, "ORIGINATE", p, reference=ref)
    return iyp


class TestSnapshotDiff:
    def test_identical_snapshots_unchanged(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp().store)
        assert diff.unchanged

    def test_added_node_and_link(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp(with_extra=True).store)
        assert diff.nodes_added == [("AS", 2)]
        assert not diff.nodes_removed
        assert len(diff.relationships_added) == 1
        start, rel_type, end, dataset = diff.relationships_added[0]
        assert start == ("AS", 2) and rel_type == "ORIGINATE"
        assert end == ("Prefix", "10.0.0.0/8") and dataset == "test.bgp"

    def test_removed_is_symmetric(self):
        diff = snapshot_diff(_mini_iyp(with_extra=True).store, _mini_iyp().store)
        assert diff.nodes_removed == [("AS", 2)]
        assert len(diff.relationships_removed) == 1

    def test_identity_ignores_internal_ids(self):
        # Build the same content in a different insertion order.
        iyp = IYP()
        ref = Reference("T", "test.bgp")
        p = iyp.get_node("Prefix", prefix="10.0.0.0/8")
        a = iyp.get_node("AS", asn=1)
        iyp.add_link(a, "ORIGINATE", p, reference=ref)
        diff = snapshot_diff(_mini_iyp().store, iyp.store)
        assert diff.unchanged

    def test_same_link_different_dataset_counts_as_change(self):
        left = _mini_iyp()
        right = _mini_iyp()
        a = right.store.find_nodes("AS", "asn", 1)[0]
        p = right.store.find_nodes("Prefix", "prefix", "10.0.0.0/8")[0]
        right.add_link(a, "ORIGINATE", p, reference=Reference("U", "other.bgp"))
        diff = snapshot_diff(left.store, right.store)
        assert len(diff.relationships_added) == 1
        assert diff.relationships_added[0][3] == "other.bgp"

    def test_summary_counts(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp(with_extra=True).store)
        summary = diff.summary()
        assert summary["nodes_added"] == {"AS": 1}
        assert summary["relationships_added"] == {"ORIGINATE": 1}

    def test_node_identity(self):
        iyp = _mini_iyp()
        node = iyp.store.find_nodes("AS", "asn", 1)[0]
        assert node_identity(node) == ("AS", 1)


class TestLongitudinal:
    @pytest.fixture(scope="class")
    def series(self):
        series = SnapshotSeries()
        series.add("t0", _mini_iyp())
        series.add("t1", _mini_iyp(with_extra=True))
        return series

    def test_metric_series(self, series):
        counts = series.metric("MATCH (a:AS) RETURN count(a)")
        assert counts == {"t0": 1, "t1": 2}

    def test_trend_preserves_order(self, series):
        trend = series.trend("MATCH (a:AS) RETURN count(a)")
        assert trend == [("t0", 1), ("t1", 2)]

    def test_run_full_results(self, series):
        results = series.run("MATCH (a:AS) RETURN a.asn ORDER BY a.asn")
        assert results["t1"].column() == [1, 2]

    def test_study_runner(self, series):
        sizes = series.study(lambda iyp: iyp.store.node_count)
        assert sizes["t1"] == sizes["t0"] + 1

    def test_paper_arc_2015_to_2024(self):
        # The Limitations-section workflow on the era presets: RPKI
        # coverage of all announced prefixes across two eras.
        from repro.pipeline import build_iyp
        from repro.simnet import WorldConfig, build_world

        series = SnapshotSeries()
        for label, config in (
            ("2015", WorldConfig.year2015(scale=0.1, n_domains=500, n_ases=150)),
            ("2024", WorldConfig(seed=20240501, scale=0.1, n_domains=500,
                                 n_ases=150)),
        ):
            iyp, _report = build_iyp(
                build_world(config), dataset_names=["ihr.rov"], postprocess=False
            )
            series.add(label, iyp)
        coverage = series.metric(
            """
            MATCH (p:Prefix)
            OPTIONAL MATCH (p)-[:CATEGORIZED]-(t:Tag)
            WHERE t.label IN ['RPKI Valid', 'RPKI Invalid',
                              'RPKI Invalid,more-specific']
            WITH p, count(t) AS tags
            RETURN 100.0 * sum(CASE WHEN tags > 0 THEN 1 ELSE 0 END) / count(p)
            """
        )
        assert coverage["2024"] > 4 * coverage["2015"]
