"""Longitudinal series and snapshot diffing."""

import pytest

from repro.core import IYP, Reference
from repro.core.diff import node_identity, snapshot_diff
from repro.studies.longitudinal import SnapshotSeries


def _mini_iyp(with_extra: bool = False) -> IYP:
    iyp = IYP()
    ref = Reference("T", "test.bgp")
    a = iyp.get_node("AS", asn=1)
    p = iyp.get_node("Prefix", prefix="10.0.0.0/8")
    iyp.add_link(a, "ORIGINATE", p, reference=ref)
    if with_extra:
        b = iyp.get_node("AS", asn=2)
        iyp.add_link(b, "ORIGINATE", p, reference=ref)
    return iyp


class TestSnapshotDiff:
    def test_identical_snapshots_unchanged(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp().store)
        assert diff.unchanged

    def test_added_node_and_link(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp(with_extra=True).store)
        assert diff.nodes_added == [("AS", 2)]
        assert not diff.nodes_removed
        assert len(diff.relationships_added) == 1
        start, rel_type, end, dataset = diff.relationships_added[0]
        assert start == ("AS", 2) and rel_type == "ORIGINATE"
        assert end == ("Prefix", "10.0.0.0/8") and dataset == "test.bgp"

    def test_removed_is_symmetric(self):
        diff = snapshot_diff(_mini_iyp(with_extra=True).store, _mini_iyp().store)
        assert diff.nodes_removed == [("AS", 2)]
        assert len(diff.relationships_removed) == 1

    def test_identity_ignores_internal_ids(self):
        # Build the same content in a different insertion order.
        iyp = IYP()
        ref = Reference("T", "test.bgp")
        p = iyp.get_node("Prefix", prefix="10.0.0.0/8")
        a = iyp.get_node("AS", asn=1)
        iyp.add_link(a, "ORIGINATE", p, reference=ref)
        diff = snapshot_diff(_mini_iyp().store, iyp.store)
        assert diff.unchanged

    def test_same_link_different_dataset_counts_as_change(self):
        left = _mini_iyp()
        right = _mini_iyp()
        a = right.store.find_nodes("AS", "asn", 1)[0]
        p = right.store.find_nodes("Prefix", "prefix", "10.0.0.0/8")[0]
        right.add_link(a, "ORIGINATE", p, reference=Reference("U", "other.bgp"))
        diff = snapshot_diff(left.store, right.store)
        assert len(diff.relationships_added) == 1
        assert diff.relationships_added[0][3] == "other.bgp"

    def test_summary_counts(self):
        diff = snapshot_diff(_mini_iyp().store, _mini_iyp(with_extra=True).store)
        summary = diff.summary()
        assert summary["nodes_added"] == {"AS": 1}
        assert summary["relationships_added"] == {"ORIGINATE": 1}

    def test_node_identity(self):
        iyp = _mini_iyp()
        node = iyp.store.find_nodes("AS", "asn", 1)[0]
        assert node_identity(node) == ("AS", 1)


class TestModifiedEntities:
    """Property-level changes on entities present in both snapshots."""

    def test_modified_node_properties(self):
        left = _mini_iyp()
        right = _mini_iyp()
        node = right.store.find_nodes("AS", "asn", 1)[0]
        right.store.update_node(node.id, {"name": "RENAMED", "rank": 7})
        diff = snapshot_diff(left.store, right.store)
        assert not diff.unchanged
        assert not diff.nodes_added and not diff.nodes_removed
        [(key, changes)] = diff.nodes_modified
        assert key == ("AS", 1)
        assert changes["name"] == (None, "RENAMED")
        assert changes["rank"] == (None, 7)

    def test_modified_value_reports_before_and_after(self):
        left = _mini_iyp()
        right = _mini_iyp()
        for iyp, rank in ((left, 3), (right, 7)):
            node = iyp.store.find_nodes("AS", "asn", 1)[0]
            iyp.store.update_node(node.id, {"rank": rank})
        diff = snapshot_diff(left.store, right.store)
        [(key, changes)] = diff.nodes_modified
        assert changes == {"rank": (3, 7)}

    def test_type_change_counts_as_modification(self):
        # 1 == True in Python; the diff must still see the type flip.
        left = _mini_iyp()
        right = _mini_iyp()
        for iyp, value in ((left, 1), (right, True)):
            node = iyp.store.find_nodes("AS", "asn", 1)[0]
            iyp.store.update_node(node.id, {"flag": value})
        diff = snapshot_diff(left.store, right.store)
        [(_, changes)] = diff.nodes_modified
        assert changes == {"flag": (1, True)}

    def test_modified_relationship_properties(self):
        left = _mini_iyp()
        right = _mini_iyp()
        rel = next(iter(right.store.iter_relationships()))
        right.store.update_relationship(rel.id, {"count": 9})
        diff = snapshot_diff(left.store, right.store)
        [(key, changes)] = diff.relationships_modified
        assert key[1] == "ORIGINATE"
        assert changes["count"] == (None, 9)

    def test_summary_counts_modifications(self):
        left = _mini_iyp()
        right = _mini_iyp()
        node = right.store.find_nodes("AS", "asn", 1)[0]
        right.store.update_node(node.id, {"rank": 7})
        summary = snapshot_diff(left.store, right.store).summary()
        assert summary["nodes_modified"] == {"AS": 1}
        assert summary["relationships_modified"] == {}

    def test_unchanged_requires_no_modifications(self):
        assert snapshot_diff(_mini_iyp().store, _mini_iyp().store).unchanged


class TestSeriesFromArchive:
    def test_series_loads_archived_snapshots_in_order(self, tmp_path):
        from repro.archive import SnapshotArchive

        archive = SnapshotArchive(tmp_path / "archive")
        archive.add(_mini_iyp().store, "t0")
        archive.add(_mini_iyp(with_extra=True).store, "t1")
        series = SnapshotSeries.from_archive(archive)
        assert list(series.snapshots) == ["t0", "t1"]
        assert series.metric("MATCH (a:AS) RETURN count(a)") == {"t0": 1, "t1": 2}

    def test_label_filter(self, tmp_path):
        from repro.archive import SnapshotArchive

        archive = SnapshotArchive(tmp_path / "archive")
        archive.add(_mini_iyp().store, "t0")
        archive.add(_mini_iyp(with_extra=True).store, "t1")
        series = SnapshotSeries.from_archive(archive, labels=["t1"])
        assert list(series.snapshots) == ["t1"]


class TestLongitudinal:
    @pytest.fixture(scope="class")
    def series(self):
        series = SnapshotSeries()
        series.add("t0", _mini_iyp())
        series.add("t1", _mini_iyp(with_extra=True))
        return series

    def test_metric_series(self, series):
        counts = series.metric("MATCH (a:AS) RETURN count(a)")
        assert counts == {"t0": 1, "t1": 2}

    def test_trend_preserves_order(self, series):
        trend = series.trend("MATCH (a:AS) RETURN count(a)")
        assert trend == [("t0", 1), ("t1", 2)]

    def test_run_full_results(self, series):
        results = series.run("MATCH (a:AS) RETURN a.asn ORDER BY a.asn")
        assert results["t1"].column() == [1, 2]

    def test_study_runner(self, series):
        sizes = series.study(lambda iyp: iyp.store.node_count)
        assert sizes["t1"] == sizes["t0"] + 1

    def test_paper_arc_2015_to_2024(self):
        # The Limitations-section workflow on the era presets: RPKI
        # coverage of all announced prefixes across two eras.
        from repro.pipeline import build_iyp
        from repro.simnet import WorldConfig, build_world

        series = SnapshotSeries()
        for label, config in (
            ("2015", WorldConfig.year2015(scale=0.1, n_domains=500, n_ases=150)),
            ("2024", WorldConfig(seed=20240501, scale=0.1, n_domains=500,
                                 n_ases=150)),
        ):
            iyp, _report = build_iyp(
                build_world(config), dataset_names=["ihr.rov"], postprocess=False
            )
            series.add(label, iyp)
        coverage = series.metric(
            """
            MATCH (p:Prefix)
            OPTIONAL MATCH (p)-[:CATEGORIZED]-(t:Tag)
            WHERE t.label IN ['RPKI Valid', 'RPKI Invalid',
                              'RPKI Invalid,more-specific']
            WITH p, count(t) AS tags
            RETURN 100.0 * sum(CASE WHEN tags > 0 THEN 1 ELSE 0 END) / count(p)
            """
        )
        assert coverage["2024"] > 4 * coverage["2015"]
