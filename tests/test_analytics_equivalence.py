"""Equivalence of the vectorized analytics against naive references.

Every ``CALL algo.*`` procedure is replayed against a naive
pure-Python implementation that never touches the store's typed
adjacency (edge scans, per-pair BFS, the legacy Cypher-driven
PageRank), on the seed world's knowledge graph and on additional
seeded random simnet worlds.  The study refactors ride along: the
SPoF zone walk and the synthetic-topology customer cones must be
byte-identical to the pre-refactor algorithms they replaced.
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro.analysis.centrality import as_pagerank
from repro.analytics import (
    PROCEDURES,
    ProcedureContext,
    betweenness_centrality,
    bounded_reach,
    transitive_closure,
)
from repro.graphdb import GraphStore
from repro.graphdb.model import Direction
from repro.nettypes.dns import registered_domain
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies.spof import run_spof_study

RANDOM_SEEDS = (11, 23)


@pytest.fixture(scope="module", params=RANDOM_SEEDS)
def seeded_iyp(request):
    """A knowledge graph built from a differently-seeded random world."""
    world = build_world(WorldConfig.small(seed=request.param))
    iyp, report = build_iyp(world, validate=False, analytics=False)
    assert not report.crawler_errors
    return iyp


def run_procedure(store, name, *args):
    return PROCEDURES[name].run(ProcedureContext(store), *args)


# ---------------------------------------------------------------------------
# Naive references (no typed-adjacency access)
# ---------------------------------------------------------------------------


def naive_components(store, rel_type=None):
    """BFS flood fill over an adjacency rebuilt from the edge list."""
    adjacency: dict[int, set[int]] = {
        node.id: set() for node in store.iter_nodes()
    }
    for rel in store.iter_relationships():
        if rel_type is not None and rel.type != rel_type:
            continue
        adjacency[rel.start_id].add(rel.end_id)
        adjacency[rel.end_id].add(rel.start_id)
    seen: set[int] = set()
    components = []
    for node_id in adjacency:
        if node_id in seen:
            continue
        queue = deque([node_id])
        seen.add(node_id)
        members = []
        while queue:
            current = queue.popleft()
            members.append(current)
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(sorted(members))
    components.sort(key=lambda ids: (-len(ids), ids[0]))
    return components


def naive_degrees(store, rel_type=None, direction=Direction.BOTH):
    """Per-node degree from one pass over the edge list."""
    out: dict[int, int] = {}
    inbound: dict[int, int] = {}
    loops: dict[int, int] = {}
    for rel in store.iter_relationships():
        if rel_type is not None and rel.type != rel_type:
            continue
        out[rel.start_id] = out.get(rel.start_id, 0) + 1
        inbound[rel.end_id] = inbound.get(rel.end_id, 0) + 1
        if rel.start_id == rel.end_id:
            loops[rel.start_id] = loops.get(rel.start_id, 0) + 1
    degrees = {}
    for node in store.iter_nodes():
        o = out.get(node.id, 0)
        i = inbound.get(node.id, 0)
        s = loops.get(node.id, 0)
        if direction == Direction.OUT:
            degrees[node.id] = o
        elif direction == Direction.IN:
            degrees[node.id] = i
        else:
            degrees[node.id] = o + i - s
    return degrees


def naive_kreach(store, source, k, rel_type=None):
    """Undirected BFS over the rebuilt edge list."""
    adjacency: dict[int, set[int]] = {}
    for rel in store.iter_relationships():
        if rel_type is not None and rel.type != rel_type:
            continue
        adjacency.setdefault(rel.start_id, set()).add(rel.end_id)
        adjacency.setdefault(rel.end_id, set()).add(rel.start_id)
    depths: dict[int, int] = {}
    seen = {source}
    frontier = [source]
    for depth in range(1, k + 1):
        next_frontier = []
        for current in frontier:
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    depths[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return depths


def naive_cones(iyp):
    """Per-AS BFS reachability over Cypher-extracted provider links."""
    rows = iyp.run(
        "MATCH (p:AS)-[r:PEERS_WITH {rel: 1}]->(c:AS) "
        "RETURN p.asn AS provider, c.asn AS customer"
    ).records
    customers: dict[int, set[int]] = {}
    for row in rows:
        customers.setdefault(row["provider"], set()).add(row["customer"])
    asns = [
        row["asn"]
        for row in iyp.run("MATCH (a:AS) RETURN a.asn AS asn").records
    ]
    sizes = {}
    for asn in asns:
        seen = {asn}
        queue = deque([asn])
        while queue:
            for customer in customers.get(queue.popleft(), ()):
                if customer not in seen:
                    seen.add(customer)
                    queue.append(customer)
        sizes[asn] = len(seen)
    return sizes


def naive_betweenness(adjacency):
    """Pair-counting betweenness: sigma via BFS from every node, then
    sigma_st(v) = sigma_sv * sigma_vt when v lies on a shortest path."""
    nodes = sorted(adjacency)
    dist = {}
    sigma = {}
    for source in nodes:
        d = {source: 0}
        s = {source: 1}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for w in sorted(adjacency[v]):
                if w not in d:
                    d[w] = d[v] + 1
                    s[w] = 0
                    queue.append(w)
                if d[w] == d[v] + 1:
                    s[w] += s[v]
        dist[source] = d
        sigma[source] = s
    scores = dict.fromkeys(nodes, 0.0)
    for i, s_node in enumerate(nodes):
        for t_node in nodes[i + 1:]:
            if t_node not in dist[s_node]:
                continue
            d_st = dist[s_node][t_node]
            total = sigma[s_node][t_node]
            for v in nodes:
                if v in (s_node, t_node) or v not in dist[s_node]:
                    continue
                if dist[s_node].get(v, -1) + dist[t_node].get(v, -1) == d_st:
                    scores[v] += sigma[s_node][v] * sigma[t_node][v] / total
    return scores


# ---------------------------------------------------------------------------
# Procedure equivalence on built knowledge graphs
# ---------------------------------------------------------------------------


class TestSeedWorld:
    def test_components(self, small_iyp):
        expected = [
            {"component": ids[0], "size": len(ids)}
            for ids in naive_components(small_iyp.store)
        ]
        assert run_procedure(small_iyp.store, "algo.components") == expected

    def test_components_restricted_to_one_type(self, small_iyp):
        expected = [
            {"component": ids[0], "size": len(ids)}
            for ids in naive_components(small_iyp.store, "PEERS_WITH")
        ]
        rows = run_procedure(small_iyp.store, "algo.components", "PEERS_WITH")
        assert rows == expected

    def test_pagerank_is_bit_identical_to_the_legacy_study(self, small_iyp):
        reference = as_pagerank(small_iyp)
        rows = run_procedure(small_iyp.store, "algo.pagerank")
        assert {r["asn"]: r["score"] for r in rows} == reference

    def test_degree_distribution(self, small_iyp):
        degrees = naive_degrees(small_iyp.store)
        histogram: dict[int, int] = {}
        for degree in degrees.values():
            histogram[degree] = histogram.get(degree, 0) + 1
        rows = run_procedure(small_iyp.store, "algo.degree_distribution")
        assert rows == [
            {"degree": degree, "nodes": count}
            for degree, count in sorted(histogram.items())
        ]

    def test_degree_centrality(self, small_iyp):
        degrees = naive_degrees(small_iyp.store, rel_type="PEERS_WITH")
        rows = run_procedure(
            small_iyp.store, "algo.degree_centrality", "AS", "PEERS_WITH"
        )
        as_ids = {
            node.id for node in small_iyp.store.nodes_with_label("AS")
        }
        assert {r["node"] for r in rows} == as_ids
        for row in rows:
            assert row["degree"] == degrees[row["node"]]
            assert row["score"] == pytest.approx(
                row["degree"] / (len(as_ids) - 1)
            )

    def test_kreach(self, small_iyp):
        source = small_iyp.store.nodes_with_label("AS")[0].id
        rows = run_procedure(small_iyp.store, "algo.kreach", source, 3)
        assert {r["node"]: r["depth"] for r in rows} == naive_kreach(
            small_iyp.store, source, 3
        )

    def test_customer_cone(self, small_iyp):
        rows = run_procedure(small_iyp.store, "algo.customer_cone")
        assert {r["asn"]: r["size"] for r in rows} == naive_cones(small_iyp)

    def test_customer_cone_matches_world_ground_truth(
        self, small_world, small_iyp
    ):
        rows = run_procedure(small_iyp.store, "algo.customer_cone")
        for row in rows:
            assert row["size"] == small_world.ases[row["asn"]].cone_size


class TestRandomWorlds:
    def test_components(self, seeded_iyp):
        expected = [
            {"component": ids[0], "size": len(ids)}
            for ids in naive_components(seeded_iyp.store)
        ]
        assert run_procedure(seeded_iyp.store, "algo.components") == expected

    def test_pagerank(self, seeded_iyp):
        reference = as_pagerank(seeded_iyp)
        rows = run_procedure(seeded_iyp.store, "algo.pagerank")
        assert {r["asn"]: r["score"] for r in rows} == reference

    def test_kreach(self, seeded_iyp):
        source = seeded_iyp.store.nodes_with_label("AS")[3].id
        rows = run_procedure(seeded_iyp.store, "algo.kreach", source, 2)
        assert {r["node"]: r["depth"] for r in rows} == naive_kreach(
            seeded_iyp.store, source, 2
        )

    def test_customer_cone(self, seeded_iyp):
        rows = run_procedure(seeded_iyp.store, "algo.customer_cone")
        assert {r["asn"]: r["size"] for r in rows} == naive_cones(seeded_iyp)


class TestBetweenness:
    def test_path_and_star_have_known_values(self):
        store = GraphStore()
        a, b, c = (
            store.create_node({"AS"}, {"asn": i}) for i in range(3)
        )
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        store.create_relationship(b.id, "PEERS_WITH", c.id)
        scores = betweenness_centrality(store)
        assert scores == {0: 0.0, 1: 1.0, 2: 0.0}

    def test_random_graphs_match_pair_counting(self):
        rng = random.Random(4242)
        for _ in range(3):
            store = GraphStore()
            nodes = [
                store.create_node({"AS"}, {"asn": i}) for i in range(18)
            ]
            adjacency = {i: set() for i in range(18)}
            for _ in range(40):
                i, j = rng.sample(range(18), 2)
                if j in adjacency[i]:
                    continue
                adjacency[i].add(j)
                adjacency[j].add(i)
                store.create_relationship(
                    nodes[i].id, "PEERS_WITH", nodes[j].id
                )
            expected = naive_betweenness(adjacency)
            scores = betweenness_centrality(store)
            for asn, score in scores.items():
                assert score == pytest.approx(expected[asn]), asn


# ---------------------------------------------------------------------------
# Study refactors: byte-identical to the algorithms they replaced
# ---------------------------------------------------------------------------


class TestStudyRefactors:
    def test_spof_walk_matches_the_legacy_bfs(self, small_iyp):
        """`third_party_ases` now runs on `bounded_reach`; replay the
        pre-refactor manual BFS over the same inputs and require the
        same AS set for every zone."""
        zone_ns: dict[str, set[str]] = {}
        for row in small_iyp.run(
            "MATCH (z:DomainName)-[:MANAGED_BY {reference_name:"
            "'openintel.dnsgraph'}]-(ns:AuthoritativeNameServer) "
            "RETURN z.name AS zone, ns.name AS ns"
        ).records:
            zone_ns.setdefault(row["zone"], set()).add(row["ns"])

        def legacy_reach(domain, max_chain_depth=5):
            reached = []
            visited = {domain}
            frontier = {
                registered_domain(ns) or ns
                for ns in zone_ns.get(domain, ())
            }
            depth = 0
            while frontier and depth < max_chain_depth:
                next_frontier: set[str] = set()
                for zone in frontier:
                    if zone in visited or zone not in zone_ns:
                        continue
                    visited.add(zone)
                    reached.append(zone)
                    for ns in zone_ns[zone]:
                        parent = registered_domain(ns) or ns
                        if parent not in visited:
                            next_frontier.add(parent)
                frontier = next_frontier
                depth += 1
            return reached

        def zone_providers(zone):
            servers = zone_ns.get(zone)
            if servers is None:
                return None
            return [registered_domain(ns) or ns for ns in servers]

        checked = 0
        for domain in sorted(zone_ns)[:200]:
            frontier = {
                registered_domain(ns) or ns
                for ns in zone_ns.get(domain, ())
            }
            new = bounded_reach(
                frontier, zone_providers, max_depth=5, visited=(domain,)
            )
            assert set(new) == set(legacy_reach(domain)), domain
            checked += 1
        assert checked == 200

    def test_spof_study_still_produces_figures(self, small_iyp):
        results = run_spof_study(small_iyp)
        assert results.domains_analyzed > 0
        assert results.domains_with["direct"] > 0
        assert results.domains_with["third_party"] > 0
        assert results.by_country and results.by_as

    def test_topology_cones_match_the_legacy_dfs(self, small_world):
        """`_compute_cones_and_ranks` now runs on `transitive_closure`;
        replay the pre-refactor memoized DFS and require identical cone
        sizes, ranks, and hegemony for every AS."""
        cone_cache: dict[int, set[int]] = {}

        def cone(asn, visiting):
            if asn in cone_cache:
                return cone_cache[asn]
            if asn in visiting:
                return {asn}
            visiting.add(asn)
            members = {asn}
            for customer in small_world.ases[asn].customers:
                members |= cone(customer, visiting)
            visiting.discard(asn)
            cone_cache[asn] = members
            return members

        asns = sorted(small_world.ases)
        sizes = {asn: len(cone(asn, set())) for asn in asns}
        ranked = sorted(asns, key=lambda a: (-sizes[a], a))
        total = len(asns)
        for position, asn in enumerate(ranked, start=1):
            info = small_world.ases[asn]
            assert info.cone_size == sizes[asn]
            assert info.rank == position
            assert info.hegemony == round(sizes[asn] / total, 6)

    def test_transitive_closure_cycle_handling(self):
        """A key re-entered on the DFS stack contributes only itself —
        the exact cycle rule the synthetic builder used."""
        closure = transitive_closure({1: [2], 2: [1, 3], 3: []}, keys=[1])
        assert closure[1] == {1, 2, 3}
