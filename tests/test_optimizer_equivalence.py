"""Optimizer equivalence harness.

The cost-based planner (predicate pushdown, seek promotion, join
reordering) must never change query *results* — only how fast they
arrive.  This suite runs three families of queries through the
optimized engine and a forced-naive engine (``optimize=False``) and
asserts identical result multisets:

1. every paper listing from :mod:`repro.studies.queries`,
2. every ``cypher`` fence in ``EXPERIMENTS.md``,
3. a seeded family of randomized queries generated against the actual
   schema of the built graph (multi-pattern MATCH, shared variables,
   variable-length paths, WHERE conjuncts of every classification).

It also pins the two order-sensitivity guarantees the planner relies
on: relationship isomorphism is enforced across a whole MATCH clause
regardless of pattern order (the Listing-2 MOAS guarantee), and
variable-length paths survive join reordering.
"""

from __future__ import annotations

import random
from collections import Counter
from pathlib import Path

import pytest

from repro.cypher import CypherEngine
from repro.cypher.values import hash_key
from repro.graphdb import GraphStore
from repro.lint.extract import extract_queries
from repro.studies import queries as listings

EXPERIMENTS = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"


def result_multiset(result) -> Counter:
    """Order-insensitive, hashable view of a query result."""
    return Counter(
        tuple((column, hash_key(record[column])) for column in result.columns)
        for record in result.records
    )


def assert_equivalent(store, query: str, parameters: dict | None = None) -> int:
    """Run ``query`` optimized and naive; assert identical multisets.

    Returns the row count so callers can assert non-triviality.
    """
    optimized = CypherEngine(store).run(query, parameters)
    naive = CypherEngine(store, optimize=False).run(query, parameters)
    assert optimized.columns == naive.columns, query
    assert result_multiset(optimized) == result_multiset(naive), query
    return len(optimized.records)


# ---------------------------------------------------------------------------
# Paper listings and EXPERIMENTS.md fences
# ---------------------------------------------------------------------------

PAPER_LISTINGS = {
    name: getattr(listings, name)
    for name in sorted(dir(listings))
    if name.startswith("LISTING_")
}


@pytest.mark.parametrize("name", sorted(PAPER_LISTINGS))
def test_paper_listing_unchanged_by_optimizer(small_iyp, name):
    query = PAPER_LISTINGS[name]
    parameters = None
    if "$org_name" in query:
        orgs = small_iyp.engine.run(
            "MATCH (o:Organization) RETURN o.name AS name ORDER BY name"
        )
        assert orgs.records, "graph has no organizations to parameterize with"
        parameters = {"org_name": orgs.records[0]["name"]}
    assert_equivalent(small_iyp.store, query, parameters)


def test_experiments_fences_unchanged_by_optimizer(small_iyp):
    fences = extract_queries(EXPERIMENTS)
    assert fences, "EXPERIMENTS.md lost its cypher fences"
    for name, query in fences:
        rows = assert_equivalent(small_iyp.store, query)
        assert rows > 0, f"{name} returned nothing on the built graph"


# ---------------------------------------------------------------------------
# Randomized queries against the real schema
# ---------------------------------------------------------------------------


class QueryGenerator:
    """Seeded random query generator driven by the store's actual
    contents, so predicates compare against values that exist."""

    def __init__(self, store: GraphStore, seed: int):
        self.store = store
        self.rng = random.Random(seed)
        self.labels = [
            label for label, count in sorted(store.label_counts().items()) if count
        ]
        # (start_label, rel_type, end_label) triples that actually occur,
        # so generated patterns have a fighting chance of matching.
        triples: set[tuple[str, str, str]] = set()
        for rel in store.iter_relationships():
            start = store.get_node(rel.start_id)
            end = store.get_node(rel.end_id)
            for start_label in start.labels:
                for end_label in end.labels:
                    triples.add((start_label, rel.type, end_label))
        self.triples = sorted(triples)
        # label -> sorted property keys present on nodes of that label.
        self.props: dict[str, list[str]] = {}
        for label in self.labels:
            keys: set[str] = set()
            for node in store.nodes_with_label(label)[:25]:
                keys.update(node.properties)
            self.props[label] = sorted(keys)

    def sample_value(self, label: str, key: str):
        nodes = self.store.nodes_with_label(label)
        node = self.rng.choice(nodes)
        return node.properties.get(key)

    def pattern(
        self, index: int, bound: dict[str, str]
    ) -> tuple[str, dict[str, str]] | None:
        """One path pattern built from an observed schema triple.

        Patterns after the first MUST share a variable with what is
        already bound: the graph is dense enough (15k edges on a single
        type) that a disconnected pattern turns the clause into a
        cartesian product with ~10^8 intermediate rows.  Returns None
        when no observed triple connects to the bound variables.
        """
        rng = self.rng
        left = f"a{index}"
        right = f"b{index}"
        hops = f"*1..{rng.randint(1, 2)}" if rng.random() < 0.15 else ""
        arrow = rng.choice(["-", "->"])
        if not bound:
            start_label, rel, end_label = rng.choice(self.triples)
            text = f"({left}:{start_label})-[:{rel}{hops}]{arrow}({right}:{end_label})"
            return text, {left: start_label, right: end_label}
        labels = set(bound.values())
        connectable = [
            triple
            for triple in self.triples
            if triple[0] in labels or triple[2] in labels
        ]
        if not connectable:
            return None
        start_label, rel, end_label = rng.choice(connectable)
        if end_label in labels and (start_label not in labels or rng.random() < 0.5):
            right = rng.choice(
                [var for var, label in bound.items() if label == end_label]
            )
            text = f"({left}:{start_label})-[:{rel}{hops}]{arrow}({right})"
            return text, {left: start_label}
        left = rng.choice([var for var, label in bound.items() if label == start_label])
        text = f"({left})-[:{rel}{hops}]{arrow}({right}:{end_label})"
        return text, {right: end_label}

    def predicate(self, variable: str, label: str) -> str | None:
        keys = self.props.get(label)
        if not keys:
            return None
        key = self.rng.choice(keys)
        value = self.sample_value(label, key)
        if isinstance(value, bool) or value is None:
            return f"{variable}.{key} IS NOT NULL"
        if isinstance(value, (int, float)):
            op = self.rng.choice(["=", "<>", ">", "<="])
            return f"{variable}.{key} {op} {value!r}"
        if isinstance(value, str):
            shape = self.rng.random()
            escaped = value.replace("'", "\\'")
            if shape < 0.4:
                return f"{variable}.{key} = '{escaped}'"
            if shape < 0.7:
                return f"{variable}.{key} STARTS WITH '{escaped[:2]}'"
            return f"{variable}.{key} CONTAINS '{escaped[1:3]}'"
        return f"{variable}.{key} IS NOT NULL"

    def query(self) -> str:
        rng = self.rng
        patterns: list[str] = []
        bound: dict[str, str] = {}  # variable -> label
        for index in range(rng.randint(1, 3)):
            part = self.pattern(index, bound)
            if part is None:
                break
            text, introduced = part
            patterns.append(text)
            bound.update(introduced)
        conjuncts: list[str] = []
        for variable, label in bound.items():
            if rng.random() < 0.4:
                predicate = self.predicate(variable, label)
                if predicate:
                    conjuncts.append(predicate)
        if len(bound) >= 2 and rng.random() < 0.3:
            (va, la), (vb, lb) = rng.sample(sorted(bound.items()), 2)
            if self.props.get(la) and self.props.get(lb):
                conjuncts.append(
                    f"{va}.{rng.choice(self.props[la])} <> "
                    f"{vb}.{rng.choice(self.props[lb])}"
                )
        where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
        returned = ", ".join(bound)
        distinct = "DISTINCT " if rng.random() < 0.3 else ""
        return f"MATCH {', '.join(patterns)}{where} RETURN {distinct}{returned}"


def test_randomized_queries_unchanged_by_optimizer(small_iyp):
    generator = QueryGenerator(small_iyp.store, seed=20240806)
    total_rows = 0
    nonempty = 0
    for _ in range(40):
        query = generator.query()
        rows = assert_equivalent(small_iyp.store, query)
        total_rows += rows
        nonempty += bool(rows)
    # The generator samples live values, so a healthy fraction of the
    # queries must actually produce rows — otherwise the equivalence
    # check degenerates into comparing empty sets.
    assert nonempty >= 10, f"only {nonempty}/40 random queries returned rows"
    assert total_rows > 100


# ---------------------------------------------------------------------------
# Order-sensitivity guarantees (satellite: MOAS / variable-length)
# ---------------------------------------------------------------------------


@pytest.fixture()
def moas_store():
    """Two prefixes: one genuine MOAS (two distinct origins) and one
    with a single origin, plus skew so the planner reorders."""
    store = GraphStore()
    store.create_index("AS", "asn")
    a1 = store.create_node({"AS"}, {"asn": 1})
    a2 = store.create_node({"AS"}, {"asn": 2})
    a3 = store.create_node({"AS"}, {"asn": 3})
    moas = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
    single = store.create_node({"Prefix"}, {"prefix": "192.168.0.0/16"})
    store.create_relationship(a1.id, "ORIGINATE", moas.id)
    store.create_relationship(a2.id, "ORIGINATE", moas.id)
    store.create_relationship(a3.id, "ORIGINATE", single.id)
    # Padding nodes make both label scans expensive relative to an
    # index seek, so multi-pattern plans genuinely reorder.
    for i in range(50):
        store.create_node({"AS"}, {"asn": 100 + i})
        store.create_node({"Prefix"}, {"prefix": f"172.16.{i}.0/24"})
    return store


class TestRelationshipIsomorphism:
    def test_single_origin_prefix_is_not_moas(self, moas_store):
        """The Listing-2 guarantee: a prefix with ONE ORIGINATE edge
        never matches the two-leg MOAS pattern, because the single
        relationship cannot be used for both legs."""
        result = CypherEngine(moas_store).run(
            "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) "
            "RETURN DISTINCT p.prefix"
        )
        assert [r["p.prefix"] for r in result.records] == ["10.0.0.0/8"]

    def test_isomorphism_holds_across_patterns_of_one_clause(self, moas_store):
        """Split into two comma patterns the constraint still holds:
        both legs share the clause-wide used-relationship set."""
        rows = assert_equivalent(
            moas_store,
            "MATCH (x:AS)-[:ORIGINATE]->(p:Prefix), (y:AS)-[:ORIGINATE]->(p) "
            "RETURN x.asn, y.asn, p.prefix",
        )
        # Only the MOAS prefix contributes, in both (x,y) orders.
        assert rows == 2

    def test_isomorphism_is_join_order_independent(self, moas_store):
        """Force the planner to run the second textual pattern first (it
        carries an index seek) and check the multiset still matches the
        naive textual-order execution."""
        engine = CypherEngine(moas_store)
        query = (
            "MATCH (x:AS)-[:ORIGINATE]->(p:Prefix), (y:AS {asn: 2})-[:ORIGINATE]->(p) "
            "RETURN x.asn, y.asn"
        )
        plan_lines = "\n".join(engine.explain(query))
        assert "join=1/2 pattern=1" in plan_lines  # reorder actually happened
        rows = assert_equivalent(moas_store, query)
        assert rows == 1  # only (x=1, y=2) on the MOAS prefix


class TestVariableLengthUnderReordering:
    @pytest.fixture()
    def chain_store(self):
        """a -> b -> c -> d dependency chain with a marker hanging off
        the tail, plus label skew to trigger reordering."""
        store = GraphStore()
        store.create_index("Marker", "name")
        nodes = [store.create_node({"AS"}, {"asn": i}) for i in range(4)]
        for left, right in zip(nodes, nodes[1:], strict=False):
            store.create_relationship(left.id, "DEPENDS_ON", right.id)
        marker = store.create_node({"Marker"}, {"name": "tail"})
        store.create_relationship(nodes[-1].id, "FLAGGED", marker.id)
        for i in range(50):
            store.create_node({"AS"}, {"asn": 100 + i})
        return store

    def test_variable_length_results_survive_reordering(self, chain_store):
        engine = CypherEngine(chain_store)
        query = (
            "MATCH (s:AS)-[:DEPENDS_ON*1..3]->(t), (t)-[:FLAGGED]->(m:Marker {name: 'tail'}) "
            "RETURN s.asn, t.asn"
        )
        plan_lines = "\n".join(engine.explain(query))
        assert "join=1/2 pattern=1" in plan_lines  # marker seek runs first
        optimized = CypherEngine(chain_store).run(query)
        naive = CypherEngine(chain_store, optimize=False).run(query)
        assert result_multiset(optimized) == result_multiset(naive)
        # Nodes 0..2 reach node 3 within three hops.
        assert sorted(r["s.asn"] for r in optimized.records) == [0, 1, 2]

    def test_variable_length_rels_count_toward_isomorphism(self, chain_store):
        """A relationship consumed inside a var-length leg cannot be
        reused by a later pattern of the same clause."""
        rows = assert_equivalent(
            chain_store,
            "MATCH (s:AS)-[:DEPENDS_ON*1..1]->(t), (t)-[:DEPENDS_ON]->(u) "
            "WHERE s.asn = 0 RETURN s.asn, t.asn, u.asn",
        )
        assert rows == 1  # 0->1 then 1->2; the 0->1 edge is not reusable
