"""MATCH execution: pattern semantics against a known graph."""

import pytest

from repro.cypher import CypherEngine, CypherRuntimeError
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    """A small routing graph:

    AS1 -ORIGINATE-> P1 (10.0.0.0/8)
    AS1 -ORIGINATE-> P2 (192.0.2.0/24)   <- MOAS with AS2
    AS2 -ORIGINATE-> P2
    AS1 -PEERS_WITH-> AS2
    AS2 -PEERS_WITH-> AS3
    P2 -CATEGORIZED-> Tag('RPKI Valid')
    """
    store = GraphStore()
    store.create_index("AS", "asn")
    a1 = store.create_node({"AS"}, {"asn": 1, "name": "one"})
    a2 = store.create_node({"AS"}, {"asn": 2})
    a3 = store.create_node({"AS"}, {"asn": 3})
    p1 = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8", "af": 4})
    p2 = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
    tag = store.create_node({"Tag"}, {"label": "RPKI Valid"})
    store.create_relationship(a1.id, "ORIGINATE", p1.id, {"reference_name": "bgpkit"})
    store.create_relationship(a1.id, "ORIGINATE", p2.id, {"reference_name": "bgpkit"})
    store.create_relationship(a2.id, "ORIGINATE", p2.id, {"reference_name": "ihr"})
    store.create_relationship(a1.id, "PEERS_WITH", a2.id)
    store.create_relationship(a2.id, "PEERS_WITH", a3.id)
    store.create_relationship(p2.id, "CATEGORIZED", tag.id)
    return CypherEngine(store)


class TestBasicMatch:
    def test_label_scan(self, engine):
        assert len(engine.run("MATCH (a:AS) RETURN a")) == 3

    def test_property_seek(self, engine):
        result = engine.run("MATCH (a:AS {asn: 2}) RETURN a.asn")
        assert result.value() == 2

    def test_no_match_returns_empty(self, engine):
        assert len(engine.run("MATCH (a:AS {asn: 99}) RETURN a")) == 0

    def test_undirected_expansion(self, engine):
        result = engine.run("MATCH (a:AS {asn: 1})-[:PEERS_WITH]-(b) RETURN b.asn")
        assert result.column() == [2]

    def test_directed_expansion(self, engine):
        out = engine.run("MATCH (a:AS {asn: 2})-[:PEERS_WITH]->(b) RETURN b.asn")
        assert out.column() == [3]
        inc = engine.run("MATCH (a:AS {asn: 2})<-[:PEERS_WITH]-(b) RETURN b.asn")
        assert inc.column() == [1]

    def test_untyped_relationship(self, engine):
        result = engine.run("MATCH (a:AS {asn: 2})--(n) RETURN count(n)")
        assert result.value() == 3  # P2, AS1, AS3

    def test_multi_hop(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn: 1})-[:PEERS_WITH]-(b)-[:PEERS_WITH]-(c) RETURN c.asn"
        )
        assert result.column() == [3]

    def test_relationship_variable(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn: 1})-[r:ORIGINATE]->(p) RETURN r.reference_name, p.prefix"
        )
        assert len(result) == 2
        assert all(row["r.reference_name"] == "bgpkit" for row in result)

    def test_inline_rel_properties(self, engine):
        result = engine.run(
            "MATCH (a:AS)-[:ORIGINATE {reference_name:'ihr'}]->(p) RETURN a.asn"
        )
        assert result.column() == [2]

    def test_anonymous_nodes(self, engine):
        result = engine.run("MATCH (:AS)-[:ORIGINATE]->(:Prefix) RETURN count(*)")
        assert result.value() == 3


class TestRelationshipUniqueness:
    def test_moas_requires_distinct_edges(self, engine):
        # Without relationship isomorphism this would also return
        # 10.0.0.0/8 (same ORIGINATE edge walked twice).
        result = engine.run(
            "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix)-[:ORIGINATE]-(y:AS) "
            "RETURN DISTINCT p.prefix"
        )
        assert result.column() == ["192.0.2.0/24"]

    def test_uniqueness_spans_comma_patterns(self, engine):
        # Both patterns must use distinct relationships within one MATCH.
        result = engine.run(
            "MATCH (x:AS {asn:2})-[r:ORIGINATE]->(p), (y:AS {asn:2})-[s:ORIGINATE]->(p) "
            "RETURN count(*)"
        )
        assert result.value() == 0

    def test_uniqueness_resets_between_clauses(self, engine):
        result = engine.run(
            "MATCH (x:AS {asn:2})-[:ORIGINATE]->(p) "
            "MATCH (y:AS {asn:2})-[:ORIGINATE]->(p) RETURN count(*)"
        )
        assert result.value() == 1


class TestJoinSemantics:
    def test_bound_variable_joins(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn: 1}) MATCH (a)-[:ORIGINATE]->(p) RETURN count(p)"
        )
        assert result.value() == 2

    def test_rebinding_same_node_variable(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn:1})-[:ORIGINATE]->(p:Prefix {prefix:'192.0.2.0/24'})"
            "<-[:ORIGINATE]-(a2:AS) WHERE a2.asn <> a.asn RETURN a2.asn"
        )
        assert result.column() == [2]

    def test_cartesian_product(self, engine):
        result = engine.run("MATCH (a:AS), (p:Prefix) RETURN count(*)")
        assert result.value() == 6


class TestOptionalMatch:
    def test_missing_padded_with_null(self, engine):
        result = engine.run(
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:CATEGORIZED]-(t:Tag) "
            "RETURN a.asn, t ORDER BY a.asn"
        )
        assert [row["t"] for row in result] == [None, None, None]

    def test_found_rows_kept(self, engine):
        result = engine.run(
            "MATCH (p:Prefix) OPTIONAL MATCH (p)-[:CATEGORIZED]-(t:Tag) "
            "RETURN p.prefix, t.label ORDER BY p.prefix"
        )
        assert result.to_rows() == [
            ("10.0.0.0/8", None),
            ("192.0.2.0/24", "RPKI Valid"),
        ]

    def test_optional_with_where(self, engine):
        result = engine.run(
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:ORIGINATE]->(p) "
            "WHERE p.prefix STARTS WITH '10.' RETURN a.asn, p.prefix ORDER BY a.asn"
        )
        assert result.to_rows() == [(1, "10.0.0.0/8"), (2, None), (3, None)]


class TestVariableLength:
    def test_fixed_range(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn:1})-[:PEERS_WITH*2..2]-(c) RETURN c.asn"
        )
        assert result.column() == [3]

    def test_range_one_to_two(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn:1})-[:PEERS_WITH*1..2]-(c) RETURN c.asn ORDER BY c.asn"
        )
        assert result.column() == [2, 3]

    def test_unbounded(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn:3})-[:PEERS_WITH*]-(c) RETURN collect(c.asn)"
        )
        assert sorted(result.value()) == [1, 2]

    def test_rel_variable_binds_list(self, engine):
        result = engine.run(
            "MATCH (a:AS {asn:1})-[r:PEERS_WITH*2..2]-(c) RETURN size(r)"
        )
        assert result.value() == 2


class TestPatternPredicates:
    def test_where_pattern(self, engine):
        result = engine.run(
            "MATCH (a:AS) WHERE (a)-[:CATEGORIZED]-(:Tag) RETURN a.asn"
        )
        assert result.column() == []
        result = engine.run(
            "MATCH (p:Prefix) WHERE (p)-[:CATEGORIZED]-(:Tag) RETURN p.prefix"
        )
        assert result.column() == ["192.0.2.0/24"]

    def test_not_pattern(self, engine):
        result = engine.run(
            "MATCH (p:Prefix) WHERE NOT (p)-[:CATEGORIZED]-(:Tag) RETURN p.prefix"
        )
        assert result.column() == ["10.0.0.0/8"]

    def test_exists_function_form(self, engine):
        result = engine.run(
            "MATCH (p:Prefix) WHERE exists((p)-[:CATEGORIZED]-(:Tag)) RETURN count(p)"
        )
        assert result.value() == 1


class TestPathVariable:
    def test_path_is_bound(self, engine):
        result = engine.run(
            "MATCH q = (a:AS {asn:1})-[:PEERS_WITH]-(b) RETURN size(q)"
        )
        assert result.value() == 2  # two nodes (rel var not requested)


class TestErrors:
    def test_undefined_variable(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (a:AS) RETURN b")

    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (a:AS) WHERE count(a) > 1 RETURN a")
