"""Write clauses: CREATE, MERGE, SET, REMOVE, DELETE."""

import pytest

from repro.cypher import CypherEngine, CypherRuntimeError
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    return CypherEngine(GraphStore())


class TestCreate:
    def test_create_node(self, engine):
        result = engine.run("CREATE (a:AS {asn: 1}) RETURN a.asn")
        assert result.value() == 1
        assert result.stats.nodes_created == 1
        assert engine.store.node_count == 1

    def test_create_path(self, engine):
        result = engine.run(
            "CREATE (a:AS {asn: 1})-[:ORIGINATE {src: 'test'}]->(p:Prefix {prefix: 'x'}) "
            "RETURN a, p"
        )
        assert result.stats.relationships_created == 1
        rels = list(engine.store.iter_relationships())
        assert rels[0].properties["src"] == "test"

    def test_create_per_input_row(self, engine):
        engine.run("UNWIND [1, 2, 3] AS x CREATE (:AS {asn: x})")
        assert engine.store.node_count == 3

    def test_create_reuses_bound_variable(self, engine):
        engine.run(
            "CREATE (a:AS {asn: 1}) CREATE (a)-[:PEERS_WITH]->(b:AS {asn: 2})"
        )
        assert engine.store.node_count == 2
        assert engine.store.relationship_count == 1

    def test_create_undirected_rejected(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("CREATE (a)-[:X]-(b)")

    def test_create_directional_in(self, engine):
        engine.run("CREATE (a:A {v:1})<-[:X]-(b:B {v:2})")
        rel = next(engine.store.iter_relationships())
        assert engine.store.get_node(rel.start_id).has_label("B")


class TestMerge:
    def test_merge_creates_once(self, engine):
        engine.run("MERGE (a:AS {asn: 1})")
        engine.run("MERGE (a:AS {asn: 1})")
        assert engine.store.node_count == 1

    def test_merge_on_create_vs_on_match(self, engine):
        engine.run(
            "MERGE (a:AS {asn: 1}) ON CREATE SET a.created = true "
            "ON MATCH SET a.matched = true"
        )
        node = engine.store.nodes_with_label("AS")[0]
        assert node.properties.get("created") is True
        assert "matched" not in node.properties
        engine.run(
            "MERGE (a:AS {asn: 1}) ON CREATE SET a.created2 = true "
            "ON MATCH SET a.matched = true"
        )
        assert node.properties.get("matched") is True
        assert "created2" not in node.properties

    def test_merge_relationship_between_bound(self, engine):
        engine.run("CREATE (:AS {asn: 1}), (:AS {asn: 2})")
        for _ in range(2):
            engine.run(
                "MATCH (a:AS {asn: 1}), (b:AS {asn: 2}) MERGE (a)-[:PEERS_WITH]->(b)"
            )
        assert engine.store.relationship_count == 1

    def test_merge_whole_path_created_atomically(self, engine):
        engine.run("MERGE (a:AS {asn: 1})-[:ORIGINATE]->(p:Prefix {prefix: 'x'})")
        assert engine.store.node_count == 2
        engine.run("MERGE (a:AS {asn: 1})-[:ORIGINATE]->(p:Prefix {prefix: 'x'})")
        assert engine.store.node_count == 2
        assert engine.store.relationship_count == 1


class TestSet:
    def test_set_property(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        result = engine.run("MATCH (a:AS) SET a.name = 'x' RETURN a.name")
        assert result.value() == "x"
        assert result.stats.properties_set == 1

    def test_set_label(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        engine.run("MATCH (a:AS) SET a:Tier1")
        assert engine.store.nodes_with_label("Tier1")

    def test_set_merge_map(self, engine):
        engine.run("CREATE (:AS {asn: 1, name: 'a'})")
        engine.run("MATCH (a:AS) SET a += {name: 'b', extra: 1}")
        node = engine.store.nodes_with_label("AS")[0]
        assert node.properties == {"asn": 1, "name": "b", "extra": 1}

    def test_set_replace_map(self, engine):
        engine.run("CREATE (:AS {asn: 1, name: 'a'})")
        engine.run("MATCH (a:AS) SET a = {asn: 2}")
        node = engine.store.nodes_with_label("AS")[0]
        assert node.properties == {"asn": 2}

    def test_set_relationship_property(self, engine):
        engine.run("CREATE (:A {v:1})-[:X]->(:B {v:2})")
        engine.run("MATCH (:A)-[r:X]->(:B) SET r.weight = 9")
        rel = next(engine.store.iter_relationships())
        assert rel.properties["weight"] == 9

    def test_set_on_null_subject_is_noop(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        engine.run(
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:X]->(b) SET b.v = 1"
        )  # must not raise

    def test_remove_property(self, engine):
        engine.run("CREATE (:AS {asn: 1, name: 'x'})")
        engine.run("MATCH (a:AS) REMOVE a.name")
        assert "name" not in engine.store.nodes_with_label("AS")[0].properties


class TestDelete:
    def test_delete_relationship(self, engine):
        engine.run("CREATE (:A {v:1})-[:X]->(:B {v:2})")
        engine.run("MATCH (:A)-[r:X]->(:B) DELETE r")
        assert engine.store.relationship_count == 0
        assert engine.store.node_count == 2

    def test_detach_delete_node(self, engine):
        engine.run("CREATE (:A {v:1})-[:X]->(:B {v:2})")
        result = engine.run("MATCH (a:A) DETACH DELETE a")
        assert result.stats.nodes_deleted == 1
        assert result.stats.relationships_deleted == 1
        assert engine.store.node_count == 1

    def test_plain_delete_connected_raises(self, engine):
        engine.run("CREATE (:A {v:1})-[:X]->(:B {v:2})")
        with pytest.raises(Exception):
            engine.run("MATCH (a:A) DELETE a")

    def test_delete_idempotent_within_query(self, engine):
        engine.run("CREATE (a:A {v:1})-[:X]->(:B), (a)-[:X]->(:C)")
        # 'a' appears in two rows; it must be deleted exactly once.
        result = engine.run("MATCH (a:A)-[:X]->() DETACH DELETE a")
        assert result.stats.nodes_deleted == 1


class TestWriteStats:
    def test_stats_accumulate(self, engine):
        result = engine.run(
            "UNWIND [1,2] AS x CREATE (a:AS {asn: x}) SET a.seen = true"
        )
        assert result.stats.nodes_created == 2
        assert result.stats.properties_set == 4  # 2 asn + 2 seen
        assert result.stats.labels_added == 2

    def test_pure_read_has_no_stats(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        result = engine.run("MATCH (a:AS) RETURN a")
        assert not result.stats
