"""The SPoF-in-DNS-chain analysis: Figure 5/6 shapes."""

import pytest

from repro.studies import run_combined_study, run_spof_study


@pytest.fixture(scope="module")
def results(small_iyp):
    return run_spof_study(small_iyp)


class TestCoverage:
    def test_most_ranked_domains_analyzed(self, results, small_world):
        assert results.domains_analyzed >= len(small_world.tranco) * 0.95

    def test_counts_bounded_by_domains(self, results):
        for counts in results.by_country.values():
            for value in counts.values():
                assert 0 <= value <= results.domains_analyzed


class TestFigure5CountryShape:
    def test_us_dominates_third_party(self, results):
        # Paper: "a significant extent of third-party dependency
        # towards the US".
        third = {
            country: counts["third_party"]
            for country, counts in results.by_country.items()
        }
        assert third, "no third-party dependencies found"
        assert max(third, key=third.get) == "US"

    def test_cctld_countries_hierarchical_heavy(self, results):
        # Paper: "a large hierarchical dependency on Russia, China, and
        # the UK" - for those countries the hierarchical component
        # dominates their direct one.
        seen = 0
        for country in ("RU", "CN", "GB"):
            counts = results.by_country.get(country)
            if counts is None:
                continue
            seen += 1
            assert counts["hierarchical"] > counts["direct"]
        assert seen >= 2

    def test_direct_dependencies_dominate_overall(self, results):
        # Paper: "direct dependencies dominate the DNS ecosystem":
        # every analyzed domain has a direct dependency, only the
        # provider-managed subset has third-party ones.
        assert results.domains_with["direct"] == results.domains_analyzed
        assert (
            results.domains_with["direct"] > results.domains_with["third_party"]
        )


class TestFigure6ASShape:
    def test_akamai_shaped_as_exists(self, results):
        # Some AS serves mostly providers (third-party >> direct).
        assert any(
            counts["third_party"] > 3 * max(counts["direct"], 1)
            and counts["third_party"] > 20
            for counts in results.by_as.values()
        )

    def test_godaddy_shaped_as_exists(self, results):
        # Some AS serves mostly end customers (direct >> third-party).
        assert any(
            counts["direct"] > 3 * max(counts["third_party"], 1)
            and counts["direct"] > 20
            for counts in results.by_as.values()
        )

    def test_as_names_resolvable(self, results):
        for asn, _counts in results.top_ases(5):
            assert asn in results.as_names


class TestCombinedStudy:
    def test_concentration_effect(self, small_iyp):
        # Section 5.1.1: domain-level coverage exceeds prefix-level
        # (84% of domains vs 48% of prefixes in the paper).
        combined = run_combined_study(small_iyp)
        assert combined.ns_prefixes_total > 0
        assert (
            combined.domains_on_covered_ns_pct
            > combined.ns_prefixes_covered_pct
        )

    def test_empty_graph_safe(self, empty_iyp):
        combined = run_combined_study(empty_iyp)
        assert combined.ns_prefixes_total == 0
