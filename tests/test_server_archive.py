"""Hot-swap serving and time travel over the snapshot archive.

The service must be able to move to a new snapshot while queries are in
flight (zero failed requests), serve historical snapshots side by side
with the live one, and keep its result cache honest across both.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.archive import ArchiveWatcher, SnapshotArchive
from repro.graphdb import GraphStore
from repro.server import QueryService, ServiceError, create_server

COUNT_AS = "MATCH (a:AS) RETURN count(a)"


def _request(method: str, url: str, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _store_with_ases(n: int) -> GraphStore:
    store = GraphStore()
    store.create_index("AS", "asn")
    for asn in range(64500, 64500 + n):
        store.create_node({"AS"}, {"asn": asn})
    return store


@pytest.fixture()
def archive(tmp_path):
    archive = SnapshotArchive(tmp_path / "archive")
    archive.add(_store_with_ases(1), "day-1")
    archive.add(_store_with_ases(2), "day-2")
    return archive


@pytest.fixture()
def service(archive):
    return QueryService(
        archive.load("day-1"), archive=archive, snapshot_label="day-1"
    )


@pytest.fixture()
def served(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()


class TestSwap:
    def test_swap_store_changes_results_and_clears_cache(self, service):
        first = service.execute(COUNT_AS)
        assert first["rows"] == [[1]]
        # Warm the cache, then swap: the same query must re-execute.
        assert service.execute(COUNT_AS)["meta"]["cached"] is True
        outcome = service.swap_store(_store_with_ases(5), label="scratch")
        assert outcome["generation"] == 1
        assert outcome["nodes"] == 5
        after = service.execute(COUNT_AS)
        assert after["rows"] == [[5]]
        assert after["meta"]["cached"] is False

    def test_load_and_swap_from_archive(self, service):
        outcome = service.load_and_swap("latest")
        assert outcome["snapshot"] == "day-2"
        assert service.snapshot_label == "day-2"
        assert service.execute(COUNT_AS)["rows"] == [[2]]

    def test_admin_swap_endpoint(self, served):
        base, service = served
        status, body = _request("POST", f"{base}/admin/swap", {"snapshot": "day-2"})
        assert status == 200
        assert body["snapshot"] == "day-2"
        status, body = _request("POST", f"{base}/query", {"query": COUNT_AS})
        assert status == 200 and body["rows"] == [[2]]

    def test_health_and_stats_reflect_generation(self, service):
        assert service.health()["generation"] == 0
        service.load_and_swap("day-2")
        health = service.health()
        assert health["generation"] == 1
        assert health["snapshot"] == "day-2"
        stats = service.stats()
        assert stats["graph"]["generation"] == 1
        assert stats["archive"]["attached"] is True
        assert stats["archive"]["swaps"] == 1


class TestTimeTravel:
    def test_query_a_named_snapshot(self, service):
        # The live store serves day-1; time travel reaches day-2.
        assert service.execute(COUNT_AS)["rows"] == [[1]]
        response = service.execute(COUNT_AS, snapshot="day-2")
        assert response["rows"] == [[2]]
        assert response["meta"]["snapshot"] == "day-2"

    def test_snapshot_results_cached_separately(self, service):
        live = service.execute(COUNT_AS)
        old = service.execute(COUNT_AS, snapshot="day-2")
        assert live["rows"] != old["rows"]
        again = service.execute(COUNT_AS, snapshot="day-2")
        assert again["meta"]["cached"] is True
        assert again["rows"] == old["rows"]
        # The live query is still answered from the live store.
        assert service.execute(COUNT_AS)["rows"] == live["rows"]

    def test_writes_to_snapshots_are_rejected(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.execute("CREATE (n:AS {asn: 1})", snapshot="day-2")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "read_only_snapshot"

    def test_unknown_snapshot_is_404(self, served):
        base, _ = served
        status, body = _request(
            "POST", f"{base}/query", {"query": COUNT_AS, "snapshot": "day-9"}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_snapshot"

    def test_no_archive_attached_is_400(self):
        service = QueryService(_store_with_ases(1))
        with pytest.raises(ServiceError) as excinfo:
            service.execute(COUNT_AS, snapshot="day-1")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "no_archive"

    def test_archive_endpoints(self, served):
        base, _ = served
        status, body = _request("GET", f"{base}/archive")
        assert status == 200
        assert [e["label"] for e in body["snapshots"]] == ["day-1", "day-2"]
        assert body["serving"] == "day-1"
        status, body = _request("GET", f"{base}/archive/info?snapshot=day-2")
        assert status == 200
        assert body["label"] == "day-2"
        assert body["nodes"] == 2


class TestWatcher:
    def test_watcher_check_once_picks_up_latest(self, archive, service):
        watcher = ArchiveWatcher(service, archive, interval=999)
        swapped = watcher.check_once()
        assert swapped is True
        assert service.snapshot_label == "day-2"
        assert watcher.swaps == 1
        # Nothing new: the next poll is a no-op.
        assert watcher.check_once() is False
        archive.add(_store_with_ases(3), "day-3")
        assert watcher.check_once() is True
        assert service.snapshot_label == "day-3"
        assert service.execute(COUNT_AS)["rows"] == [[3]]

    def test_watcher_thread_lifecycle(self, archive, service):
        watcher = ArchiveWatcher(service, archive, interval=0.05)
        watcher.start()
        try:
            for _ in range(100):
                if service.snapshot_label == "day-2":
                    break
                threading.Event().wait(0.02)
        finally:
            watcher.stop()
        assert service.snapshot_label == "day-2"


class TestSwapUnderLoad:
    """The acceptance bar: swaps under concurrent traffic lose nothing."""

    def test_zero_failed_requests_across_swaps(self, served):
        base, service = served
        stores = [_store_with_ases(1), _store_with_ases(2)]
        errors: list = []
        results: list = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    status, body = _request(
                        "POST", f"{base}/query", {"query": COUNT_AS}
                    )
                except Exception as exc:  # noqa: BLE001 - any failure fails the test
                    errors.append(repr(exc))
                    return
                if status != 200:
                    errors.append(body)
                    return
                results.append(body["rows"][0][0])

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(20):
            service.swap_store(stores[i % 2], label=f"swap-{i}")
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[:3]
        assert len(results) > 0
        # Every response came from a complete, consistent store.
        assert set(results) <= {1, 2}
        assert service.generation == 20
