"""The CALL clause: lexing, parsing, execution, caching, introspection.

``CALL algo.<name>(args) [YIELD cols]`` is threaded through the whole
query stack — lexer keyword, parser grammar, AST node, engine pipeline
stage, EXPLAIN/PROFILE rows — and argument-free invocations are served
from the engine's precomputed :class:`repro.analytics.AnalyticsReport`
when the cached generation matches the store.
"""

from __future__ import annotations

import pytest

from repro.analytics import (
    compute_analytics_report,
    customer_cones,
    k_reach,
    weakly_connected_components,
)
from repro.cypher import CypherEngine, CypherRuntimeError, CypherSyntaxError
from repro.cypher import ast
from repro.cypher.parser import parse
from repro.graphdb import GraphStore


@pytest.fixture()
def chain_store():
    """asn 0 -> 1 -> 2 -> 3 provider chain (PEERS_WITH rel=1)."""
    store = GraphStore()
    nodes = [store.create_node({"AS"}, {"asn": i}) for i in range(4)]
    for left, right in zip(nodes, nodes[1:], strict=False):
        store.create_relationship(left.id, "PEERS_WITH", right.id, {"rel": 1})
    return store


class TestParsing:
    def test_standalone_call_parses(self):
        tree = parse("CALL algo.pagerank()")
        assert len(tree.clauses) == 1
        clause = tree.clauses[0]
        assert isinstance(clause, ast.CallClause)
        assert clause.procedure == "algo.pagerank"
        assert clause.args == ()
        assert clause.yields == ()

    def test_args_and_yield_aliases(self):
        tree = parse("CALL algo.kreach(1, 2) YIELD node AS n, depth")
        clause = tree.clauses[0]
        assert len(clause.args) == 2
        assert [(item.column, item.alias) for item in clause.yields] == [
            ("node", "n"),
            ("depth", "depth"),
        ]

    def test_procedure_name_is_case_insensitive(self):
        tree = parse("CALL ALGO.PageRank()")
        assert tree.clauses[0].procedure == "algo.pagerank"

    def test_name_span_covers_the_dotted_name(self):
        clause = parse("CALL algo.pagerank()").clauses[0]
        span = clause.name_span
        assert span is not None
        assert (span.line, span.column) == (1, 6)
        assert span.length == len("algo.pagerank")

    def test_missing_parentheses_is_a_syntax_error(self):
        with pytest.raises(CypherSyntaxError):
            parse("CALL algo.pagerank")

    def test_call_composes_with_other_clauses(self):
        tree = parse(
            "CALL algo.components() YIELD component, size "
            "RETURN size ORDER BY size DESC LIMIT 1"
        )
        assert isinstance(tree.clauses[0], ast.CallClause)
        assert isinstance(tree.clauses[1], ast.ReturnClause)


class TestExecution:
    def test_standalone_call_synthesizes_columns(self, chain_store):
        result = CypherEngine(chain_store).run("CALL algo.customer_cone()")
        assert result.columns == ["asn", "size"]
        expected = {
            asn: len(members)
            for asn, members in customer_cones(chain_store).items()
        }
        assert {r["asn"]: r["size"] for r in result.records} == expected

    def test_yield_aliases_rename_columns(self, chain_store):
        result = CypherEngine(chain_store).run(
            "CALL algo.customer_cone() YIELD asn AS a, size RETURN a, size"
        )
        assert result.columns == ["a", "size"]
        assert result.records[0]["a"] == 0

    def test_call_streams_into_the_pipeline(self, chain_store):
        result = CypherEngine(chain_store).run(
            "CALL algo.components() YIELD component, size "
            "RETURN size ORDER BY size DESC LIMIT 1"
        )
        largest = max(
            len(ids) for ids in weakly_connected_components(chain_store)
        )
        assert [r["size"] for r in result.records] == [largest]

    def test_arguments_accept_parameters(self, chain_store):
        result = CypherEngine(chain_store).run(
            "CALL algo.kreach($node, 2, 'PEERS_WITH', 'out') "
            "YIELD node, depth RETURN node, depth",
            {"node": 0},
        )
        expected = k_reach(chain_store, 0, 2, rel_type="PEERS_WITH")
        # Direction 'out' restricts to the chain's forward hops.
        assert {r["node"]: r["depth"] for r in result.records} == {
            1: 1, 2: 2
        }
        assert set(expected) >= set(r["node"] for r in result.records)

    def test_unknown_procedure_suggests_a_name(self, chain_store):
        with pytest.raises(CypherRuntimeError) as err:
            CypherEngine(chain_store).run("CALL algo.pagrank()")
        assert "unknown procedure" in str(err.value)
        assert "algo.pagerank" in str(err.value)

    def test_unknown_yield_column_lists_the_real_ones(self, chain_store):
        with pytest.raises(CypherRuntimeError) as err:
            CypherEngine(chain_store).run(
                "CALL algo.pagerank() YIELD rank RETURN rank"
            )
        assert "no column 'rank'" in str(err.value)
        assert "asn, score" in str(err.value)

    def test_bad_argument_count_cites_the_signature(self, chain_store):
        with pytest.raises(CypherRuntimeError) as err:
            CypherEngine(chain_store).run("CALL algo.customer_cone(1)")
        assert "algo.customer_cone()" in str(err.value)

    def test_bad_argument_value_cites_the_signature(self, chain_store):
        with pytest.raises(CypherRuntimeError) as err:
            CypherEngine(chain_store).run(
                "CALL algo.kreach(0, 2, 'PEERS_WITH', 'sideways')"
            )
        assert "algo.kreach(node, k, rel_type?, direction?)" in str(err.value)

    def test_call_is_not_a_write_query(self, chain_store):
        engine = CypherEngine(chain_store)
        assert not engine.is_write_query(
            "CALL algo.pagerank() YIELD asn, score RETURN asn"
        )


class TestIntrospection:
    def test_explain_shows_the_call_plan_line(self, chain_store):
        lines = list(CypherEngine(chain_store).explain(
            "CALL algo.pagerank() YIELD asn, score RETURN asn"
        ))
        assert any(
            line == "CALL algo.pagerank yield=[asn, score]" for line in lines
        )

    def test_explain_flags_unknown_procedures(self, chain_store):
        lines = list(CypherEngine(chain_store).explain("CALL algo.nope()"))
        assert "CALL algo.nope (unknown procedure)" in lines

    def test_profile_reports_a_call_operator(self, chain_store):
        result, root = CypherEngine(chain_store).profile(
            "CALL algo.customer_cone()"
        )
        call_nodes = [n for n in root.walk() if n.operator == "Call"]
        assert len(call_nodes) == 1
        assert "algo.customer_cone" in call_nodes[0].detail
        assert call_nodes[0].rows == len(result.records)


class TestPrecomputeCache:
    def test_matching_generation_serves_the_cache(self, chain_store):
        engine = CypherEngine(chain_store)
        engine.analytics = compute_analytics_report(chain_store)
        direct = CypherEngine(chain_store).run("CALL algo.customer_cone()")
        cached = engine.run("CALL algo.customer_cone()")
        assert engine.procedure_cache_hits == 1
        assert cached.records == direct.records
        lines = list(engine.explain("CALL algo.customer_cone()"))
        assert "CALL algo.customer_cone yield=[asn, size] precomputed" in lines

    def test_arguments_bypass_the_cache(self, chain_store):
        engine = CypherEngine(chain_store)
        engine.analytics = compute_analytics_report(chain_store)
        engine.run("CALL algo.pagerank(0.85, 5)")
        assert engine.procedure_cache_hits == 0

    def test_store_mutation_invalidates_the_cache(self, chain_store):
        engine = CypherEngine(chain_store)
        engine.analytics = compute_analytics_report(chain_store)
        chain_store.create_node({"AS"}, {"asn": 99})
        result = engine.run("CALL algo.customer_cone()")
        assert engine.procedure_cache_hits == 0
        # The fresh run sees the new (stub) AS; the stale cache would not.
        assert {r["asn"] for r in result.records} == {0, 1, 2, 3, 99}

    def test_non_precomputed_procedures_always_run(self, chain_store):
        engine = CypherEngine(chain_store)
        engine.analytics = compute_analytics_report(chain_store)
        assert "algo.betweenness" not in engine.analytics.procedures
        engine.run("CALL algo.betweenness()")
        assert engine.procedure_cache_hits == 0
