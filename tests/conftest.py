"""Shared fixtures: one small synthetic world and one built knowledge
graph per test session (building is the expensive part)."""

from __future__ import annotations

import pytest

from repro.core import IYP
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world


@pytest.fixture(scope="session")
def small_world():
    """A small, deterministic synthetic Internet."""
    return build_world(WorldConfig.small())


@pytest.fixture(scope="session")
def small_iyp(small_world):
    """The knowledge graph built from the small world (all datasets)."""
    iyp, report = build_iyp(small_world)
    assert report.ok, report.crawler_errors
    return iyp


@pytest.fixture()
def empty_iyp():
    """A fresh, empty IYP instance."""
    return IYP()
