"""The v2 binary snapshot format: framing, integrity, determinism."""

import struct

import pytest

from repro.archive import (
    SnapshotFormatError,
    is_v2_snapshot,
    load_snapshot_v2,
    read_meta,
    read_sections,
    save_snapshot_v2,
)
from repro.archive.format import (
    SECTION_END,
    SECTION_META,
    SECTION_NODES,
    SECTION_RELS,
    SECTION_STRINGS,
    _FRAME,
    _HEADER,
)
from repro.graphdb import GraphStore, load_snapshot, save_snapshot
from repro.graphdb.snapshot import snapshot_dict


def _sample_store() -> GraphStore:
    store = GraphStore()
    store.create_unique_constraint("AS", "asn")
    store.create_index("Prefix", "prefix")
    a = store.create_node({"AS"}, {"asn": 2914, "tags": ["Tier1", "Eyeball"]})
    b = store.create_node({"AS"}, {"asn": 2497, "name": "IIJ"})
    p = store.create_node({"Prefix", "BGPPrefix"}, {"prefix": "10.0.0.0/8", "af": 4})
    store.create_relationship(a.id, "ORIGINATE", p.id, {"reference_name": "x"})
    store.create_relationship(b.id, "PEERS_WITH", a.id, {"count": 3})
    return store


class TestRoundtrip:
    def test_roundtrip_identical(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(store, path)
        loaded = load_snapshot_v2(path)
        assert snapshot_dict(loaded) == snapshot_dict(store)

    def test_indexes_and_constraints_restored(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(store, path)
        loaded = load_snapshot_v2(path)
        assert loaded.has_index("AS", "asn")
        assert loaded.has_index("Prefix", "prefix")
        assert len(loaded.find_nodes("AS", "asn", 2914)) == 1
        from repro.graphdb.errors import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            loaded.create_node({"AS"}, {"asn": 2914})

    def test_ids_preserved_with_holes(self, tmp_path):
        store = GraphStore()
        nodes = [store.create_node({"N"}, {"i": i}) for i in range(6)]
        rels = [
            store.create_relationship(nodes[i].id, "E", nodes[i + 1].id)
            for i in range(5)
        ]
        store.delete_relationship(rels[1].id)
        store.delete_node(nodes[2].id, detach=True)
        path = tmp_path / "holes.iyp2"
        save_snapshot_v2(store, path)
        loaded = load_snapshot_v2(path)
        assert {n.id for n in loaded.iter_nodes()} == {
            n.id for n in store.iter_nodes()
        }
        fresh = loaded.create_node({"N"}, {"i": 99})
        assert fresh.id not in {n.id for n in store.iter_nodes()}

    def test_empty_store(self, tmp_path):
        path = tmp_path / "empty.iyp2"
        save_snapshot_v2(GraphStore(), path)
        loaded = load_snapshot_v2(path)
        assert loaded.node_count == 0
        assert loaded.relationship_count == 0

    def test_uncompressed_roundtrip(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "raw.iyp2"
        save_snapshot_v2(store, path, compress=False)
        assert snapshot_dict(load_snapshot_v2(path)) == snapshot_dict(store)


class TestTransparentDispatch:
    def test_load_snapshot_sniffs_v2(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snap.iyp2"
        save_snapshot(store, path, format=2)
        assert is_v2_snapshot(path)
        assert snapshot_dict(load_snapshot(path)) == snapshot_dict(store)

    def test_load_snapshot_still_reads_v1(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snap.json.gz"
        save_snapshot(store, path)
        assert not is_v2_snapshot(path)
        assert snapshot_dict(load_snapshot(path)) == snapshot_dict(store)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(ValueError):
            load_snapshot(path)


class TestDeterminism:
    def test_two_saves_byte_identical(self, tmp_path):
        store = _sample_store()
        a, b = tmp_path / "a.iyp2", tmp_path / "b.iyp2"
        save_snapshot_v2(store, a)
        save_snapshot_v2(store, b)
        assert a.read_bytes() == b.read_bytes()

    def test_insertion_order_changes_bytes_only_via_ids(self, tmp_path):
        # Same content, same ids => same bytes, even after a round-trip
        # through the loader (which rebuilds every internal map).
        store = _sample_store()
        a, b = tmp_path / "a.iyp2", tmp_path / "b.iyp2"
        save_snapshot_v2(store, a)
        save_snapshot_v2(load_snapshot_v2(a), b)
        assert a.read_bytes() == b.read_bytes()


class TestStreaming:
    def test_sections_stream_in_order(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        kinds = [kind for kind, _ in read_sections(path)]
        assert kinds[0] == SECTION_META
        assert kinds[1] == SECTION_STRINGS
        assert kinds[-1] == SECTION_END
        assert SECTION_NODES in kinds and SECTION_RELS in kinds

    def test_read_meta_counts(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        meta = read_meta(path)
        assert meta["nodes"] == 3
        assert meta["relationships"] == 2
        assert meta["format_version"] == 2

    def test_unknown_section_kind_is_skipped(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = bytearray(path.read_bytes())
        # Append an unknown section before END by rebuilding the tail.
        import json
        import zlib

        payload = json.dumps({"future": True}).encode()
        frame = _FRAME.pack(200, 0, zlib.crc32(payload), len(payload))
        end = _FRAME.pack(SECTION_END, 0, zlib.crc32(b"[]"), 2) + b"[]"
        assert raw.endswith(end)
        raw = raw[: -len(end)] + frame + payload + end
        path.write_bytes(raw)
        store = load_snapshot_v2(path)
        assert store.node_count == 3


class TestCorruption:
    def test_flipped_bit_fails_crc(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = bytearray(path.read_bytes())
        # Flip one payload byte past the header and first frame.
        raw[_HEADER.size + _FRAME.size + 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            load_snapshot_v2(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot_v2(path)

    def test_missing_end_section_detected(self, tmp_path):
        # A file cut exactly at a section boundary (no partial frame)
        # must still fail: the END sentinel is what marks completeness.
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = path.read_bytes()
        import zlib

        end = _FRAME.pack(SECTION_END, 0, zlib.crc32(b"[]"), 2) + b"[]"
        assert raw.endswith(end)
        path.write_bytes(raw[: -len(end)])
        with pytest.raises(SnapshotFormatError, match="END"):
            load_snapshot_v2(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="magic"):
            load_snapshot_v2(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = tmp_path / "snap.iyp2"
        save_snapshot_v2(_sample_store(), path)
        raw = bytearray(path.read_bytes())
        raw[4:6] = struct.pack("<H", 99)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="99"):
            load_snapshot_v2(path)
