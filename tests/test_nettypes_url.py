"""URL normalization for the URL -> HostName refinement."""

import pytest

from repro.nettypes import InvalidURLError, hostname_of_url, normalize_url


class TestNormalize:
    def test_lowercases_scheme_and_host(self):
        assert normalize_url("HTTPS://Example.COM/Path") == "https://example.com/Path"

    def test_default_port_stripped(self):
        assert normalize_url("https://example.com:443/") == "https://example.com/"
        assert normalize_url("http://example.com:80/") == "http://example.com/"

    def test_nondefault_port_kept(self):
        assert normalize_url("http://example.com:8080/") == "http://example.com:8080/"

    def test_query_kept_fragment_dropped(self):
        assert (
            normalize_url("https://example.com/a?q=1#frag")
            == "https://example.com/a?q=1"
        )

    @pytest.mark.parametrize("bad", ["ftp://example.com/", "not a url", "https://"])
    def test_invalid_raise(self, bad):
        with pytest.raises(InvalidURLError):
            normalize_url(bad)


class TestHostname:
    def test_extracts_host(self):
        assert hostname_of_url("https://WWW.Example.com/x") == "www.example.com"

    def test_trailing_dot(self):
        assert hostname_of_url("http://example.com./") == "example.com"

    def test_missing_host_raises(self):
        with pytest.raises(InvalidURLError):
            hostname_of_url("mailto:foo@example.com")
