"""The DNS Robustness reproduction: Tables 3-5 shapes."""

import pytest

from repro.studies import run_dns_robustness_study
from repro.studies.dns_robustness import _is_cno_sld


@pytest.fixture(scope="module")
def results(small_iyp):
    return run_dns_robustness_study(small_iyp)


class TestSLDFilter:
    def test_accepts_cno_slds(self):
        assert _is_cno_sld("example.com")
        assert _is_cno_sld("foo.org")

    def test_rejects_subdomains_and_other_tlds(self):
        assert not _is_cno_sld("a.example.com")
        assert not _is_cno_sld("example.ru")
        assert not _is_cno_sld("com")


class TestTable3Shape:
    def test_coverage_near_half(self, results):
        # Paper: 49% of Tranco is .com/.net/.org SLDs.
        assert 35.0 < results.coverage_pct < 60.0

    def test_discarded_fraction(self, results):
        # Paper: ~10% discarded for lack of glue data.
        assert 4.0 < results.discarded_pct < 18.0

    def test_2024_regime_exceed_dominates(self, results):
        # 2024 row of Table 3: exceed (67%) >> meet (18%) >> not meet (4%).
        assert results.exceed_pct > results.meet_pct > results.not_meet_pct
        assert results.exceed_pct > 50.0
        assert results.not_meet_pct < 12.0

    def test_categories_account_for_kept_domains(self, results):
        total = (
            results.meet_pct + results.exceed_pct + results.not_meet_pct
            + results.discarded_pct
        )
        assert total == pytest.approx(100.0, abs=0.5)

    def test_in_zone_glue_majority(self, results):
        # Paper: 76%.
        assert 55.0 < results.in_zone_glue_pct <= 100.0


class TestTable4Shape:
    def test_slash24_groups_much_larger_than_ns_groups(self, results):
        # Paper: /24 median 3.9k vs NS median 9; max 114k vs 6k.
        assert results.cno_by_slash24.median > results.cno_by_ns.median * 5
        assert results.cno_by_slash24.maximum > results.cno_by_ns.maximum

    def test_ns_median_small(self, results):
        assert results.cno_by_ns.median <= 20


class TestTable5Shape:
    def test_bgp_prefix_grouping_close_to_slash24(self, results):
        # Paper: "almost identical" (3.9k vs 4.1k median, same max).
        assert results.cno_by_prefix.maximum == pytest.approx(
            results.cno_by_slash24.maximum, rel=0.35
        )

    def test_all_tranco_groups_larger_than_cno(self, results):
        # Doubling the studied population grows the groups.
        assert results.all_by_prefix.maximum >= results.cno_by_prefix.maximum
        assert results.all_by_ns.maximum >= results.cno_by_ns.maximum
        assert results.all_by_ns.median >= results.cno_by_ns.median


class TestEmptyGraph:
    def test_empty_graph_is_safe(self, empty_iyp):
        results = run_dns_robustness_study(empty_iyp)
        assert results.coverage_pct == 0.0
        assert results.cno_by_ns.maximum == 0
