"""Build-time analytics precompute and its serving path.

``build_iyp`` measures the finished graph once (statistics plus every
precompute ``algo.*`` procedure), hangs the
:class:`repro.analytics.AnalyticsReport` on the build report, and — when
archiving — persists it on the snapshot's manifest entry.  A serving
process loading that snapshot answers argument-free ``CALL`` queries
from the cache, after re-stamping the report to the loaded store's
(reset) version counter.
"""

from __future__ import annotations

import pytest

from repro.analytics import AnalyticsReport, compute_analytics_report
from repro.archive import SnapshotArchive
from repro.graphdb import GraphStore
from repro.pipeline import build_iyp
from repro.server import QueryService
from repro.simnet import WorldConfig, build_world

PRECOMPUTED = {
    "algo.components",
    "algo.pagerank",
    "algo.degree_distribution",
    "algo.customer_cone",
}


@pytest.fixture(scope="module")
def archived_build(tmp_path_factory):
    """One build archived with analytics on the manifest entry."""
    archive = SnapshotArchive(tmp_path_factory.mktemp("archive"))
    world = build_world(WorldConfig.small(seed=5))
    iyp, report = build_iyp(world, archive=archive, archive_label="w1")
    assert report.ok
    return iyp, report, archive


class TestBuildReport:
    def test_build_attaches_an_analytics_report(self, archived_build):
        iyp, report, _ = archived_build
        analytics = report.analytics
        assert analytics is not None
        assert analytics.version == iyp.store.version
        assert set(analytics.procedures) == PRECOMPUTED
        assert all(analytics.rows(name) for name in PRECOMPUTED)
        assert analytics.statistics is not None
        assert analytics.statistics.node_count == iyp.store.node_count
        assert analytics.seconds > 0

    def test_analytics_precompute_can_be_disabled(self):
        world = build_world(WorldConfig.small(seed=5))
        _, report = build_iyp(
            world,
            dataset_names=["bgpkit.as2rel"],
            postprocess=False,
            validate=False,
            analytics=False,
        )
        assert report.analytics is None

    def test_cached_rows_match_a_fresh_computation(self, archived_build):
        iyp, report, _ = archived_build
        fresh = compute_analytics_report(iyp.store)
        assert fresh.procedures == report.analytics.procedures


class TestArchiveManifest:
    def test_entry_carries_the_serialized_report(self, archived_build):
        _, report, archive = archived_build
        entry = archive.resolve("w1")
        assert entry.analytics == report.analytics.to_dict()

    def test_report_roundtrips_through_the_manifest(self, archived_build):
        _, report, archive = archived_build
        # Entries are re-read from disk, so this exercises real JSON.
        entry = archive.entries()[-1]
        restored = AnalyticsReport.from_dict(entry.analytics)
        assert restored.procedures == report.analytics.procedures
        assert restored.statistics == report.analytics.statistics
        assert restored.version == report.analytics.version

    def test_entries_without_analytics_load_as_none(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "plain")
        store = GraphStore()
        store.create_node({"AS"}, {"asn": 1})
        archive.add(store, "bare")
        assert archive.resolve("bare").analytics is None


class TestServing:
    def test_loaded_snapshot_serves_precomputed_calls(self, archived_build):
        _, report, archive = archived_build
        store = archive.load("w1")
        # The binary loader resets the mutation counter; the attached
        # report must be re-stamped or the generation check never hits.
        service = QueryService(store, archive=archive, snapshot_label="w1")
        engine = service.engine
        assert engine.analytics is not None
        assert engine.analytics.version == store.version
        assert engine.statistics is not None
        response = service.execute(
            "CALL algo.pagerank() YIELD asn, score "
            "RETURN asn ORDER BY score DESC LIMIT 3"
        )
        assert len(response["rows"]) == 3
        assert engine.procedure_cache_hits == 1
        cached = report.analytics.rows("algo.pagerank")
        assert [row[0] for row in response["rows"]] == [
            record["asn"] for record in cached[:3]
        ]

    def test_service_without_archive_still_gets_statistics(self):
        store = GraphStore()
        store.create_node({"AS"}, {"asn": 1})
        service = QueryService(store)
        assert service.engine.statistics is not None
        assert service.engine.statistics.node_count == 1
        assert service.engine.analytics is None

    def test_write_invalidates_the_served_cache(self, archived_build):
        _, _, archive = archived_build
        store = archive.load("w1")
        service = QueryService(store, archive=archive, snapshot_label="w1")
        store.create_node({"AS"}, {"asn": 999999})
        service.execute("CALL algo.customer_cone() YIELD asn RETURN count(asn)")
        assert service.engine.procedure_cache_hits == 0
