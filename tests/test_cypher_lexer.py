"""Tokenizer tests."""

import pytest

from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("match RETURN Where")[0] == (TokenType.KEYWORD, "MATCH")
        assert kinds("match RETURN Where")[2] == (TokenType.KEYWORD, "WHERE")

    def test_keyword_raw_preserved(self):
        token = tokenize("Match")[0]
        assert token.value == "MATCH" and token.raw == "Match"

    def test_identifiers_case_sensitive(self):
        assert kinds("Prefix")[0] == (TokenType.IDENT, "Prefix")

    def test_comments_skipped(self):
        tokens = kinds("MATCH // a comment\nRETURN")
        assert [v for _, v in tokens] == ["MATCH", "RETURN"]

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestStrings:
    def test_single_and_double_quotes(self):
        assert kinds("'abc'")[0] == (TokenType.STRING, "abc")
        assert kinds('"abc"')[0] == (TokenType.STRING, "abc")

    def test_escapes(self):
        assert kinds(r"'a\'b\n'")[0] == (TokenType.STRING, "a'b\n")

    def test_unterminated_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")

    def test_backtick_identifier(self):
        assert kinds("`RPKI Invalid`")[0] == (TokenType.IDENT, "RPKI Invalid")


class TestNumbers:
    def test_integer(self):
        assert kinds("42")[0] == (TokenType.INTEGER, "42")

    def test_float(self):
        assert kinds("3.14")[0] == (TokenType.FLOAT, "3.14")

    def test_scientific(self):
        assert kinds("1e3")[0] == (TokenType.FLOAT, "1e3")

    def test_range_not_float(self):
        # '1..3' must lex as INTEGER, '..', INTEGER (hop ranges).
        tokens = kinds("1..3")
        assert [t for t, _ in tokens] == [
            TokenType.INTEGER, TokenType.PUNCT, TokenType.INTEGER,
        ]


class TestPunctuation:
    def test_multi_char_operators(self):
        values = [v for _, v in kinds("<> <= >= =~ .. +=")]
        assert values == ["<>", "<=", ">=", "=~", "..", "+="]

    def test_arrow_components(self):
        values = [v for _, v in kinds("-[:X]->")]
        assert values == ["-", "[", ":", "X", "]", "-", ">"]

    def test_parameter(self):
        tokens = kinds("$name")
        assert tokens[0] == (TokenType.PARAMETER, "name")

    def test_empty_parameter_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("$ x")

    def test_unknown_character_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("MATCH @")
