"""ASN parsing and classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes import (
    ASN_MAX,
    InvalidASNError,
    is_documentation_asn,
    is_private_asn,
    parse_asn,
)


class TestParse:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2914, 2914),
            ("2914", 2914),
            ("AS2914", 2914),
            ("as2914", 2914),
            (" AS2914 ", 2914),
            ("0", 0),
            ("1.10", 65546),  # asdot
            ("0.1", 1),
            (str(ASN_MAX), ASN_MAX),
        ],
    )
    def test_valid_spellings(self, value, expected):
        assert parse_asn(value) == expected

    @pytest.mark.parametrize("bad", ["", "ASX", "-5", -5, ASN_MAX + 1, "1.2.3", True])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(InvalidASNError):
            parse_asn(bad)


class TestRanges:
    def test_private_16bit(self):
        assert is_private_asn(64512)
        assert not is_private_asn(64511)

    def test_private_32bit(self):
        assert is_private_asn(4200000000)

    def test_documentation(self):
        assert is_documentation_asn(64496)
        assert is_documentation_asn(65536)
        assert not is_documentation_asn(2914)


@given(st.integers(min_value=0, max_value=ASN_MAX))
def test_property_roundtrip_plain_and_prefixed(asn):
    assert parse_asn(str(asn)) == asn
    assert parse_asn(f"AS{asn}") == asn


@given(st.integers(min_value=0, max_value=ASN_MAX))
def test_property_asdot_roundtrip(asn):
    high, low = divmod(asn, 65536)
    assert parse_asn(f"{high}.{low}") == asn
