"""ISO 3166 registry used by the Country refinement step."""

import pytest

from repro.nettypes import (
    UnknownCountryError,
    alpha2_to_alpha3,
    alpha3_to_alpha2,
    country_name,
    is_valid_alpha2,
    iter_countries,
)
from repro.nettypes.countries import lookup


class TestLookups:
    def test_alpha2_to_alpha3(self):
        assert alpha2_to_alpha3("US") == "USA"
        assert alpha2_to_alpha3("jp") == "JPN"  # case-insensitive

    def test_alpha3_to_alpha2(self):
        assert alpha3_to_alpha2("GBR") == "GB"

    def test_roundtrip_all(self):
        for country in iter_countries():
            assert alpha3_to_alpha2(alpha2_to_alpha3(country.alpha2)) == country.alpha2

    def test_country_name(self):
        assert country_name("NL") == "Netherlands"
        assert country_name("NLD") == "Netherlands"

    def test_unknown_raises(self):
        with pytest.raises(UnknownCountryError):
            lookup("XX")
        with pytest.raises(UnknownCountryError):
            lookup("XXX")

    def test_is_valid_alpha2(self):
        assert is_valid_alpha2("de")
        assert not is_valid_alpha2("ZZ")


class TestRegistryIntegrity:
    def test_codes_unique(self):
        entries = list(iter_countries())
        assert len({c.alpha2 for c in entries}) == len(entries)
        assert len({c.alpha3 for c in entries}) == len(entries)

    def test_code_shapes(self):
        for country in iter_countries():
            assert len(country.alpha2) == 2 and country.alpha2.isupper()
            assert len(country.alpha3) == 3 and country.alpha3.isupper()
            assert country.name
            assert country.region in {
                "Americas", "Europe", "Asia", "Africa", "Oceania",
            }

    def test_paper_relevant_countries_present(self):
        # Countries named in the SPoF discussion must be resolvable.
        for code in ("US", "RU", "CN", "GB"):
            assert is_valid_alpha2(code)
