"""Projection semantics: aggregation, grouping, DISTINCT, ordering."""

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    store = GraphStore()
    # Three ASes originating 3, 2, 0 prefixes.
    a1 = store.create_node({"AS"}, {"asn": 1, "country": "US"})
    a2 = store.create_node({"AS"}, {"asn": 2, "country": "US"})
    store.create_node({"AS"}, {"asn": 3, "country": "JP"})
    for i in range(3):
        p = store.create_node({"Prefix"}, {"prefix": f"10.{i}.0.0/16"})
        store.create_relationship(a1.id, "ORIGINATE", p.id)
    for i in range(2):
        p = store.create_node({"Prefix"}, {"prefix": f"172.16.{i}.0/24"})
        store.create_relationship(a2.id, "ORIGINATE", p.id)
    return CypherEngine(store)


class TestAggregates:
    def test_count_star(self, engine):
        assert engine.run("MATCH (a:AS) RETURN count(*)").value() == 3

    def test_count_expression_skips_null(self, engine):
        result = engine.run("UNWIND [1, null, 2] AS x RETURN count(x)")
        assert result.value() == 2

    def test_count_distinct(self, engine):
        result = engine.run("UNWIND [1, 1, 2] AS x RETURN count(DISTINCT x)")
        assert result.value() == 2

    def test_collect(self, engine):
        result = engine.run("UNWIND [3, 1, null, 2] AS x RETURN collect(x)")
        assert result.value() == [3, 1, 2]

    def test_collect_distinct(self, engine):
        result = engine.run("UNWIND [1, 1, 2] AS x RETURN collect(DISTINCT x)")
        assert result.value() == [1, 2]

    def test_sum_avg_min_max(self, engine):
        row = engine.run(
            "UNWIND [1, 2, 3, 4] AS x "
            "RETURN sum(x) AS s, avg(x) AS a, min(x) AS lo, max(x) AS hi"
        ).single()
        assert row == {"s": 10, "a": 2.5, "lo": 1, "hi": 4}

    def test_aggregates_over_empty(self, engine):
        row = engine.run(
            "MATCH (a:AS {asn: 99}) RETURN count(a) AS c, sum(a.asn) AS s, "
            "avg(a.asn) AS av, collect(a.asn) AS xs"
        ).single()
        assert row == {"c": 0, "s": 0, "av": None, "xs": []}

    def test_percentiles(self, engine):
        row = engine.run(
            "UNWIND [1, 2, 3, 4, 5] AS x "
            "RETURN percentileCont(x, 0.5) AS med, percentileDisc(x, 0.5) AS disc"
        ).single()
        assert row["med"] == 3.0 and row["disc"] == 3

    def test_stdev(self, engine):
        result = engine.run("UNWIND [2, 4, 4, 4, 5, 5, 7, 9] AS x RETURN stdev(x)")
        assert abs(result.value() - 2.138) < 0.01


class TestImplicitGrouping:
    def test_group_by_non_aggregated(self, engine):
        result = engine.run(
            "MATCH (a:AS)-[:ORIGINATE]->(p) "
            "RETURN a.asn AS asn, count(p) AS n ORDER BY asn"
        )
        assert result.to_rows() == [(1, 3), (2, 2)]

    def test_group_by_two_keys(self, engine):
        result = engine.run(
            "MATCH (a:AS) RETURN a.country AS c, count(*) AS n ORDER BY c"
        )
        assert result.to_rows() == [("JP", 1), ("US", 2)]

    def test_aggregate_inside_expression(self, engine):
        result = engine.run(
            "MATCH (a:AS)-[:ORIGINATE]->(p) "
            "RETURN a.asn AS asn, 100.0 * count(p) / 5 AS pct ORDER BY asn"
        )
        assert result.to_rows() == [(1, 60.0), (2, 40.0)]

    def test_with_then_aggregate_again(self, engine):
        result = engine.run(
            "MATCH (a:AS)-[:ORIGINATE]->(p) "
            "WITH a, count(p) AS n RETURN sum(n) AS total"
        )
        assert result.value() == 5


class TestDistinct:
    def test_return_distinct(self, engine):
        result = engine.run(
            "MATCH (:AS)-[:ORIGINATE]->(p) RETURN DISTINCT p.prefix"
        )
        assert len(result) == 5
        result = engine.run("UNWIND [1,1,2,2] AS x RETURN DISTINCT x")
        assert result.column() == [1, 2]

    def test_distinct_on_multiple_columns(self, engine):
        result = engine.run(
            "UNWIND [[1,'a'],[1,'a'],[1,'b']] AS pair "
            "RETURN DISTINCT pair[0] AS x, pair[1] AS y"
        )
        assert len(result) == 2

    def test_distinct_on_lists(self, engine):
        result = engine.run(
            "UNWIND [[1,2],[1,2],[2,1]] AS xs RETURN DISTINCT xs"
        )
        assert len(result) == 2


class TestOrdering:
    def test_order_by_alias(self, engine):
        result = engine.run("UNWIND [3,1,2] AS x RETURN x AS v ORDER BY v")
        assert result.column("v") == [1, 2, 3]

    def test_order_desc(self, engine):
        result = engine.run("UNWIND [3,1,2] AS x RETURN x ORDER BY x DESC")
        assert result.column() == [3, 2, 1]

    def test_multi_key_mixed_direction(self, engine):
        result = engine.run(
            "UNWIND [[1,'b'],[1,'a'],[2,'c']] AS p "
            "RETURN p[0] AS x, p[1] AS y ORDER BY x DESC, y ASC"
        )
        assert result.to_rows() == [(2, "c"), (1, "a"), (1, "b")]

    def test_nulls_sort_last_ascending(self, engine):
        result = engine.run("UNWIND [2, null, 1] AS x RETURN x ORDER BY x")
        assert result.column() == [1, 2, None]

    def test_order_by_unprojected_expression(self, engine):
        result = engine.run(
            "MATCH (a:AS) RETURN a.asn AS asn ORDER BY a.country, a.asn"
        )
        assert result.column("asn") == [3, 1, 2]

    def test_skip_limit(self, engine):
        result = engine.run("UNWIND [1,2,3,4,5] AS x RETURN x ORDER BY x SKIP 1 LIMIT 2")
        assert result.column() == [2, 3]


class TestWith:
    def test_with_filters_scope(self, engine):
        result = engine.run(
            "MATCH (a:AS) WITH a.asn AS asn WHERE asn > 1 RETURN asn ORDER BY asn"
        )
        assert result.column() == [2, 3]

    def test_with_distinct(self, engine):
        result = engine.run(
            "MATCH (a:AS) WITH DISTINCT a.country AS c RETURN count(c)"
        )
        assert result.value() == 2

    def test_with_limit_then_expand(self, engine):
        result = engine.run(
            "MATCH (a:AS) WITH a ORDER BY a.asn LIMIT 1 "
            "MATCH (a)-[:ORIGINATE]->(p) RETURN count(p)"
        )
        assert result.value() == 3

    def test_unwind_collected(self, engine):
        result = engine.run(
            "MATCH (a:AS) WITH collect(a.asn) AS asns UNWIND asns AS x "
            "RETURN x ORDER BY x"
        )
        assert result.column() == [1, 2, 3]


class TestUnion:
    def test_union_dedups(self, engine):
        result = engine.run("RETURN 1 AS x UNION RETURN 1 AS x UNION RETURN 2 AS x")
        assert sorted(result.column("x")) == [1, 2]

    def test_union_all_keeps(self, engine):
        result = engine.run("RETURN 1 AS x UNION ALL RETURN 1 AS x")
        assert result.column("x") == [1, 1]
