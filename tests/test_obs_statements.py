"""The bounded statement registry: aggregation, eviction, percentiles.

The concurrency test hammers one registry from many threads; the
percentile test checks the histogram estimate against a sorted
reference, asserting the error stays within the containing bucket's
width (the documented bound).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.obs import StatementRegistry
from repro.obs.statements import SORT_KEYS, STATEMENT_BUCKETS


def _bucket_bounds(value: float) -> tuple[float, float]:
    """The histogram bucket (lower, upper) containing ``value``."""
    lower = 0.0
    for upper in STATEMENT_BUCKETS:
        if value <= upper:
            return lower, upper
        lower = upper
    return lower, float("inf")


class TestAggregation:
    def test_repeat_calls_fold_into_one_aggregate(self):
        registry = StatementRegistry()
        for _ in range(5):
            registry.record("abc", "MATCH (a) RETURN a", elapsed=0.01, rows=3)
        stats = registry.get("abc")
        assert stats.calls == 5
        assert stats.rows == 15
        assert registry.recorded_total == 5
        assert len(registry) == 1

    def test_errors_cache_hits_and_counters_accumulate(self):
        registry = StatementRegistry()
        registry.record(
            "abc", "Q", elapsed=0.01, rows=1,
            counters={"nodes_scanned": 10, "bind_attempt": 4},
        )
        registry.record("abc", "Q", elapsed=0.02, cached=True)
        registry.record("abc", "Q", elapsed=0.5, error="timeout")
        registry.record(
            "abc", "Q", elapsed=0.01, counters={"nodes_scanned": 5}
        )
        row = registry.get("abc").to_dict()
        assert row["calls"] == 4
        assert row["errors"] == {"timeout": 1}
        assert row["cache_hits"] == 1
        assert row["counters"]["nodes_scanned"] == 15
        assert row["counters"]["bind_attempt"] == 4

    def test_note_counter_joins_after_the_fact(self):
        registry = StatementRegistry()
        registry.record("abc", "Q", elapsed=0.01)
        registry.note_counter("abc", "bytes_serialized", 1024)
        registry.note_counter("abc", "bytes_serialized", 1024)
        assert registry.get("abc").counters["bytes_serialized"] == 2048
        # Unknown fingerprints (evicted or never seen) drop silently.
        registry.note_counter("nope", "bytes_serialized", 1)
        assert registry.get("nope") is None


class TestBoundedness:
    def test_capacity_is_enforced_with_lru_eviction(self):
        registry = StatementRegistry(capacity=4)
        for i in range(10):
            registry.record(f"fp{i}", f"Q{i}", elapsed=0.001)
        assert len(registry) == 4
        assert registry.evicted_total == 6
        # The most recently recorded fingerprints survive.
        assert set(registry.fingerprints()) == {"fp6", "fp7", "fp8", "fp9"}

    def test_recording_refreshes_recency(self):
        registry = StatementRegistry(capacity=2)
        registry.record("old", "Q", elapsed=0.001)
        registry.record("hot", "Q", elapsed=0.001)
        registry.record("old", "Q", elapsed=0.001)  # touch: now newest
        registry.record("new", "Q", elapsed=0.001)  # evicts "hot"
        assert set(registry.fingerprints()) == {"old", "new"}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            StatementRegistry(capacity=0)


class TestConcurrency:
    def test_many_threads_one_registry(self):
        """8 threads × 500 records against capacity 16: no lost updates
        on the totals, and the size bound holds throughout."""
        registry = StatementRegistry(capacity=16)
        threads = 8
        per_thread = 500
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for i in range(per_thread):
                    fingerprint = f"fp{rng.randrange(64)}"
                    registry.record(
                        fingerprint, f"QUERY {fingerprint}",
                        elapsed=rng.random() / 100, rows=i % 7,
                    )
                    assert len(registry) <= 16
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        assert registry.recorded_total == threads * per_thread
        snapshot = registry.snapshot()
        assert snapshot["statements_tracked"] <= 16
        calls_kept = sum(row["calls"] for row in snapshot["statements"])
        assert calls_kept <= threads * per_thread


class TestPercentiles:
    def test_percentiles_match_sorted_reference_within_bucket_width(self):
        registry = StatementRegistry()
        rng = random.Random(20240501)
        samples = [rng.uniform(0.0002, 0.2) for _ in range(2000)]
        for sample in samples:
            registry.record("abc", "Q", elapsed=sample)
        samples.sort()
        stats = registry.get("abc")
        for quantile in (50, 95, 99):
            reference = samples[
                min(len(samples) - 1, int(quantile / 100 * len(samples)))
            ]
            estimate = stats.percentile(quantile)
            lower, upper = _bucket_bounds(reference)
            assert abs(estimate - reference) <= (upper - lower), (
                f"p{quantile}: estimate {estimate} vs reference {reference}"
            )

    def test_percentiles_clamp_to_observed_range(self):
        registry = StatementRegistry()
        for _ in range(10):
            registry.record("abc", "Q", elapsed=0.003)
        stats = registry.get("abc")
        assert stats.percentile(50) == pytest.approx(0.003, abs=0.0025)
        assert stats.percentile(99) <= stats.latency_max
        assert stats.percentile(1) >= stats.latency_min

    def test_overflow_bucket_reports_observed_max(self):
        registry = StatementRegistry()
        registry.record("abc", "Q", elapsed=45.0)  # beyond the last bound
        assert registry.get("abc").percentile(99) == 45.0

    def test_no_calls_is_zero(self):
        from repro.obs.statements import StatementStats

        assert StatementStats("x", "Q").percentile(99) == 0.0


class TestSnapshot:
    def test_snapshot_sorts_and_truncates(self):
        registry = StatementRegistry()
        registry.record("slow", "SLOW", elapsed=1.0)
        registry.record("fast", "FAST", elapsed=0.001)
        registry.record("busy", "BUSY", elapsed=0.01)
        registry.record("busy", "BUSY", elapsed=0.01)
        by_time = registry.snapshot(top=2)
        assert [row["fingerprint"] for row in by_time["statements"]] == [
            "slow", "busy",
        ]
        by_calls = registry.snapshot(sort="calls")
        assert by_calls["statements"][0]["fingerprint"] == "busy"

    def test_unknown_sort_key_raises(self):
        registry = StatementRegistry()
        with pytest.raises(ValueError):
            registry.snapshot(sort="nope")
        assert "total_seconds" in SORT_KEYS

    def test_format_text_lists_hot_statements(self):
        registry = StatementRegistry()
        assert registry.format_text() == ""
        registry.record("abc", "MATCH (a:AS) RETURN a", elapsed=0.25, rows=12)
        text = registry.format_text()
        assert "MATCH (a:AS) RETURN a" in text
        assert "1 statement(s)" in text
