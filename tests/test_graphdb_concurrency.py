"""Concurrency semantics of the store's readers-writer lock.

Deterministic lock-behaviour tests (event-sequenced, no sleeps for
correctness) plus a mixed-workload stress test asserting readers never
observe a torn multi-step mutation and that ``store.version`` moves
monotonically.
"""

from __future__ import annotations

import threading

import pytest

from repro.graphdb import GraphStore, RWLock


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        first_in = threading.Event()
        release = threading.Event()
        observed = {}

        def hold_read():
            with lock.read():
                first_in.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=hold_read)
        thread.start()
        assert first_in.wait(timeout=5)
        # A second reader gets in while the first still holds the lock.
        with lock.read():
            observed["readers"] = lock.active_readers
        release.set()
        thread.join(timeout=5)
        assert observed["readers"] == 2

    def test_writer_excludes_readers(self):
        lock = RWLock()
        writing = threading.Event()
        release = threading.Event()
        reader_done = threading.Event()

        def hold_write():
            with lock.write():
                writing.set()
                release.wait(timeout=5)

        writer = threading.Thread(target=hold_write)
        writer.start()
        assert writing.wait(timeout=5)

        def try_read():
            with lock.read():
                reader_done.set()

        reader = threading.Thread(target=try_read)
        reader.start()
        # The reader must be blocked while the write lock is held.
        assert not reader_done.wait(timeout=0.2)
        release.set()
        assert reader_done.wait(timeout=5)
        writer.join(timeout=5)
        reader.join(timeout=5)

    def test_write_lock_is_reentrant(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                assert lock.write_locked
        assert not lock.write_locked

    def test_writer_may_read(self):
        lock = RWLock()
        with lock.write():
            with lock.read():
                pass
            assert lock.write_locked

    def test_read_lock_is_reentrant(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                assert lock.active_readers >= 1

    def test_upgrade_is_refused(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()


class TestStoreVersion:
    def test_every_mutation_bumps_version(self):
        store = GraphStore()
        v0 = store.version
        node_a = store.create_node({"A"}, {"k": 1})
        assert store.version == v0 + 1
        node_b = store.create_node({"A"}, {"k": 2})
        rel = store.create_relationship(node_a.id, "R", node_b.id)
        assert store.version == v0 + 3
        store.update_node(node_a.id, {"k": 9})
        assert store.version == v0 + 4
        store.delete_relationship(rel.id)
        store.delete_node(node_b.id)
        assert store.version == v0 + 6

    def test_noop_index_creation_does_not_bump(self):
        store = GraphStore()
        store.create_index("A", "k")
        bumped = store.version
        store.create_index("A", "k")  # already exists: no change
        assert store.version == bumped

    def test_reads_do_not_bump(self):
        store = GraphStore()
        store.create_node({"A"}, {"k": 1})
        version = store.version
        _ = store.node_count
        store.label_counts()
        list(store.iter_nodes())
        with store.read_lock():
            pass
        assert store.version == version


class TestMixedWorkloadStress:
    """Readers + a writer hammering one store through the public locks.

    The writer performs a two-node + one-edge "transaction" under an
    explicit ``write_lock()``; readers assert, under ``read_lock()``,
    that they only ever see whole transactions (nodes == 2 * edges) —
    i.e. no torn intermediate state — and that ``version`` never moves
    backwards.
    """

    TRANSACTIONS = 60
    READERS = 4

    def test_no_torn_reads_and_monotonic_version(self):
        store = GraphStore()
        failures: list[str] = []
        done = threading.Event()

        def writer():
            for i in range(self.TRANSACTIONS):
                with store.write_lock():
                    left = store.create_node({"Pair"}, {"txn": i, "side": "l"})
                    right = store.create_node({"Pair"}, {"txn": i, "side": "r"})
                    store.create_relationship(left.id, "BOUND", right.id)
            done.set()

        def reader():
            last_version = -1
            while not done.is_set():
                with store.read_lock():
                    version = store.version
                    pairs = store.label_counts().get("Pair", 0)
                    bound = store.relationship_type_counts().get("BOUND", 0)
                if version < last_version:
                    failures.append(
                        f"version went backwards: {last_version} -> {version}"
                    )
                    return
                last_version = version
                if pairs != 2 * bound:
                    failures.append(
                        f"torn read: {pairs} Pair nodes vs {bound} BOUND edges"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(self.READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures[0]
        assert store.label_counts()["Pair"] == 2 * self.TRANSACTIONS
        # 3 mutations per transaction: node + node + relationship.
        assert store.version == 3 * self.TRANSACTIONS

    def test_concurrent_queries_through_engine(self):
        """Many engine readers in parallel with live writes stay coherent."""
        from repro.cypher import CypherEngine

        store = GraphStore()
        store.create_index("AS", "asn")
        for asn in range(100):
            store.create_node({"AS"}, {"asn": asn})
        engine = CypherEngine(store)
        errors: list[BaseException] = []
        done = threading.Event()

        def writer():
            for asn in range(100, 140):
                with store.write_lock():
                    store.create_node({"AS"}, {"asn": asn})
            done.set()

        def reader():
            try:
                while not done.is_set():
                    with store.read_lock():
                        result = engine.run(
                            "MATCH (a:AS) RETURN count(a) AS n, min(a.asn) AS lo"
                        )
                    count, lo = result[0]["n"], result[0]["lo"]
                    assert 100 <= count <= 140 and lo == 0
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[0]
        assert store.label_counts()["AS"] == 140
