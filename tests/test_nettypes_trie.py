"""The radix trie backing the refinement pass's LPM lookups."""

import ipaddress

from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes import PrefixTrie, ip_in_prefix, prefix_contains


class TestBasics:
    def test_empty_trie(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert trie.longest_match_ip("10.0.0.1") is None

    def test_insert_and_exact_get(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "payload")
        assert trie.get("10.0.0.0/8") == "payload"
        assert "10.0.0.0/8" in trie
        assert trie.get("10.0.0.0/9") is None

    def test_insert_replaces(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        trie.insert("10.0.0.0/8", 2)
        assert len(trie) == 1
        assert trie.get("10.0.0.0/8") == 2

    def test_non_canonical_input_normalized(self):
        trie = PrefixTrie()
        trie.insert("2001:0DB8::/32", "x")
        assert trie.get("2001:db8::/32") == "x"

    def test_families_do_not_collide(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "v4-default")
        assert trie.longest_match_ip("2001:db8::1") is None


class TestLongestMatch:
    def test_prefers_more_specific(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "coarse")
        trie.insert("10.1.0.0/16", "fine")
        assert trie.longest_match_ip("10.1.2.3") == ("10.1.0.0/16", "fine")
        assert trie.longest_match_ip("10.9.9.9") == ("10.0.0.0/8", "coarse")

    def test_no_match_outside(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", None)
        assert trie.longest_match_ip("11.0.0.1") is None

    def test_match_prefix_includes_self(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.longest_match_prefix("10.0.0.0/8") == ("10.0.0.0/8", "a")

    def test_ipv6(self):
        trie = PrefixTrie()
        trie.insert("2001:db8::/32", "alloc")
        trie.insert("2001:db8:1::/48", "announce")
        assert trie.longest_match_ip("2001:db8:1::5")[0] == "2001:db8:1::/48"
        assert trie.longest_match_ip("2001:db8:2::5")[0] == "2001:db8::/32"


class TestCoveringPrefix:
    def test_excludes_self(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.covering_prefix("10.0.0.0/8") is None

    def test_finds_parent(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "alloc")
        trie.insert("10.1.0.0/16", "announce")
        assert trie.covering_prefix("10.1.0.0/16") == ("10.0.0.0/8", "alloc")

    def test_finds_closest_parent(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "l8")
        trie.insert("10.1.0.0/16", "l16")
        trie.insert("10.1.2.0/24", "l24")
        assert trie.covering_prefix("10.1.2.0/24") == ("10.1.0.0/16", "l16")

    def test_default_route_covers_everything_else(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "default")
        trie.insert("203.0.113.0/24", "x")
        assert trie.covering_prefix("203.0.113.0/24") == ("0.0.0.0/0", "default")


class TestIteration:
    def test_items_yields_all(self):
        trie = PrefixTrie()
        prefixes = {"10.0.0.0/8", "10.1.0.0/16", "2001:db8::/32"}
        for prefix in prefixes:
            trie.insert(prefix, prefix)
        assert {prefix for prefix, _ in trie.items()} == prefixes


_prefixes = st.builds(
    lambda value, length: str(ipaddress.ip_network((value, length), strict=False)),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=32),
)


@given(st.lists(_prefixes, min_size=1, max_size=40), st.integers(0, 2**32 - 1))
def test_property_lpm_matches_brute_force(prefixes, ip_int):
    """Trie LPM always agrees with a brute-force scan."""
    trie = PrefixTrie()
    for prefix in prefixes:
        trie.insert(prefix, prefix)
    ip = str(ipaddress.ip_address(ip_int))
    expected = None
    for prefix in set(prefixes):
        if ip_in_prefix(ip, prefix):
            if expected is None or int(prefix.split("/")[1]) > int(
                expected.split("/")[1]
            ):
                expected = prefix
    match = trie.longest_match_ip(ip)
    assert (match[0] if match else None) == expected


@given(st.lists(_prefixes, min_size=2, max_size=40))
def test_property_covering_prefix_is_strict_superset(prefixes):
    """covering_prefix returns a strict covering prefix or None."""
    trie = PrefixTrie()
    for prefix in prefixes:
        trie.insert(prefix, None)
    for prefix in set(prefixes):
        covering = trie.covering_prefix(prefix)
        if covering is not None:
            assert covering[0] != prefix
            assert prefix_contains(covering[0], prefix)
