"""The runtime lock-discipline harness (``REPRO_LOCK_DEBUG``).

Self-tests proving the harness actually catches what it promises:

- a seeded unlocked mutation — calling a ``_locked`` store method
  without the write lock — raises :class:`LockDisciplineError` under
  :class:`DebugRWLock` instead of silently corrupting state;
- a seeded lock-order inversion raises :class:`LockOrderError` on the
  *first* inverted acquisition, deterministically, without needing the
  two threads to actually collide;
- with the flag off, the factories hand out plain uninstrumented locks
  (the zero-overhead production path).

Plus a barrier-controlled regression test for the store-swap race fixed
alongside the analyzer: concurrent ``swap_store`` calls must serialize,
yielding strictly increasing generations and an exact swap count.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import (
    MONITOR,
    LockDisciplineError,
    LockOrderError,
    TrackedLock,
    lock_debug_enabled,
    new_lock,
    set_lock_debug,
)
from repro.graphdb import GraphStore
from repro.graphdb.rwlock import DebugRWLock, RWLock, new_rwlock
from repro.server.app import QueryService


@pytest.fixture
def debug_mode():
    """Enable lock debugging for one test, restoring state afterwards."""
    previous = lock_debug_enabled()
    set_lock_debug(True)
    MONITOR.clear()
    yield
    set_lock_debug(previous)
    MONITOR.clear()


class TestFactories:
    def test_disabled_factories_return_plain_locks(self):
        previous = lock_debug_enabled()
        set_lock_debug(False)
        try:
            lock = new_lock("test.plain")
            assert not isinstance(lock, TrackedLock)
            rwlock = new_rwlock("test.plain_rw")
            assert type(rwlock) is RWLock
        finally:
            set_lock_debug(previous)

    def test_enabled_factories_return_instrumented_locks(self, debug_mode):
        assert isinstance(new_lock("test.tracked"), TrackedLock)
        assert isinstance(new_rwlock("test.tracked_rw"), DebugRWLock)

    def test_plain_rwlock_checks_are_noops(self):
        lock = RWLock()
        # Nothing held, yet no error: the base class trusts its callers.
        lock.check_read_held()
        lock.check_write_held()


class TestSeededUnlockedMutation:
    """The harness catches a caller violating the _locked contract."""

    def test_locked_method_without_lock_is_caught(self, debug_mode):
        store = GraphStore()
        node = store.create_node(["AS"], {"asn": 65001})
        # _update_node_locked asserts its contract under the debug lock:
        # calling it without holding the write lock must raise, not
        # corrupt the property index.
        with pytest.raises(LockDisciplineError):
            store._update_node_locked(node.id, {"name": "x"})

    def test_same_call_under_the_write_lock_passes(self, debug_mode):
        store = GraphStore()
        node = store.create_node(["AS"], {"asn": 65001})
        with store.write_lock():
            store._update_node_locked(node.id, {"name": "x"})
        assert store.get_node(node.id).properties["name"] == "x"

    def test_read_contract_is_checked_too(self, debug_mode):
        lock = DebugRWLock(name="test.read_contract")
        with pytest.raises(LockDisciplineError):
            lock.check_read_held()
        with lock.read():
            lock.check_read_held()
        # A writer also satisfies the read contract (write is stronger).
        with lock.write():
            lock.check_read_held()


class TestSeededLockOrderCycle:
    """The harness flags an inversion before it can deadlock."""

    def test_opposite_orders_raise_deterministically(self, debug_mode):
        a = TrackedLock("cycle.a")
        b = TrackedLock("cycle.b")
        with a:
            with b:
                pass
        # The opposite nesting is refused even though no other thread is
        # holding anything right now — the graph remembers the order.
        with pytest.raises(LockOrderError):
            with b:
                with a:
                    pass
        assert MONITOR.info()["violations"] == 1

    def test_consistent_order_never_raises(self, debug_mode):
        a = TrackedLock("consistent.a")
        b = TrackedLock("consistent.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert MONITOR.info()["violations"] == 0

    def test_cycle_through_rwlock(self, debug_mode):
        rw = DebugRWLock(name="order.rw")
        mutex = TrackedLock("order.mutex")
        with rw.write():
            with mutex:
                pass
        with pytest.raises(LockOrderError):
            with mutex:
                with rw.read():
                    pass

    def test_self_deadlock_is_immediate(self, debug_mode):
        lock = TrackedLock("self.deadlock")
        with lock:
            with pytest.raises(LockDisciplineError):
                lock.acquire()

    def test_reentrant_rwlock_is_not_a_violation(self, debug_mode):
        rw = DebugRWLock(name="reentrant.rw")
        with rw.write():
            with rw.read():
                with rw.write():
                    pass
        assert MONITOR.info()["violations"] == 0


class TestMonitor:
    def test_edges_accumulate_across_threads(self, debug_mode):
        a = TrackedLock("edges.a")
        b = TrackedLock("edges.b")

        def nest():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=nest)
        thread.start()
        thread.join(timeout=5)
        assert "edges.b" in MONITOR.edges().get("edges.a", set())

    def test_clear_resets_graph_and_counters(self, debug_mode):
        a = TrackedLock("reset.a")
        b = TrackedLock("reset.b")
        with a:
            with b:
                pass
        MONITOR.clear()
        info = MONITOR.info()
        assert info["edges"] == 0
        assert info["acquisitions"] == 0
        # The old order is forgotten: the opposite nesting is legal now.
        with b:
            with a:
                pass


class TestSwapRaceRegression:
    """Concurrent hot swaps serialize (the race fixed in this change).

    Before ``_swap_lock``, two concurrent ``swap_store`` calls could
    read the same ``old.generation`` and both install generation N+1 —
    one swap invisible in ``/stats`` and two generations colliding.  A
    barrier lines all swappers up to maximize interleaving.
    """

    THREADS = 8

    def test_barrier_controlled_concurrent_swaps(self, debug_mode):
        service = QueryService(GraphStore(), tracing=False)
        barrier = threading.Barrier(self.THREADS)
        errors: list[BaseException] = []

        def swap(index: int) -> None:
            store = GraphStore()
            store.create_node(["AS"], {"asn": index})
            barrier.wait(timeout=10)
            try:
                service.swap_store(store, label=f"swap-{index}")
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=swap, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)

        assert errors == []
        # Every swap got its own generation: N swaps from generation 0
        # land exactly on generation N, and the counter agrees.
        assert service.generation == self.THREADS
        assert service.stats()["archive"]["swaps"] == self.THREADS

    def test_swaps_serialize_against_len_telemetry(self, debug_mode):
        # StatementRegistry.__len__ used to read its dict unlocked;
        # hammer it while another thread records, under the debug
        # harness, to prove the locked version stays contract-clean.
        from repro.obs.statements import StatementRegistry

        registry = StatementRegistry(capacity=32)
        stop = threading.Event()
        errors: list[BaseException] = []

        def record() -> None:
            try:
                index = 0
                while not stop.is_set():
                    registry.record(
                        f"fp-{index % 64}",
                        f"MATCH (n:AS) WHERE n.asn = {index % 64} RETURN n",
                        elapsed=0.001,
                        rows=1,
                    )
                    index += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        writer = threading.Thread(target=record)
        writer.start()
        try:
            for _ in range(2000):
                assert len(registry) <= 32
        finally:
            stop.set()
            writer.join(timeout=10)
        assert errors == []
