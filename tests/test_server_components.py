"""Unit tests for the serving building blocks.

The LRU cache, the version-keyed result cache, the metrics registry,
admission control, the query guard, and the engine's bounded parse
cache — each exercised in isolation (the HTTP round-trip lives in
``test_server.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.cypher import CypherEngine
from repro.cypher.errors import QueryTimeoutError, RowLimitError
from repro.cypher.guard import TICK_STRIDE, QueryGuard
from repro.cypher.lru import LRUCache
from repro.graphdb import GraphStore
from repro.server.admission import AdmissionController, ServerBusyError
from repro.server.cache import ResultCache, canonical_params
from repro.server.metrics import Metrics


class TestLRUCache:
    def test_bounded_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")     # "a" is now most recent
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_hit_rate_accounting(self):
        cache = LRUCache(maxsize=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        info = cache.info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["hit_rate"] == 0.5
        assert info["size"] == 1

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestResultCache:
    def test_version_in_key(self):
        cache = ResultCache(maxsize=8)
        cache.put("Q", {}, 1, {"rows": []})
        assert cache.get("Q", {}, 1) == {"rows": []}
        assert cache.get("Q", {}, 2) is None  # a write bumped the version

    def test_parameter_order_is_canonical(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})
        cache = ResultCache(maxsize=8)
        cache.put("Q", {"a": 1, "b": 2}, 1, "payload")
        assert cache.get("Q", {"b": 2, "a": 1}, 1) == "payload"

    def test_distinct_parameters_are_distinct_entries(self):
        cache = ResultCache(maxsize=8)
        cache.put("Q", {"asn": 1}, 1, "one")
        cache.put("Q", {"asn": 2}, 1, "two")
        assert cache.get("Q", {"asn": 1}, 1) == "one"
        assert cache.get("Q", {"asn": 2}, 1) == "two"


class TestMetrics:
    def test_counters_with_labels(self):
        metrics = Metrics()
        metrics.inc("requests_total", labels={"endpoint": "/query"})
        metrics.inc("requests_total", labels={"endpoint": "/query"})
        metrics.inc("requests_total", labels={"endpoint": "/healthz"})
        assert metrics.counter_value("requests_total", {"endpoint": "/query"}) == 2
        assert metrics.counter_total("requests_total") == 3

    def test_percentiles_over_reservoir(self):
        metrics = Metrics()
        for ms in range(1, 101):  # 1..100 ms
            metrics.observe("lat", ms / 1000)
        pct = metrics.percentiles("lat")
        assert pct["p50"] == pytest.approx(0.050, abs=0.002)
        assert pct["p95"] == pytest.approx(0.095, abs=0.002)
        assert pct["p99"] == pytest.approx(0.099, abs=0.002)

    def test_prometheus_rendering(self):
        metrics = Metrics()
        metrics.inc("queries_total", labels={"kind": "read"})
        metrics.observe("query_latency_seconds", 0.004)
        text = metrics.render(extra_gauges={"store_version": 7})
        assert '# TYPE repro_queries_total counter' in text
        assert 'repro_queries_total{kind="read"} 1' in text
        assert '# TYPE repro_query_latency_seconds histogram' in text
        assert 'repro_query_latency_seconds_bucket{le="0.005"} 1' in text
        assert 'repro_query_latency_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_query_latency_seconds_count 1' in text
        assert '# TYPE repro_store_version gauge' in text
        assert 'repro_store_version 7' in text

    def test_empty_percentiles_are_zero(self):
        assert Metrics().percentiles("nothing")["p50"] == 0.0


class TestAdmissionController:
    def test_slot_capacity(self):
        controller = AdmissionController(max_concurrent=2)
        with controller.slot():
            with controller.slot():
                assert controller.active == 2
                with pytest.raises(ServerBusyError):
                    with controller.slot():
                        pass
        assert controller.active == 0
        assert controller.rejected == 1
        assert controller.peak_active == 2
        assert controller.admitted == 2

    def test_guard_tightens_but_never_exceeds_defaults(self):
        controller = AdmissionController(
            max_concurrent=1, default_timeout=10.0, default_max_rows=100
        )
        assert controller.guard().timeout == 10.0
        assert controller.guard(timeout=2.0).timeout == 2.0
        assert controller.guard(timeout=60.0).timeout == 10.0  # clamped
        assert controller.guard(max_rows=5).max_rows == 5
        assert controller.guard(max_rows=10_000).max_rows == 100  # clamped

    def test_no_defaults_means_unbounded(self):
        controller = AdmissionController(
            max_concurrent=1, default_timeout=None, default_max_rows=None
        )
        guard = controller.guard()
        assert guard.timeout is None and guard.max_rows is None


class TestQueryGuard:
    def test_tick_raises_after_deadline(self):
        guard = QueryGuard(timeout=0.0001)
        time.sleep(0.01)
        with pytest.raises(QueryTimeoutError):
            for _ in range(TICK_STRIDE + 1):
                guard.tick()

    def test_check_rows(self):
        guard = QueryGuard(max_rows=10)
        guard.check_rows(10)  # at the limit: fine
        with pytest.raises(RowLimitError) as err:
            guard.check_rows(11)
        assert err.value.limit == 10 and err.value.produced == 11

    def test_unlimited_guard_never_raises(self):
        guard = QueryGuard()
        for _ in range(TICK_STRIDE * 2):
            guard.tick()
        guard.check_rows(10**9)
        guard.check_deadline()


class TestEngineParseCache:
    def _engine(self, size: int) -> CypherEngine:
        store = GraphStore()
        store.create_node({"N"}, {"i": 1})
        return CypherEngine(store, parse_cache_size=size)

    def test_cache_is_bounded(self):
        engine = self._engine(4)
        for i in range(10):
            engine.run(f"MATCH (n:N) RETURN n.i + {i}")
        info = engine.parse_cache_info()
        assert info["size"] <= 4
        assert info["misses"] >= 10

    def test_repeat_queries_hit(self):
        engine = self._engine(8)
        engine.run("MATCH (n:N) RETURN n.i")
        engine.run("MATCH (n:N) RETURN n.i")
        info = engine.parse_cache_info()
        assert info["hits"] >= 1
        assert info["hit_rate"] > 0

    def test_is_write_query_classification(self):
        engine = self._engine(8)
        assert not engine.is_write_query("MATCH (n) RETURN n")
        assert not engine.is_write_query("MATCH (n) RETURN n.i UNION MATCH (m) RETURN m.i")
        assert engine.is_write_query("CREATE (n:N {i: 2})")
        assert engine.is_write_query("MERGE (n:N {i: 2}) RETURN n")
        assert engine.is_write_query("MATCH (n:N) SET n.i = 3")
        assert engine.is_write_query("MATCH (n:N) DETACH DELETE n")
        assert engine.is_write_query("MATCH (n:N) REMOVE n.i")
