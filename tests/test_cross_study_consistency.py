"""Cross-checks between independent computation paths.

Each invariant here is computed two different ways (a study module vs a
direct query, or a query vs the ground-truth world) — they must agree,
which guards against bugs that a single path would absorb silently.
"""

import pytest

from repro.studies import (
    run_combined_study,
    run_dns_robustness_study,
    run_ripki_study,
    run_spof_study,
)


class TestRiPKIConsistency:
    def test_coverage_matches_direct_query(self, small_iyp):
        study = run_ripki_study(small_iyp)
        # Independent computation of the same number with one query.
        direct = small_iyp.run(
            """
            MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(:DomainName)
                  -[:PART_OF]-(:HostName)-[:RESOLVES_TO]-(:IP)
                  -[:PART_OF]-(pfx:Prefix)
            WITH DISTINCT pfx
            OPTIONAL MATCH (pfx)-[:CATEGORIZED]-(t:Tag)
            WHERE t.label STARTS WITH 'RPKI Valid'
               OR t.label STARTS WITH 'RPKI Invalid'
            WITH pfx, count(t) AS tags
            RETURN 100.0 * sum(CASE WHEN tags > 0 THEN 1 ELSE 0 END)
                   / count(pfx) AS pct, count(pfx) AS total
            """
        ).single()
        assert direct["total"] == study.total_prefixes
        assert direct["pct"] == pytest.approx(study.covered_pct, abs=0.01)

    def test_coverage_consistent_with_world(self, small_iyp, small_world):
        """The graph-derived coverage must match ground truth computed
        directly from the world (no graph involved)."""
        study = run_ripki_study(small_iyp)
        hosting_prefixes = set()
        for domain in small_world.domains.values():
            for ip in domain.ips:
                prefix = small_world.prefix_of_ip(ip)
                if prefix:
                    hosting_prefixes.add(prefix)
        covered = sum(
            1
            for prefix in hosting_prefixes
            if small_world.prefixes[prefix].rov_status != "NotFound"
        )
        world_pct = 100.0 * covered / len(hosting_prefixes)
        # CNAME-hosted domains resolve through extra edge hostnames, so
        # the graph sees a (slightly) different prefix multiset; the two
        # estimates must still be within a few points of each other.
        assert study.covered_pct == pytest.approx(world_pct, abs=5.0)


class TestDNSConsistency:
    def test_coverage_matches_world_tld_mix(self, small_iyp, small_world):
        study = run_dns_robustness_study(small_iyp)
        world_cno = sum(
            1
            for domain in small_world.domains.values()
            if domain.tld in ("com", "net", "org")
        )
        world_pct = 100.0 * world_cno / len(small_world.domains)
        assert study.coverage_pct == pytest.approx(world_pct, abs=0.5)

    def test_discarded_matches_world_glue_flags(self, small_iyp, small_world):
        study = run_dns_robustness_study(small_iyp)
        cno = [
            domain
            for domain in small_world.domains.values()
            if domain.tld in ("com", "net", "org")
        ]
        discarded = sum(1 for domain in cno if not domain.has_glue)
        world_pct = 100.0 * discarded / len(cno)
        assert study.discarded_pct == pytest.approx(world_pct, abs=0.5)

    def test_ns_group_max_bounded_by_biggest_provider(
        self, small_iyp, small_world
    ):
        study = run_dns_robustness_study(small_iyp)
        from collections import Counter

        provider_sizes = Counter(
            domain.ns_provider for domain in small_world.domains.values()
        )
        biggest = provider_sizes.most_common(1)[0][1]
        # A shared-NS group can never exceed the biggest provider's
        # customer base.
        assert study.all_by_ns.maximum <= biggest


class TestSPOFConsistency:
    def test_analyzed_domains_match_rankings(self, small_iyp, small_world):
        study = run_spof_study(small_iyp)
        ranked = set(small_world.tranco) | set(small_world.umbrella)
        assert study.domains_analyzed == len(ranked)

    def test_every_domain_has_direct_dependency(self, small_iyp):
        study = run_spof_study(small_iyp)
        assert study.domains_with["direct"] == study.domains_analyzed


class TestCombinedConsistency:
    def test_ns_prefixes_subset_of_all_prefixes(self, small_iyp):
        combined = run_combined_study(small_iyp)
        total_prefixes = small_iyp.run(
            "MATCH (p:Prefix) RETURN count(p)"
        ).value()
        assert 0 < combined.ns_prefixes_total <= total_prefixes

    def test_percentages_bounded(self, small_iyp):
        combined = run_combined_study(small_iyp)
        assert 0 <= combined.ns_prefixes_covered_pct <= 100
        assert 0 <= combined.domains_on_covered_ns_pct <= 100
