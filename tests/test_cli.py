"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "iyp.json.gz"
    code = main(
        ["build", "--scale", "small", "--seed", "7", "--output", str(path)]
    )
    assert code == 0
    return path


class TestBuild:
    def test_snapshot_written(self, snapshot_path, capsys):
        assert snapshot_path.exists()

    def test_build_subset(self, tmp_path, capsys):
        out = tmp_path / "subset.json.gz"
        code = main(
            [
                "build", "--scale", "small", "--seed", "7",
                "--datasets", "bgpkit.pfx2as,tranco.top1m",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Snapshot written" in captured


class TestQuery:
    def test_query_table_output(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS) RETURN count(a) AS ases",
                "--snapshot", str(snapshot_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "ases" in captured
        assert "250" in captured

    def test_write_query_reports_stats(self, snapshot_path, capsys):
        code = main(
            [
                "query",
                "CREATE (t:Tag {label:'cli-test'}) RETURN t.label",
                "--snapshot", str(snapshot_path),
            ]
        )
        assert code == 0
        assert "nodes +1" in capsys.readouterr().out

    def test_explain(self, snapshot_path, capsys):
        code = main(
            [
                "explain", "MATCH (a:AS {asn: 1}) RETURN a",
                "--snapshot", str(snapshot_path),
            ]
        )
        assert code == 0
        assert "anchor=:AS" in capsys.readouterr().out


class TestQueryBudgets:
    def test_row_limit_aborts(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS) RETURN a.asn",
                "--snapshot", str(snapshot_path),
                "--limit", "3",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "query aborted" in captured.err
        assert "3-row limit" in captured.err

    def test_within_row_limit_succeeds(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 2",
                "--snapshot", str(snapshot_path),
                "--limit", "5",
            ]
        )
        assert code == 0
        assert "a.asn" in capsys.readouterr().out

    def test_timeout_aborts(self, snapshot_path, capsys):
        code = main(
            [
                "query",
                "MATCH (a:AS)-[*1..4]-(b:AS) RETURN count(*)",
                "--snapshot", str(snapshot_path),
                "--timeout", "0.01",
            ]
        )
        assert code == 1
        assert "time budget" in capsys.readouterr().err

    def test_generous_timeout_succeeds(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS) RETURN count(a) AS n",
                "--snapshot", str(snapshot_path),
                "--timeout", "60",
            ]
        )
        assert code == 0
        assert "250" in capsys.readouterr().out


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--snapshot", "iyp.json.gz", "--port", "9000",
                "--max-concurrent", "4", "--timeout", "5",
                "--max-rows", "100", "--cache-size", "64",
            ]
        )
        assert args.port == 9000
        assert args.max_concurrent == 4
        assert args.timeout == 5.0
        assert args.max_rows == 100
        assert args.cache_size == 64
        assert args.func.__name__ == "cmd_serve"

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8734
        assert args.snapshot is None


class TestInspection:
    def test_info(self, snapshot_path, capsys):
        assert main(["info", "--snapshot", str(snapshot_path)]) == 0
        captured = capsys.readouterr().out
        assert "nodes:" in captured and ":AS" in captured

    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        captured = capsys.readouterr().out
        assert "46 datasets" in captured
        assert "bgpkit.pfx2as" in captured

    def test_ontology(self, capsys):
        assert main(["ontology"]) == 0
        captured = capsys.readouterr().out
        assert "24 entities" in captured
        assert ":ORIGINATE" in captured

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestProfileAndParams:
    def test_query_profile_prints_plan(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS) RETURN count(a) AS ases",
                "--snapshot", str(snapshot_path),
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "+Query" in out
        assert "+Match" in out and "rows=" in out and "time=" in out
        assert "ases" in out  # results still printed below the plan

    def test_query_param_json_and_string(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:AS {asn: $asn}) RETURN a.asn",
                "--snapshot", str(snapshot_path),
                "--param", "asn=1",
            ]
        )
        assert code == 0
        assert "a.asn" in capsys.readouterr().out

    def test_query_param_rejects_malformed(self, snapshot_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "RETURN 1",
                    "--snapshot", str(snapshot_path),
                    "--param", "no-equals-sign",
                ]
            )

    def test_build_verbose_prints_crawler_table(self, tmp_path, capsys):
        out = tmp_path / "verbose.json.gz"
        code = main(
            [
                "build", "--scale", "small", "--seed", "7",
                "--datasets", "bgpkit.pfx2as",
                "--output", str(out), "--verbose",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "crawler" in captured
        assert "bgpkit.pfx2as" in captured

    def test_serve_observability_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--slow-query-threshold", "0.25", "--no-trace"]
        )
        assert args.slow_query_threshold == 0.25
        assert args.no_trace is True
        defaults = build_parser().parse_args(["serve"])
        assert defaults.slow_query_threshold == 1.0
        assert defaults.no_trace is False


class TestLint:
    def test_paper_listings_lint_clean_strict(self, capsys):
        code = main(["lint", "--strict", "src/repro/studies/queries.py"])
        assert code == 0
        out = capsys.readouterr().out
        assert "linted 6 queries" in out

    def test_inline_error_fails(self, capsys):
        code = main(["lint", "MATCH (a:ASN) RETURN a"])
        assert code == 1
        out = capsys.readouterr().out
        assert "LNT001" in out and ":ASN" in out

    def test_warning_passes_default_fails_strict(self, capsys):
        query = "MATCH (a:AS), (p:Prefix) RETURN a, p"  # LNT005 warning
        assert main(["lint", query]) == 0
        assert main(["lint", "--strict", query]) == 1
        assert "LNT005" in capsys.readouterr().out

    def test_stdin_source(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("MATCH (a:AS) RETURN a"))
        assert main(["lint", "-"]) == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_markdown_extraction(self, tmp_path, capsys):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n\n```cypher\nMATCH (a:Prefx) RETURN a\n```\n"
        )
        assert main(["lint", str(doc)]) == 1
        out = capsys.readouterr().out
        assert "cypher block 1" in out and "LNT001" in out

    def test_snapshot_enables_index_checks(self, snapshot_path, capsys):
        # `af` is not an indexed property, so the lookup needs a scan.
        code = main(
            [
                "lint", "--strict", "MATCH (i:IP {af: 4}) RETURN i.ip",
                "--snapshot", str(snapshot_path),
            ]
        )
        assert code == 1
        assert "LNT008" in capsys.readouterr().out


class TestValidateGraph:
    def test_fresh_snapshot_is_clean(self, snapshot_path, capsys):
        code = main(["validate-graph", "--snapshot", str(snapshot_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "no schema violations" in out
        assert "checked" in out


class TestQueryExplain:
    def test_query_explain_prints_plan_and_warnings(self, snapshot_path, capsys):
        code = main(
            [
                "query", "MATCH (a:ASN) RETURN a",
                "--snapshot", str(snapshot_path),
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "anchor=" in out or "MATCH" in out
        assert "LNT001" in out

    def test_explain_command_prints_warnings(self, snapshot_path, capsys):
        code = main(
            [
                "explain", "MATCH (a:AS) RETURN b.asn",
                "--snapshot", str(snapshot_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "anchor=:AS" in out
        assert "LNT007" in out


class TestQualityCommand:
    @staticmethod
    def _archive(tmp_path, created_at=""):
        from repro.archive import SnapshotArchive
        from repro.graphdb import GraphStore

        store = GraphStore()
        store.create_node({"AS"}, {"asn": 64500})
        archive = SnapshotArchive(tmp_path / "archive")
        build = {
            "schema_ok": True,
            "crawler_errors": {},
            "crawler_runs": [
                {
                    "name": "example.crawler", "seconds": 0.1,
                    "nodes_created": 5, "nodes_merged": 5,
                    "relationships_created": 0, "relationships_merged": 0,
                    "error": None,
                }
            ],
        }
        archive.add(store, "b1", build=build, created_at=created_at)
        return archive

    def test_fresh_archive_reports_ok(self, tmp_path, capsys):
        archive = self._archive(tmp_path)
        code = main(["quality", "--dir", str(archive.root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "latest snapshot: b1" in out
        assert "example.crawler" in out

    def test_stale_archive_exits_nonzero(self, tmp_path, capsys):
        archive = self._archive(tmp_path, created_at="2020-01-01T00:00:00Z")
        code = main(["quality", "--dir", str(archive.root)])
        assert code == 1
        assert "STALE" in capsys.readouterr().out

    def test_json_output_is_parseable(self, tmp_path, capsys):
        import json

        archive = self._archive(tmp_path)
        code = main(["quality", "--dir", str(archive.root), "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["latest"] == "b1"
        assert report["crawlers"][0]["agreement"] == 0.5

    def test_empty_archive_exits_nonzero(self, tmp_path, capsys):
        code = main(["quality", "--dir", str(tmp_path / "nothing")])
        assert code == 1
        assert "empty" in capsys.readouterr().err


class TestTopCommand:
    def test_top_once_renders_statement_table(self, capsys):
        import threading

        from repro.graphdb import GraphStore
        from repro.server import QueryService, create_server

        store = GraphStore()
        store.create_node({"AS"}, {"asn": 64500})
        service = QueryService(store)
        service.execute("MATCH (a:AS) WHERE a.asn = 64500 RETURN a.asn")
        service.execute("MATCH (a:AS) WHERE a.asn = 64501 RETURN a.asn")
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(
                ["top", "--port", str(server.server_address[1]), "--once"]
            )
        finally:
            server.shutdown()
            server.server_close()
        assert code == 0
        out = capsys.readouterr().out
        assert "1 statement(s) tracked" in out
        assert "2 calls recorded" in out
        assert "MATCH (a:AS) WHERE (a.asn = ?)" in out

    def test_top_unreachable_server_fails_cleanly(self, capsys):
        code = main(["top", "--port", "1", "--once"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
