"""The simulated iterative resolver: the world's delegations must work."""

import pytest

from repro.simnet import WorldConfig, build_world
from repro.simnet.resolver import SimResolver, resolution_report
from repro.simnet.world import NameServerInfo


@pytest.fixture(scope="module")
def resolver(small_world):
    return SimResolver(small_world)


class TestHappyPath:
    def test_every_ranked_domain_resolves(self, small_world):
        outcomes = resolution_report(small_world)
        assert outcomes["ok"] == len(small_world.tranco), outcomes

    def test_answers_match_world(self, resolver, small_world):
        name = small_world.tranco[0]
        result = resolver.resolve(name)
        assert result.ok
        assert result.ips == small_world.domains[name].ips

    def test_walks_tld_then_zone(self, resolver, small_world):
        name = small_world.tranco[0]
        result = resolver.resolve(name)
        domain = small_world.domains[name]
        assert result.zones_visited[0] == domain.tld
        assert result.zones_visited[-1] == name

    def test_nameserver_hostnames_resolve_too(self, resolver, small_world):
        ns_name = next(iter(small_world.nameservers))
        result = resolver.resolve(ns_name)
        assert result.ok
        assert result.ips == small_world.nameservers[ns_name].ips

    def test_provider_chain_resolution(self, resolver, small_world):
        # A domain whose NS is under a provider zone exercises the
        # out-of-bailiwick path: the provider's NS name gets resolved.
        for name, domain in small_world.domains.items():
            if not domain.ns_provider.startswith("self:"):
                result = resolver.resolve(name)
                assert result.ok
                assert result.nameservers_used
                return
        pytest.skip("no provider-managed domain in this world")


class TestFailureInjection:
    def test_unknown_name_is_nxdomain(self, resolver):
        result = resolver.resolve("definitely-not-registered.com")
        assert result.failure == "nxdomain"

    def test_unknown_tld_is_nxdomain(self, resolver):
        result = resolver.resolve("foo.invalidtld")
        assert result.failure == "nxdomain"

    def test_cycle_detected(self):
        # Two provider domains outsourcing to each other: resolving one
        # NS requires the other, endlessly.
        world = build_world(WorldConfig.small(seed=31))
        keys = [
            key for key, provider in world.dns_providers.items()
            if provider.outsourced_to is not None
        ][:2]
        if len(keys) < 2:
            pytest.skip("not enough outsourcing providers")
        a, b = (world.dns_providers[k] for k in keys)
        # Rewire: a's control domain served by b's pool and vice versa,
        # and remove the glue knowledge for both pools so resolution
        # must recurse.
        a.outsourced_to, b.outsourced_to = keys[1], keys[0]
        for provider in (a, b):
            for ns_name in provider.ns_pool:
                info = world.nameservers[ns_name]
                world.nameservers[ns_name] = NameServerInfo(
                    name=info.name, ips=info.ips, asn=info.asn,
                    provider=info.provider,
                )
        resolver = SimResolver(world)
        # The essential property: resolution terminates with a clean
        # failure instead of recursing forever.  The inner cycle guard
        # surfaces as an unreachable nameserver set ('no-glue') or as a
        # direct cycle/depth report, depending on which side is asked.
        looped = resolver.resolve(a.domain)
        assert looped.failure in ("cycle", "depth", "no-glue") or looped.ok

    def test_missing_glue_fails_cleanly(self, small_world):
        world = build_world(WorldConfig.small(seed=32))
        resolver = SimResolver(world)
        # Strip the addresses of one domain's nameservers.
        victim = next(
            d for d in world.domains.values()
            if d.ns_provider.startswith("self:")
        )
        for ns_name in victim.nameservers:
            world.nameservers[ns_name].ips.clear()
        result = resolver.resolve(victim.name)
        assert result.failure == "no-glue"

    def test_depth_limit(self, small_world):
        resolver = SimResolver(small_world, max_depth=0)
        provider_managed = next(
            d for d in small_world.domains.values()
            if not d.ns_provider.startswith("self:")
        )
        result = resolver.resolve(provider_managed.name)
        # With zero recursion budget, out-of-bailiwick NS cannot be
        # chased; resolution either still works via glue-known pools or
        # fails with a clean reason.
        assert result.ok or result.failure in ("no-glue", "depth")
