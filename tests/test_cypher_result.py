"""QueryResult helpers."""

import pytest

from repro.cypher.result import QueryResult, WriteStats


@pytest.fixture()
def result():
    return QueryResult(
        columns=["asn", "name"],
        records=[{"asn": 1, "name": "a"}, {"asn": 2, "name": None}],
    )


class TestAccessors:
    def test_len_iter_getitem(self, result):
        assert len(result) == 2
        assert list(result)[0]["asn"] == 1
        assert result[1]["asn"] == 2

    def test_column_default_is_first(self, result):
        assert result.column() == [1, 2]

    def test_column_by_name(self, result):
        assert result.column("name") == ["a", None]

    def test_column_unknown_raises(self, result):
        with pytest.raises(KeyError):
            result.column("nope")

    def test_single_requires_one_row(self, result):
        with pytest.raises(ValueError):
            result.single()
        one = QueryResult(["x"], [{"x": 9}])
        assert one.single() == {"x": 9}

    def test_value_requires_one_cell(self):
        assert QueryResult(["x"], [{"x": 9}]).value() == 9
        with pytest.raises(ValueError):
            QueryResult(["x", "y"], [{"x": 1, "y": 2}]).value()

    def test_to_rows(self, result):
        assert result.to_rows() == [(1, "a"), (2, None)]


class TestTable:
    def test_to_table_renders(self, result):
        table = result.to_table()
        lines = table.splitlines()
        assert "asn" in lines[0] and "name" in lines[0]
        assert "null" in table  # None rendering

    def test_to_table_truncates(self):
        big = QueryResult(["x"], [{"x": i} for i in range(100)])
        table = big.to_table(max_rows=5)
        assert "95 more rows" in table

    def test_bool_rendering(self):
        result = QueryResult(["b"], [{"b": True}])
        assert "true" in result.to_table()


class TestWriteStats:
    def test_falsy_when_empty(self):
        assert not WriteStats()

    def test_truthy_with_any_mutation(self):
        assert WriteStats(nodes_created=1)
        assert WriteStats(properties_set=3)
