"""The registry (Table 8): inventory size and wiring."""

from repro.core import IYP
from repro.datasets import DATASETS, crawlers_for, dataset_names
from repro.datasets.registry import make_fetcher, organizations


class TestInventory:
    def test_46_datasets_as_in_paper(self):
        assert len(DATASETS) == 46

    def test_organization_count_near_paper(self):
        # Paper: "46 datasets from 23 organizations".
        assert 20 <= len(organizations()) <= 24

    def test_dataset_names_unique(self):
        names = dataset_names()
        assert len(names) == len(set(names))

    def test_urls_unique(self):
        urls = [spec.url for spec in DATASETS]
        assert len(urls) == len(set(urls))

    def test_every_spec_complete(self):
        for spec in DATASETS:
            assert spec.organization and spec.name and spec.description
            assert spec.frequency and spec.url
            assert callable(spec.generator) and callable(spec.crawler_factory)

    def test_paper_table1_examples_present(self):
        # The example rows of Table 1 must all exist.
        names = set(dataset_names())
        for expected in (
            "bgpkit.pfx2as", "caida.asrank", "cloudflare.dns_top_ases",
            "ihr.hegemony", "openintel.tranco1m", "pch.routing_snapshot",
            "peeringdb.ix", "stanford.asdb",
        ):
            assert expected in names

    def test_alice_lg_has_seven_looking_glasses(self):
        lg = [spec for spec in DATASETS if spec.organization == "Alice-LG"]
        assert len(lg) == 7


class TestWiring:
    def test_crawlers_for_all(self):
        iyp = IYP()

        class _NullFetcher:
            def fetch(self, url):
                raise NotImplementedError

        crawlers = crawlers_for(iyp, _NullFetcher())
        assert len(crawlers) == len(DATASETS)
        assert {crawler.name for crawler in crawlers} == set(dataset_names())

    def test_crawlers_for_subset(self):
        iyp = IYP()
        crawlers = crawlers_for(iyp, None, ["tranco.top1m", "bgpkit.pfx2as"])
        assert {crawler.name for crawler in crawlers} == {
            "tranco.top1m", "bgpkit.pfx2as",
        }

    def test_unknown_subset_name_raises(self):
        import pytest

        with pytest.raises(KeyError):
            crawlers_for(IYP(), None, ["nope.dataset"])

    def test_fetcher_serves_every_url(self, small_world):
        fetcher = make_fetcher(small_world)
        for spec in DATASETS:
            content = fetcher.fetch(spec.url)
            assert isinstance(content, str)

    def test_fetch_counts_tracked(self, small_world):
        fetcher = make_fetcher(small_world)
        url = DATASETS[0].url
        fetcher.fetch(url)
        fetcher.fetch(url)
        assert fetcher.fetch_counts[url] == 2

    def test_generated_content_deterministic(self, small_world):
        for spec in DATASETS[:10]:
            assert spec.generator(small_world) == spec.generator(small_world)
