"""The metrics registry under scrutiny: exact percentile math, histogram
bucket semantics, label escaping, and concurrent recording."""

import threading

from repro.server.metrics import (
    LATENCY_BUCKETS,
    Metrics,
    _format_labels,
    _labels_key,
)


class TestPercentiles:
    def test_known_set_1_to_100(self):
        metrics = Metrics()
        for ms in range(1, 101):
            metrics.observe("lat", ms / 1000)
        pct = metrics.percentiles("lat")
        assert pct["p50"] == 0.050
        assert pct["p95"] == 0.095
        assert pct["p99"] == 0.099

    def test_single_sample(self):
        metrics = Metrics()
        metrics.observe("lat", 0.25)
        pct = metrics.percentiles("lat", (50, 95, 99))
        assert pct == {"p50": 0.25, "p95": 0.25, "p99": 0.25}

    def test_order_independent(self):
        ordered, shuffled = Metrics(), Metrics()
        samples = [0.001 * i for i in range(1, 51)]
        for s in samples:
            ordered.observe("lat", s)
        for s in reversed(samples):
            shuffled.observe("lat", s)
        assert ordered.percentiles("lat") == shuffled.percentiles("lat")

    def test_custom_quantiles(self):
        metrics = Metrics()
        for ms in range(1, 11):
            metrics.observe("lat", ms / 1000)
        assert metrics.percentiles("lat", (100,))["p100"] == 0.010
        assert metrics.percentiles("lat", (10,))["p10"] == 0.001

    def test_empty_reservoir(self):
        assert Metrics().percentiles("nothing") == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


class TestHistogram:
    def test_buckets_include_long_tail_bounds(self):
        assert 10.0 in LATENCY_BUCKETS
        assert 30.0 in LATENCY_BUCKETS
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)

    def test_rendered_buckets_are_monotonic(self):
        metrics = Metrics()
        for seconds in (0.0005, 0.003, 0.02, 0.3, 4.0, 20.0, 100.0):
            metrics.observe("lat", seconds)
        counts = []
        for line in metrics.render().splitlines():
            if line.startswith("repro_lat_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        # One line per bound plus +Inf, cumulative and non-decreasing.
        assert len(counts) == len(LATENCY_BUCKETS) + 1
        assert counts == sorted(counts)
        assert counts[-1] == 7  # +Inf sees every sample

    def test_inf_bucket_catches_over_max(self):
        metrics = Metrics()
        metrics.observe("lat", max(LATENCY_BUCKETS) + 1)
        lines = [
            line for line in metrics.render().splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        *finite, inf = lines
        assert all(line.endswith(" 0") for line in finite)
        assert inf == 'repro_lat_bucket{le="+Inf"} 1'

    def test_sum_and_count(self):
        metrics = Metrics()
        metrics.observe("lat", 0.1)
        metrics.observe("lat", 0.3)
        text = metrics.render()
        assert "repro_lat_sum 0.400000" in text
        assert "repro_lat_count 2" in text


class TestLabelEscaping:
    def test_plain_labels(self):
        key = _labels_key({"kind": "read", "cache": "hit"})
        assert _format_labels(key) == '{cache="hit",kind="read"}'

    def test_quotes_backslashes_newlines_escaped(self):
        key = _labels_key({"q": 'say "hi"', "p": "a\\b", "n": "x\ny"})
        rendered = _format_labels(key)
        assert '\\"hi\\"' in rendered
        assert "a\\\\b" in rendered
        assert "x\\ny" in rendered
        assert "\n" not in rendered

    def test_escaped_labels_render_one_line_each(self):
        metrics = Metrics()
        metrics.inc("query_errors_total", labels={"detail": 'bad "MATCH\n('})
        lines = metrics.render().splitlines()
        (sample,) = [s for s in lines if s.startswith("repro_query_errors_total{")]
        assert sample.endswith(" 1")
        assert 'detail="bad \\"MATCH\\n("' in sample


class TestConcurrency:
    def test_concurrent_inc_and_observe(self):
        metrics = Metrics()
        threads_n, per_thread = 8, 500
        barrier = threading.Barrier(threads_n)

        def work(i: int) -> None:
            barrier.wait()
            for j in range(per_thread):
                metrics.inc("ops_total", labels={"worker": str(i % 2)})
                metrics.observe("lat", 0.001 * (j % 10 + 1))

        threads = [threading.Thread(target=work, args=(i,)) for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = threads_n * per_thread
        assert metrics.counter_total("ops_total") == total
        snapshot = metrics.snapshot()
        assert snapshot["latency_ms"]["lat"]["count"] == total
        text = metrics.render()
        assert f"repro_lat_count {total}" in text
