"""The ontology (Tables 6 and 7) and the schema validator."""

import pytest

from repro.graphdb import GraphStore
from repro.ontology import (
    ENTITIES,
    RELATIONSHIPS,
    SchemaValidator,
    entity,
    relationship,
)


class TestTables:
    def test_24_entities_as_in_table6(self):
        assert len(ENTITIES) == 24

    def test_24_relationships_as_in_table7(self):
        assert len(RELATIONSHIPS) == 24

    def test_paper_entities_present(self):
        for label in (
            "AS", "Prefix", "IP", "HostName", "DomainName", "Country",
            "Organization", "IXP", "Tag", "Ranking", "AtlasProbe",
            "AtlasMeasurement", "OpaqueID", "URL",
        ):
            assert label in ENTITIES

    def test_paper_relationships_present(self):
        for rel_type in (
            "ORIGINATE", "RESOLVES_TO", "MANAGED_BY", "PART_OF", "RANK",
            "CATEGORIZED", "COUNTRY", "ROUTE_ORIGIN_AUTHORIZATION",
            "PEERS_WITH", "DEPENDS_ON", "QUERIED_FROM", "MEMBER_OF",
            "SIBLING_OF", "TARGET", "EXTERNAL_ID", "ALIAS_OF",
        ):
            assert rel_type in RELATIONSHIPS

    def test_every_entity_has_key_and_description(self):
        for definition in ENTITIES.values():
            assert definition.key_properties
            assert definition.description

    def test_every_relationship_has_endpoints_and_description(self):
        for definition in RELATIONSHIPS.values():
            assert definition.endpoints
            assert definition.description

    def test_endpoint_labels_are_known_entities(self):
        for definition in RELATIONSHIPS.values():
            for start, end in definition.endpoints:
                assert start == "*" or start in ENTITIES
                assert end == "*" or end in ENTITIES

    def test_lookup_helpers(self):
        assert entity("AS").key_properties == ("asn",)
        assert relationship("ORIGINATE").endpoints == (("AS", "Prefix"),)
        with pytest.raises(KeyError):
            entity("Nope")


class TestValidator:
    def _valid_store(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        store.create_relationship(
            a.id, "ORIGINATE", p.id, {"reference_name": "bgpkit.pfx2as"}
        )
        return store

    def test_valid_graph_passes(self):
        report = SchemaValidator().validate(self._valid_store())
        assert report.ok
        assert report.nodes_checked == 2
        assert report.relationships_checked == 1

    def test_unknown_label_flagged(self):
        store = GraphStore()
        store.create_node({"Mystery"}, {"x": 1})
        report = SchemaValidator().validate(store)
        assert not report.ok
        assert "no ontology label" in str(report.violations[0])

    def test_missing_key_property_flagged(self):
        store = GraphStore()
        store.create_node({"AS"}, {"name": "no asn"})
        report = SchemaValidator().validate(store)
        assert any("missing identifying" in str(v) for v in report.violations)

    def test_unknown_relationship_flagged(self):
        store = self._valid_store()
        a = store.nodes_with_label("AS")[0]
        p = store.nodes_with_label("Prefix")[0]
        store.create_relationship(a.id, "FROBNICATES", p.id, {"reference_name": "x"})
        report = SchemaValidator().validate(store)
        assert any("unknown relationship" in str(v) for v in report.violations)

    def test_bad_endpoints_flagged(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "RESOLVES_TO", b.id, {"reference_name": "x"})
        report = SchemaValidator().validate(store)
        assert any("not permitted" in str(v) for v in report.violations)

    def test_reverse_orientation_accepted(self):
        # IYP stores links directed but queries them undirected.
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        store.create_relationship(
            p.id, "ORIGINATE", a.id, {"reference_name": "x"}
        )
        assert SchemaValidator().validate(store).ok

    def test_missing_provenance_flagged(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        store.create_relationship(a.id, "ORIGINATE", p.id)
        strict = SchemaValidator(require_reference=True).validate(store)
        assert any("provenance" in str(v) for v in strict.violations)
        lenient = SchemaValidator(require_reference=False).validate(store)
        assert lenient.ok

    def test_wildcard_endpoint(self):
        store = GraphStore()
        ixp = store.create_node({"IXP"}, {"name": "X-IX"})
        country = store.create_node({"Country"}, {"country_code": "NL"})
        store.create_relationship(
            ixp.id, "COUNTRY", country.id, {"reference_name": "x"}
        )
        assert SchemaValidator().validate(store).ok
