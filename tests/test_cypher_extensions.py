"""Cypher extensions: list predicates, reduce, path functions, explain."""

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    return CypherEngine(GraphStore())


def evaluate(engine, expression, params=None):
    return engine.run(f"RETURN {expression} AS x", params).value()


class TestListPredicates:
    def test_all(self, engine):
        assert evaluate(engine, "all(x IN [2, 4] WHERE x % 2 = 0)") is True
        assert evaluate(engine, "all(x IN [2, 3] WHERE x % 2 = 0)") is False
        assert evaluate(engine, "all(x IN [] WHERE x > 0)") is True

    def test_any(self, engine):
        assert evaluate(engine, "any(x IN [1, 2] WHERE x = 2)") is True
        assert evaluate(engine, "any(x IN [1, 3] WHERE x = 2)") is False
        assert evaluate(engine, "any(x IN [] WHERE x = 2)") is False

    def test_none(self, engine):
        assert evaluate(engine, "none(x IN [1, 3] WHERE x = 2)") is True
        assert evaluate(engine, "none(x IN [1, 2] WHERE x = 2)") is False

    def test_single(self, engine):
        assert evaluate(engine, "single(x IN [1, 2, 3] WHERE x = 2)") is True
        assert evaluate(engine, "single(x IN [2, 2] WHERE x = 2)") is False
        assert evaluate(engine, "single(x IN [1] WHERE x = 2)") is False

    def test_null_semantics(self, engine):
        assert evaluate(engine, "all(x IN [1, null] WHERE x > 0)") is None
        assert evaluate(engine, "all(x IN [0, null] WHERE x > 0)") is False
        assert evaluate(engine, "any(x IN [1, null] WHERE x > 0)") is True
        assert evaluate(engine, "any(x IN null WHERE x > 0)") is None

    def test_predicate_over_node_lists(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        engine = CypherEngine(store)
        result = engine.run(
            "MATCH (a:AS) WITH collect(a) AS ases "
            "RETURN all(x IN ases WHERE x.asn > 0) AS ok"
        )
        assert result.value() is True


class TestReduce:
    def test_sum_via_reduce(self, engine):
        assert evaluate(engine, "reduce(acc = 0, x IN [1, 2, 3] | acc + x)") == 6

    def test_string_fold(self, engine):
        assert (
            evaluate(engine, "reduce(s = '', w IN ['a', 'b'] | s + w)") == "ab"
        )

    def test_reduce_empty_list_returns_init(self, engine):
        assert evaluate(engine, "reduce(acc = 42, x IN [] | acc + x)") == 42

    def test_reduce_null_list(self, engine):
        assert evaluate(engine, "reduce(acc = 0, x IN null | acc + x)") is None


class TestPathFunctions:
    @pytest.fixture()
    def path_engine(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        return CypherEngine(store)

    def test_nodes_of_path(self, path_engine):
        result = path_engine.run(
            "MATCH q = (a:AS {asn:1})-[r:PEERS_WITH]-(b) "
            "RETURN size(nodes(q)) AS n, size(relationships(q)) AS m"
        ).single()
        assert result == {"n": 2, "m": 1}

    def test_node_asns_along_path(self, path_engine):
        result = path_engine.run(
            "MATCH q = (a:AS {asn:1})-[r:PEERS_WITH]-(b) "
            "RETURN [n IN nodes(q) | n.asn] AS asns"
        )
        assert result.value() == [1, 2]


class TestExplain:
    @pytest.fixture()
    def engine_with_data(self):
        store = GraphStore()
        store.create_index("AS", "asn")
        for asn in range(50):
            store.create_node({"AS"}, {"asn": asn})
        store.create_node({"Ranking"}, {"name": "Tranco top 1M"})
        return CypherEngine(store)

    def test_index_seek_chosen(self, engine_with_data):
        plan = engine_with_data.explain("MATCH (a:AS {asn: 7}) RETURN a")
        assert any("index seek" in step for step in plan)

    def test_smallest_label_anchors(self, engine_with_data):
        plan = engine_with_data.explain(
            "MATCH (r:Ranking)-[:RANK]-(a:AS) RETURN a"
        )
        # Ranking has 1 node, AS has 50: Ranking must anchor.
        assert any("anchor=:Ranking" in step for step in plan)

    def test_label_scan_without_index(self, engine_with_data):
        plan = engine_with_data.explain("MATCH (a:AS) RETURN a")
        assert any("label scan" in step for step in plan)

    def test_all_nodes_scan(self, engine_with_data):
        plan = engine_with_data.explain("MATCH (n) RETURN n")
        assert any("all-nodes scan" in step for step in plan)

    def test_non_match_clauses_listed(self, engine_with_data):
        plan = engine_with_data.explain("MATCH (a:AS) WITH a RETURN a")
        assert "WITH" in plan and "RETURN" in plan
