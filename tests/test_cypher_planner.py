"""Unit tests for the cost-based MATCH planner (repro.cypher.planner).

Covers conjunct decomposition, free-variable analysis with local
scoping, conjunct classification (prefilter / promoted seek / pushed
filter / residual), greedy join ordering, expression rendering, and the
EXPLAIN / PROFILE surfaces that expose the plan.
"""

import pytest

from repro.cypher import CypherEngine, ast
from repro.cypher.parser import parse
from repro.cypher.planner import (
    free_variables,
    plan_match,
    render_expression,
    split_conjuncts,
)
from repro.graphdb import GraphStore


def match_clause(query: str) -> ast.MatchClause:
    clause = parse(query).clauses[0]
    assert isinstance(clause, ast.MatchClause)
    return clause


def where_expr(condition: str) -> ast.Expression:
    clause = match_clause(f"MATCH (x)-[r]->(y) WHERE {condition} RETURN 1")
    assert clause.where is not None
    return clause.where


@pytest.fixture()
def store():
    return GraphStore()


class TestConjuncts:
    def test_split_flattens_nested_and(self):
        expr = where_expr("x.a = 1 AND (y.b = 2 AND x.c > 3)")
        parts = split_conjuncts(expr)
        assert [render_expression(p) for p in parts] == [
            "x.a = 1",
            "y.b = 2",
            "x.c > 3",
        ]

    def test_split_does_not_cross_or(self):
        expr = where_expr("x.a = 1 OR y.b = 2")
        assert split_conjuncts(expr) == [expr]

    def test_split_none_is_empty(self):
        assert split_conjuncts(None) == []


class TestFreeVariables:
    def test_simple_property_and_comparison(self):
        assert free_variables(where_expr("x.asn = y.asn")) == {"x", "y"}

    def test_literals_and_parameters_are_closed(self):
        assert free_variables(where_expr("x.name = $name")) == {"x"}

    def test_list_comprehension_scopes_iteration_variable(self):
        expr = where_expr("size([m IN x.members WHERE m > y.cut | m]) > 0")
        assert free_variables(expr) == {"x", "y"}

    def test_list_predicate_scopes_iteration_variable(self):
        expr = where_expr("any(m IN x.members WHERE m = y.asn)")
        assert free_variables(expr) == {"x", "y"}

    def test_reduce_scopes_accumulator_and_variable(self):
        expr = where_expr("reduce(acc = 0, m IN x.members | acc + m) > y.total")
        assert free_variables(expr) == {"x", "y"}

    def test_pattern_predicate_reports_all_pattern_variables(self):
        expr = where_expr("(x)-[:MEMBER_OF]->(g:IXP)")
        assert "x" in free_variables(expr)
        assert "g" in free_variables(expr)


class TestClassification:
    def test_prefilter_when_all_variables_already_bound(self, store):
        clause = match_clause("MATCH (y:B) WHERE x.a = 1 AND y.b = 2 RETURN y")
        plan = plan_match(clause.patterns, clause.where, store, frozenset({"x"}))
        assert [render_expression(p) for p in plan.prefilters] == ["x.a = 1"]
        assert plan.residual is None

    def test_equality_on_indexed_lookup_becomes_promoted_seek(self, store):
        clause = match_clause("MATCH (a:AS) WHERE a.asn = 2497 RETURN a")
        plan = plan_match(clause.patterns, clause.where, store, frozenset())
        assert "a" in plan.promoted
        ((key, value),) = plan.promoted["a"]
        assert key == "asn" and render_expression(value) == "2497"
        # The promoted pair is folded into the pattern's property map, so
        # the matcher sees it exactly like an inline {asn: 2497}.
        node = plan.patterns[0].nodes[0]
        assert ("asn", value) in node.properties
        assert plan.residual is None
        assert plan.pushed == {}

    def test_promotion_value_may_reference_bound_variables(self, store):
        clause = match_clause("MATCH (b:B) WHERE b.key = a.key RETURN b")
        plan = plan_match(clause.patterns, clause.where, store, frozenset({"a"}))
        assert "b" in plan.promoted

    def test_equality_between_two_introduced_variables_is_residual(self, store):
        clause = match_clause(
            "MATCH (a:AS)-[:ORIGINATE]->(p), (b:AS)-[:ORIGINATE]->(p) "
            "WHERE a.asn = b.asn RETURN p"
        )
        plan = plan_match(clause.patterns, clause.where, store, frozenset())
        assert render_expression(plan.residual) == "a.asn = b.asn"
        assert plan.promoted == {} and plan.pushed == {}

    def test_single_variable_nonequality_is_pushed(self, store):
        clause = match_clause(
            "MATCH (a:AS) WHERE a.name STARTS WITH 'AS' AND a.asn > 100 RETURN a"
        )
        plan = plan_match(clause.patterns, clause.where, store, frozenset())
        assert [render_expression(p) for p in plan.pushed["a"]] == [
            "a.name STARTS WITH 'AS'",
            "a.asn > 100",
        ]
        assert plan.pushed_count() == 2

    def test_path_variable_predicate_stays_residual(self, store):
        clause = match_clause(
            "MATCH p = (a:AS)-[:DEPENDS_ON*1..3]->(b) WHERE length(p) > 1 RETURN p"
        )
        plan = plan_match(clause.patterns, clause.where, store, frozenset())
        assert plan.residual is not None
        assert plan.pushed == {} and plan.promoted == {}

    def test_describe_predicates_lists_every_decision(self, store):
        clause = match_clause(
            "MATCH (a:AS), (b:AS) "
            "WHERE a.asn = 1 AND b.name CONTAINS 'x' AND a.asn <> b.asn RETURN a"
        )
        plan = plan_match(clause.patterns, clause.where, store, frozenset())
        lines = plan.describe_predicates()
        assert "pushed seek a.asn = 1" in lines
        assert "pushed filter [b]: b.name CONTAINS 'x'" in lines
        assert "residual: a.asn <> b.asn" in lines


class TestJoinOrdering:
    @pytest.fixture()
    def skewed(self):
        """1000 :Big nodes, 3 :Small nodes, 10 :Med nodes, and an index
        on (:Tiny, key) with a single node."""
        store = GraphStore()
        for i in range(1000):
            store.create_node({"Big"}, {"n": i})
        for i in range(3):
            store.create_node({"Small"}, {"n": i})
        for i in range(10):
            store.create_node({"Med"}, {"n": i})
        store.create_index("Tiny", "key")
        store.create_node({"Tiny"}, {"key": 1})
        return store

    def test_selective_pattern_runs_first(self, skewed):
        clause = match_clause("MATCH (b:Big)-[:R]->(x), (s:Small)-[:R]->(x) RETURN x")
        plan = plan_match(clause.patterns, clause.where, skewed, frozenset())
        assert plan.order == (1, 0)
        assert plan.reordered

    def test_connected_pattern_preferred_over_cheaper_disconnected(self, skewed):
        # After (s:Small) binds x, the :Big pattern shares x and must run
        # before the disconnected (m:Med) even though :Med is cheaper —
        # cartesian products go last.
        clause = match_clause(
            "MATCH (b:Big)-[:R]->(x), (m:Med), (s:Small)-[:R]->(x) RETURN x"
        )
        plan = plan_match(clause.patterns, clause.where, skewed, frozenset())
        assert plan.order == (2, 0, 1)

    def test_textual_order_kept_when_costs_tie(self, skewed):
        clause = match_clause("MATCH (a:Small), (b:Small) RETURN a, b")
        plan = plan_match(clause.patterns, clause.where, skewed, frozenset())
        assert plan.order == (0, 1)
        assert not plan.reordered

    def test_bound_variable_anchors_for_free(self, skewed):
        clause = match_clause("MATCH (b:Big), (x)-[:R]->(y) RETURN y")
        plan = plan_match(clause.patterns, clause.where, skewed, frozenset({"x"}))
        # The pattern touching already-bound x costs 0 and goes first.
        assert plan.order == (1, 0)

    def test_single_pattern_is_trivially_ordered(self, skewed):
        clause = match_clause("MATCH (b:Big) RETURN b")
        plan = plan_match(clause.patterns, clause.where, skewed, frozenset())
        assert plan.order == (0,)


class TestRenderExpression:
    @pytest.mark.parametrize(
        "source, rendered",
        [
            ("x.a = 1", "x.a = 1"),
            ("x.a <> y.b", "x.a <> y.b"),
            ("x.name STARTS WITH 'AS'", "x.name STARTS WITH 'AS'"),
            ("x.asn IN [1, 2]", "x.asn IN [1, 2]"),
            ("NOT x.flag", "NOT x.flag"),
            ("x.a IS NULL", "x.a IS NULL"),
            ("x.a IS NOT NULL", "x.a IS NOT NULL"),
            ("size(x.members) > 0", "size(x.members) > 0"),
            ("x.name = $name", "x.name = $name"),
        ],
    )
    def test_round_trips_common_shapes(self, source, rendered):
        assert render_expression(where_expr(source)) == rendered

    def test_none_renders_placeholder(self):
        assert render_expression(None) == "<none>"


class TestExplainSurface:
    @pytest.fixture()
    def engine(self):
        store = GraphStore()
        store.create_index("AS", "asn")
        for i in range(50):
            a = store.create_node({"AS"}, {"asn": i, "name": f"AS{i}"})
            p = store.create_node({"Prefix"}, {"prefix": f"10.{i}.0.0/16"})
            store.create_relationship(a.id, "ORIGINATE", p.id)
        return CypherEngine(store)

    def test_explain_shows_pushed_predicates(self, engine):
        lines = list(
            engine.explain(
                "MATCH (a:AS) WHERE a.asn = 7 AND a.name STARTS WITH 'AS' RETURN a"
            )
        )
        text = "\n".join(lines)
        assert "pushed seek a.asn = 7" in text
        assert "pushed filter [a]: a.name STARTS WITH 'AS'" in text
        # The promoted seek changes the access path itself.
        assert "index seek" in text

    def test_explain_shows_join_order(self, engine):
        lines = list(
            engine.explain(
                "MATCH (x:Prefix)<-[:ORIGINATE]-(a:AS), (b:AS {asn: 3}) "
                "WHERE b.asn = a.asn RETURN x"
            )
        )
        joined = [line for line in lines if "join=" in line]
        assert len(joined) == 2
        # The index-seek pattern (textual index 1) is planned first.
        assert "join=1/2 pattern=1" in joined[0]
        assert "join=2/2 pattern=0" in joined[1]

    def test_explain_shows_residual(self, engine):
        lines = list(
            engine.explain(
                "MATCH (a:AS)-[:ORIGINATE]->(p), (b:AS)-[:ORIGINATE]->(p) "
                "WHERE a.asn < b.asn RETURN p"
            )
        )
        assert any("residual: a.asn < b.asn" in line for line in lines)

    def test_explain_without_optimizer_has_no_plan_lines(self, engine):
        naive = CypherEngine(engine.store, optimize=False)
        lines = list(
            naive.explain("MATCH (a:AS) WHERE a.asn = 7 RETURN a")
        )
        text = "\n".join(lines)
        assert "pushed" not in text and "join=" not in text

    def test_profile_detail_reports_pushdown_and_join_order(self, engine):
        _, root = engine.profile(
            "MATCH (x:Prefix)<-[:ORIGINATE]-(a:AS), (b:AS {asn: 3}) "
            "WHERE b.asn = a.asn AND a.name STARTS WITH 'AS' RETURN x"
        )
        match = next(node for node in root.children if node.operator == "Match")
        assert "pushed=" in match.detail
        assert "join_order=" in match.detail

    def test_profile_detail_shows_index_seek_for_promoted_equality(self, engine):
        _, root = engine.profile("MATCH (a:AS) WHERE a.asn = 7 RETURN a")
        match = next(node for node in root.children if node.operator == "Match")
        assert "index seek" in match.detail
