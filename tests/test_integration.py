"""End-to-end integration: world -> crawl -> fuse -> refine -> query ->
snapshot -> reload -> same answers."""

from repro.cypher import CypherEngine
from repro.graphdb import load_snapshot, save_snapshot
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import queries, run_ripki_study


class TestFusion:
    def test_pfx2as_and_pch_fuse_on_same_nodes(self, small_iyp):
        # Two BGP datasets create parallel ORIGINATE links between the
        # same nodes rather than duplicate nodes.
        row = small_iyp.run(
            "MATCH (a:AS)-[r:ORIGINATE]->(p:Prefix) "
            "WITH a, p, collect(DISTINCT r.reference_name) AS datasets "
            "WHERE size(datasets) > 1 RETURN count(*) AS fused"
        ).single()
        assert row["fused"] > 0

    def test_multiple_name_datasets_fuse_on_as(self, small_iyp):
        row = small_iyp.run(
            "MATCH (a:AS)-[r:NAME]->(:Name) "
            "WITH a, collect(DISTINCT r.reference_name) AS datasets "
            "RETURN max(size(datasets)) AS most"
        ).single()
        # RIPE, CAIDA, BGP.Tools and Emile Aben all provide names.
        assert row["most"] >= 3

    def test_nameserver_nodes_are_both_host_and_ns(self, small_iyp):
        count = small_iyp.run(
            "MATCH (n:AuthoritativeNameServer:HostName) RETURN count(n)"
        ).value()
        assert count > 0


class TestSnapshotRoundtrip:
    def test_query_results_survive_reload(self, small_iyp, tmp_path):
        path = tmp_path / "iyp-snapshot.json.gz"
        save_snapshot(small_iyp.store, path)
        restored = load_snapshot(path)
        engine = CypherEngine(restored)
        for query in (queries.LISTING_1, queries.LISTING_2):
            original = sorted(map(str, small_iyp.run(query).column()))
            reloaded = sorted(map(str, engine.run(query).column()))
            assert original == reloaded

    def test_snapshot_preserves_scale(self, small_iyp, tmp_path):
        path = tmp_path / "iyp-snapshot.json.gz"
        save_snapshot(small_iyp.store, path)
        restored = load_snapshot(path)
        assert restored.node_count == small_iyp.store.node_count
        assert restored.relationship_count == small_iyp.store.relationship_count


class TestLocalInstanceWorkflow:
    def test_user_can_add_private_data_and_query_across(self, small_iyp):
        # Section 6.1 "Local instance": tag studied resources, then use
        # the tag in later queries.  Write via Cypher like a user would.
        small_iyp.run(
            "MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName) "
            "WHERE r.rank <= 10 "
            "MERGE (t:Tag {label:'My Study Set'}) "
            "MERGE (d)-[:CATEGORIZED {reference_name:'local'}]->(t)"
        )
        count = small_iyp.run(
            "MATCH (d:DomainName)-[:CATEGORIZED]->(:Tag {label:'My Study Set'}) "
            "RETURN count(DISTINCT d)"
        ).value()
        assert count == 10
        # Clean up so other session-scoped tests see the shared graph.
        small_iyp.run(
            "MATCH (t:Tag {label:'My Study Set'}) DETACH DELETE t"
        )


class TestDeterministicBuilds:
    def test_same_world_same_results(self):
        config = WorldConfig(seed=4242, scale=0.05, n_domains=400, n_ases=120)
        world_a = build_world(config)
        world_b = build_world(
            WorldConfig(seed=4242, scale=0.05, n_domains=400, n_ases=120)
        )
        iyp_a, _ = build_iyp(world_a)
        iyp_b, _ = build_iyp(world_b)
        assert iyp_a.store.node_count == iyp_b.store.node_count
        assert iyp_a.store.relationship_count == iyp_b.store.relationship_count
        table_a = run_ripki_study(iyp_a).table2_row()
        table_b = run_ripki_study(iyp_b).table2_row()
        assert table_a == table_b
