"""Graph statistics and the statistics-informed planner.

Covers :func:`repro.analytics.compute_statistics` itself (expansion
factors, histograms, components, JSON roundtrip), the shared
degree-counting path (``GraphStore.degree`` and every analytics
histogram must agree, self-loops included), and the cost-based
planner's consumption of real degree histograms: with statistics
attached to an engine, EXPLAIN carries cardinality estimates and the
join order can change relative to the legacy uniform-cost model.
"""

from __future__ import annotations

import pytest

from repro.analytics import (
    GraphStatistics,
    compute_statistics,
    degree_histogram,
    degree_histograms,
)
from repro.cypher import CypherEngine
from repro.cypher.values import hash_key
from repro.graphdb import GraphStore
from repro.graphdb.model import Direction

DIRECTIONS = {
    "out": Direction.OUT,
    "in": Direction.IN,
    "both": Direction.BOTH,
}


@pytest.fixture()
def loopy_store():
    """Two labels, two rel types, one self-loop, one isolated node."""
    store = GraphStore()
    a = store.create_node({"A"}, {"id": 0})
    b = store.create_node({"A"}, {"id": 1})
    c = store.create_node({"B"}, {"id": 2})
    store.create_node({"B"}, {"id": 3})  # isolated
    store.create_relationship(a.id, "R", b.id)
    store.create_relationship(a.id, "R", c.id)
    store.create_relationship(c.id, "S", a.id)
    store.create_relationship(b.id, "S", b.id)  # self-loop
    return store


class TestComputeStatistics:
    def test_cardinalities(self, loopy_store):
        stats = compute_statistics(loopy_store)
        assert stats.version == loopy_store.version
        assert stats.node_count == 4
        assert stats.relationship_count == 4
        assert stats.label_counts == {"A": 2, "B": 2}
        assert stats.relationship_type_counts == {"R": 2, "S": 2}

    def test_expansion_factors(self, loopy_store):
        stats = compute_statistics(loopy_store)
        # Label A: 2 nodes; R out-endpoints on A: 2 (both from a).
        assert stats.expansion("A", "R", "out") == pytest.approx(1.0)
        # Label A never starts an R... it never *receives* S? a receives
        # one S, b receives its own loop: 2 in-endpoints over 2 nodes.
        assert stats.expansion("A", "S", "in") == pytest.approx(1.0)
        # Known label, type it never touches: authoritative zero.
        assert stats.expansion("B", "S", "in") == 0.0
        # Unknown label: global mean degree for the slice.
        assert stats.expansion("Nope", "R", "out") == pytest.approx(2 / 4)

    def test_components(self, loopy_store):
        stats = compute_statistics(loopy_store)
        assert stats.component_count == 2
        assert stats.component_sizes == (3, 1)

    def test_components_can_be_skipped(self, loopy_store):
        stats = compute_statistics(loopy_store, components=False)
        assert stats.component_count == 0
        assert stats.component_sizes == ()
        assert stats.label_counts == {"A": 2, "B": 2}

    def test_roundtrip_through_json_payload(self, loopy_store):
        stats = compute_statistics(loopy_store)
        restored = GraphStatistics.from_dict(stats.to_dict())
        assert restored == stats


class TestSharedDegreePath:
    """Satellite regression: ``GraphStore.degree``/``degree_by_type``
    and the analytics histograms share one loop-counting helper, so
    their totals can never diverge — especially for ``Direction.BOTH``
    self-loops, which appear in both adjacency partitions but are one
    relationship."""

    def test_degree_counts_a_self_loop_once(self, loopy_store):
        # Node 1 touches two relationships: a->b (R, incoming) and the
        # b->b self-loop (S, both partitions, one relationship).
        assert loopy_store.degree(1, Direction.BOTH) == 2
        assert loopy_store.degree(1, Direction.OUT) == 1
        assert loopy_store.degree(1, Direction.IN) == 2
        assert loopy_store.degree_by_type(1, "S", Direction.BOTH) == 1

    @pytest.mark.parametrize("name", sorted(DIRECTIONS))
    def test_histogram_mass_equals_summed_degrees(self, loopy_store, name):
        direction = DIRECTIONS[name]
        histogram = degree_histogram(loopy_store, direction=direction)
        assert sum(histogram.values()) == loopy_store.node_count
        mass = sum(degree * count for degree, count in histogram.items())
        assert mass == sum(
            loopy_store.degree(node.id, direction)
            for node in loopy_store.iter_nodes()
        )

    @pytest.mark.parametrize("name", sorted(DIRECTIONS))
    def test_typed_histograms_match_degree_by_type(self, loopy_store, name):
        direction = DIRECTIONS[name]
        all_histograms = degree_histograms(loopy_store)
        for rel_type in ("R", "S"):
            histogram = all_histograms[(rel_type, name)]
            assert sum(histogram.values()) == loopy_store.node_count
            assert histogram == degree_histogram(
                loopy_store, rel_type=rel_type, direction=direction
            )
            mass = sum(
                degree * count for degree, count in histogram.items()
            )
            assert mass == sum(
                loopy_store.degree_by_type(node.id, rel_type, direction)
                for node in loopy_store.iter_nodes()
            )


# ---------------------------------------------------------------------------
# Statistics-informed planning
# ---------------------------------------------------------------------------


@pytest.fixture()
def skewed_store():
    """Two equally-populated labels whose *fan-outs* differ wildly.

    The legacy cost model only sees label populations (a tie), so it
    keeps textual pattern order.  Real degree histograms expose that
    every Hub node fans out 10 R1 edges while at most one Probe node
    has a single R2 edge — so a statistics-informed planner must run
    the Probe pattern first.
    """
    store = GraphStore()
    targets = [store.create_node({"T"}, {"t": i}) for i in range(5)]
    for i in range(20):
        hub = store.create_node({"Hub"}, {"h": i})
        for j in range(10):
            store.create_relationship(
                hub.id, "R1", targets[(i + j) % len(targets)].id
            )
    for i in range(20):
        probe = store.create_node({"Probe"}, {"p": i})
        if i == 0:
            store.create_relationship(probe.id, "R2", targets[0].id)
    return store


QUERY = (
    "MATCH (a:Hub)-[:R1]->(x), (b:Probe)-[:R2]->(x) "
    "RETURN a.h, b.p, x.t"
)


def result_multiset(result):
    return sorted(
        tuple((column, hash_key(record[column])) for column in result.columns)
        for record in result.records
    )


class TestStatisticsInformedPlanning:
    def test_explain_without_statistics_has_no_estimates(self, skewed_store):
        lines = "\n".join(CypherEngine(skewed_store).explain(QUERY))
        assert "est~" not in lines
        # Tied label populations: the legacy model keeps textual order.
        assert "join=1/2 pattern=0" in lines

    def test_real_histograms_change_the_join_order(self, skewed_store):
        engine = CypherEngine(skewed_store)
        engine.statistics = compute_statistics(skewed_store)
        lines = "\n".join(engine.explain(QUERY))
        # The Probe pattern (1 edge total) now runs first.
        assert "join=1/2 pattern=1" in lines
        assert "est~" in lines

    def test_estimates_reflect_measured_fanout(self, skewed_store):
        engine = CypherEngine(skewed_store)
        engine.statistics = compute_statistics(skewed_store)
        lines = list(engine.explain(QUERY))
        probe_line = next(line for line in lines if "pattern=1" in line)
        hub_line = next(line for line in lines if "pattern=0" in line)
        # 20 Probe nodes x 0.05 mean fan-out = 1 expected row.
        assert "est~1" in probe_line
        # Hub estimate is orders of magnitude larger (20 x 10 = 200
        # rows before the join narrows it).
        assert "est~" in hub_line

    def test_statistics_never_change_results(self, skewed_store):
        baseline = CypherEngine(skewed_store).run(QUERY)
        informed_engine = CypherEngine(skewed_store)
        informed_engine.statistics = compute_statistics(skewed_store)
        informed = informed_engine.run(QUERY)
        assert result_multiset(informed) == result_multiset(baseline)
        assert len(informed.records) > 0

    def test_single_pattern_queries_get_estimates_too(self, skewed_store):
        engine = CypherEngine(skewed_store)
        engine.statistics = compute_statistics(skewed_store)
        lines = list(engine.explain("MATCH (a:Hub)-[:R1]->(x) RETURN a"))
        match_line = next(line for line in lines if "est~" in line)
        # ~20 Hub anchors x 10 mean R1 fan-out.
        estimate = float(match_line.rsplit("est~", 1)[1])
        assert 150 <= estimate <= 250
