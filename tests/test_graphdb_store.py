"""The property-graph store: CRUD, indexes, constraints, adjacency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphdb import (
    ConstraintViolationError,
    Direction,
    GraphStore,
    NoSuchNodeError,
    NoSuchRelationshipError,
)


@pytest.fixture()
def store():
    return GraphStore()


class TestNodes:
    def test_create_and_get(self, store):
        node = store.create_node({"AS"}, {"asn": 2914})
        assert store.get_node(node.id).properties["asn"] == 2914
        assert store.node_count == 1

    def test_labels_indexed(self, store):
        store.create_node({"AS"}, {"asn": 1})
        store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        assert len(store.nodes_with_label("AS")) == 1
        assert store.label_counts() == {"AS": 1, "Prefix": 1}

    def test_multi_label_node(self, store):
        node = store.create_node({"HostName", "AuthoritativeNameServer"}, {"name": "x"})
        assert node in store.nodes_with_label("HostName")
        assert node in store.nodes_with_label("AuthoritativeNameServer")

    def test_none_properties_dropped(self, store):
        node = store.create_node({"AS"}, {"asn": 1, "name": None})
        assert "name" not in node.properties

    def test_unsupported_property_type_raises(self, store):
        with pytest.raises(TypeError):
            store.create_node({"AS"}, {"asn": object()})

    def test_get_missing_raises(self, store):
        with pytest.raises(NoSuchNodeError):
            store.get_node(99)

    def test_add_label(self, store):
        node = store.create_node({"HostName"}, {"name": "ns1.example.com"})
        store.add_label(node.id, "AuthoritativeNameServer")
        assert node.has_label("AuthoritativeNameServer")
        assert node in store.nodes_with_label("AuthoritativeNameServer")

    def test_update_node_merges_and_deletes(self, store):
        node = store.create_node({"AS"}, {"asn": 1, "name": "a"})
        store.update_node(node.id, {"name": None, "rank": 5})
        assert node.properties == {"asn": 1, "rank": 5}

    def test_delete_node_requires_detach(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        store.create_relationship(a.id, "ORIGINATE", b.id)
        with pytest.raises(ConstraintViolationError):
            store.delete_node(a.id)
        store.delete_node(a.id, detach=True)
        assert store.node_count == 1
        assert store.relationship_count == 0


class TestIndexes:
    def test_find_via_index(self, store):
        store.create_index("AS", "asn")
        store.create_node({"AS"}, {"asn": 2914})
        store.create_node({"AS"}, {"asn": 7018})
        found = store.find_nodes("AS", "asn", 2914)
        assert len(found) == 1 and found[0].properties["asn"] == 2914

    def test_find_without_index_scans(self, store):
        store.create_node({"AS"}, {"asn": 2914})
        assert len(store.find_nodes("AS", "asn", 2914)) == 1

    def test_index_created_after_data(self, store):
        store.create_node({"AS"}, {"asn": 2914})
        store.create_index("AS", "asn")
        assert store.has_index("AS", "asn")
        assert len(store.find_nodes("AS", "asn", 2914)) == 1

    def test_index_follows_updates(self, store):
        store.create_index("AS", "asn")
        node = store.create_node({"AS"}, {"asn": 1})
        store.update_node(node.id, {"asn": 2})
        assert store.find_nodes("AS", "asn", 1) == []
        assert len(store.find_nodes("AS", "asn", 2)) == 1

    def test_index_follows_delete(self, store):
        store.create_index("AS", "asn")
        node = store.create_node({"AS"}, {"asn": 1})
        store.delete_node(node.id)
        assert store.find_nodes("AS", "asn", 1) == []


class TestConstraints:
    def test_unique_constraint_blocks_duplicates(self, store):
        store.create_unique_constraint("AS", "asn")
        store.create_node({"AS"}, {"asn": 1})
        with pytest.raises(ConstraintViolationError):
            store.create_node({"AS"}, {"asn": 1})

    def test_constraint_on_existing_duplicates_fails(self, store):
        store.create_node({"AS"}, {"asn": 1})
        store.create_node({"AS"}, {"asn": 1})
        with pytest.raises(ConstraintViolationError):
            store.create_unique_constraint("AS", "asn")

    def test_update_respects_constraint(self, store):
        store.create_unique_constraint("AS", "asn")
        store.create_node({"AS"}, {"asn": 1})
        other = store.create_node({"AS"}, {"asn": 2})
        with pytest.raises(ConstraintViolationError):
            store.update_node(other.id, {"asn": 1})

    def test_self_update_allowed(self, store):
        store.create_unique_constraint("AS", "asn")
        node = store.create_node({"AS"}, {"asn": 1})
        store.update_node(node.id, {"asn": 1})  # no-op, no violation


class TestMergeNode:
    def test_merge_creates_then_reuses(self, store):
        first = store.merge_node("AS", "asn", 2914)
        second = store.merge_node("AS", "asn", 2914, {"name": "NTT"})
        assert first.id == second.id
        assert first.properties["name"] == "NTT"
        assert store.node_count == 1

    def test_merge_adds_extra_labels(self, store):
        node = store.merge_node("HostName", "name", "ns1.example.com")
        store.merge_node(
            "HostName", "name", "ns1.example.com",
            extra_labels=["AuthoritativeNameServer"],
        )
        assert node.has_label("AuthoritativeNameServer")


class TestRelationships:
    def test_create_and_adjacency(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        rel = store.create_relationship(a.id, "ORIGINATE", p.id, {"count": 3})
        assert rel.properties["count"] == 3
        assert store.relationships_of(a.id, Direction.OUT) == [rel]
        assert store.relationships_of(p.id, Direction.IN) == [rel]
        assert store.relationships_of(p.id, Direction.OUT) == []
        assert store.degree(a.id) == 1

    def test_endpoints_must_exist(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        with pytest.raises(NoSuchNodeError):
            store.create_relationship(a.id, "ORIGINATE", 999)

    def test_type_filter(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        store.create_relationship(a.id, "SIBLING_OF", b.id)
        assert len(store.relationships_of(a.id, rel_type="PEERS_WITH")) == 1

    def test_self_loop_counted_once_for_both(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        store.create_relationship(a.id, "PEERS_WITH", a.id)
        assert len(store.relationships_of(a.id, Direction.BOTH)) == 1

    def test_degree_counts_self_loop_once_under_both(self, store):
        """Regression: degree(BOTH) used to count a self-loop twice
        (once per direction list), disagreeing with relationships_of."""
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", a.id)
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        assert store.degree(a.id, Direction.BOTH) == len(
            store.relationships_of(a.id, Direction.BOTH)
        ) == 2
        # Per-direction views still see the loop on each side.
        assert store.degree(a.id, Direction.OUT) == 2
        assert store.degree(a.id, Direction.IN) == 1
        store.delete_relationship(store.relationships_between(a.id, a.id)[0].id)
        assert store.degree(a.id, Direction.BOTH) == 1

    def test_degree_by_type(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        store.create_relationship(b.id, "PEERS_WITH", a.id)
        store.create_relationship(a.id, "SIBLING_OF", b.id)
        store.create_relationship(a.id, "SIBLING_OF", a.id)
        assert store.degree_by_type(a.id, "PEERS_WITH") == 2
        assert store.degree_by_type(a.id, "PEERS_WITH", Direction.OUT) == 1
        assert store.degree_by_type(a.id, "SIBLING_OF") == 2  # loop once
        assert store.degree_by_type(a.id, "ABSENT") == 0

    def test_typed_adjacency_partition_matches_filter(self, store):
        """relationships_of(type=...) must equal the post-filtered
        untyped expansion, in every direction, self-loops included."""
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        store.create_relationship(b.id, "PEERS_WITH", a.id)
        store.create_relationship(a.id, "PEERS_WITH", a.id)
        store.create_relationship(a.id, "SIBLING_OF", b.id)
        for direction in (Direction.OUT, Direction.IN, Direction.BOTH):
            for rel_type in ("PEERS_WITH", "SIBLING_OF", "ABSENT"):
                typed = store.relationships_of(a.id, direction, rel_type)
                filtered = [
                    rel
                    for rel in store.relationships_of(a.id, direction)
                    if rel.type == rel_type
                ]
                assert sorted(r.id for r in typed) == sorted(
                    r.id for r in filtered
                )

    def test_parallel_edges_allowed(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        store.create_relationship(a.id, "ORIGINATE", p.id, {"reference_name": "x"})
        store.create_relationship(a.id, "ORIGINATE", p.id, {"reference_name": "y"})
        assert len(store.relationships_between(a.id, p.id, "ORIGINATE")) == 2

    def test_merge_relationship_by_match_props(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8"})
        first = store.merge_relationship(
            a.id, "ORIGINATE", p.id, match_props={"reference_name": "x"}
        )
        again = store.merge_relationship(
            a.id, "ORIGINATE", p.id, match_props={"reference_name": "x"}
        )
        other = store.merge_relationship(
            a.id, "ORIGINATE", p.id, match_props={"reference_name": "y"}
        )
        assert first.id == again.id
        assert other.id != first.id

    def test_delete_relationship(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        rel = store.create_relationship(a.id, "PEERS_WITH", b.id)
        store.delete_relationship(rel.id)
        assert store.relationship_count == 0
        assert store.relationships_of(a.id) == []
        with pytest.raises(NoSuchRelationshipError):
            store.get_relationship(rel.id)

    def test_scans_return_nodes_sorted_by_id(self, store):
        """Label scans and find_nodes are id-sorted so unordered query
        output is deterministic across runs and processes."""
        ids = [store.create_node({"AS"}, {"asn": i % 3}).id for i in range(40)]
        scanned = [node.id for node in store.nodes_with_label("AS")]
        assert scanned == sorted(ids)
        # Unindexed property lookup: sorted subset.
        found = [node.id for node in store.find_nodes("AS", "asn", 1)]
        assert found == sorted(found) and found
        # Indexed lookup too.
        store.create_index("AS", "asn")
        indexed = [node.id for node in store.find_nodes("AS", "asn", 1)]
        assert indexed == found

    def test_relationship_type_counts(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        assert store.relationship_type_counts() == {"PEERS_WITH": 1}


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=50
    )
)
def test_property_adjacency_is_consistent(edges):
    """For any random multigraph, out/in adjacency and the global
    relationship count agree."""
    store = GraphStore()
    nodes = [store.create_node({"N"}, {"i": i}) for i in range(10)]
    for start, end in edges:
        store.create_relationship(nodes[start].id, "E", nodes[end].id)
    assert store.relationship_count == len(edges)
    out_total = sum(
        len(store.relationships_of(n.id, Direction.OUT)) for n in nodes
    )
    in_total = sum(len(store.relationships_of(n.id, Direction.IN)) for n in nodes)
    assert out_total == len(edges)
    assert in_total == len(edges)
