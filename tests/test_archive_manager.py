"""The snapshot archive: manifest, retention, integrity, deltas."""

import json

import pytest

from repro.archive import SnapshotArchive
from repro.core import IYP, Reference
from repro.graphdb.snapshot import snapshot_dict


def _mini_iyp(extra_asn: int | None = None) -> IYP:
    iyp = IYP()
    ref = Reference("T", "test.bgp")
    a = iyp.get_node("AS", asn=1)
    p = iyp.get_node("Prefix", prefix="10.0.0.0/8")
    iyp.add_link(a, "ORIGINATE", p, reference=ref)
    if extra_asn is not None:
        b = iyp.get_node("AS", asn=extra_asn)
        iyp.add_link(b, "ORIGINATE", p, reference=ref)
    return iyp


@pytest.fixture
def archive(tmp_path):
    return SnapshotArchive(tmp_path / "archive")


class TestAddAndResolve:
    def test_add_and_load(self, archive):
        store = _mini_iyp().store
        entry = archive.add(store, "2024-05-01")
        assert entry.label == "2024-05-01"
        assert entry.nodes == store.node_count
        assert entry.relationships == store.relationship_count
        assert snapshot_dict(archive.load("2024-05-01")) == snapshot_dict(store)

    def test_manifest_persists_across_instances(self, archive):
        archive.add(_mini_iyp().store, "2024-05-01")
        reopened = SnapshotArchive(archive.root)
        assert reopened.labels() == ["2024-05-01"]
        assert reopened.resolve("latest").label == "2024-05-01"

    def test_duplicate_label_rejected(self, archive):
        archive.add(_mini_iyp().store, "2024-05-01")
        with pytest.raises(ValueError, match="2024-05-01"):
            archive.add(_mini_iyp().store, "2024-05-01")

    def test_resolve_latest_prefix_and_unknown(self, archive):
        archive.add(_mini_iyp().store, "2024-05-01")
        archive.add(_mini_iyp(extra_asn=2).store, "2024-05-08")
        assert archive.resolve("latest").label == "2024-05-08"
        assert archive.resolve("2024-05-01").label == "2024-05-01"
        assert archive.resolve("2024-05-08").label == "2024-05-08"
        with pytest.raises(KeyError, match="ambiguous"):
            archive.resolve("2024-05")
        with pytest.raises(KeyError, match="no archived snapshot"):
            archive.resolve("2030-01-01")

    def test_resolve_latest_on_empty_archive(self, archive):
        with pytest.raises(KeyError):
            archive.resolve("latest")

    def test_v1_format_entries_supported(self, archive):
        store = _mini_iyp().store
        entry = archive.add(store, "old-style", format=1)
        assert entry.format == 1
        assert entry.filename.endswith(".json.gz")
        assert snapshot_dict(archive.load("old-style")) == snapshot_dict(store)

    def test_build_metadata_recorded(self, archive):
        entry = archive.add(
            _mini_iyp().store, "b1", build={"total_seconds": 1.5, "crawlers": 3}
        )
        assert archive.resolve("b1").build == {"total_seconds": 1.5, "crawlers": 3}
        info = archive.info("b1")
        assert info["build"]["crawlers"] == 3
        assert info["bytes"] > 0
        assert entry.checksum == json.loads(
            (archive.root / "manifest.json").read_text()
        )["snapshots"][0]["checksum"]


class TestDedupAndDelta:
    def test_identical_snapshots_share_one_file(self, archive):
        e1 = archive.add(_mini_iyp().store, "a")
        e2 = archive.add(_mini_iyp().store, "b")
        assert e1.checksum == e2.checksum
        assert e1.filename == e2.filename
        assert len(list(archive.root.glob("*.iyp2"))) == 1
        assert e2.delta["identical"] is True

    def test_delta_between_consecutive_snapshots(self, archive):
        archive.add(_mini_iyp().store, "t0")
        e2 = archive.add(_mini_iyp(extra_asn=2).store, "t1")
        assert e2.delta["vs"] == "t0"
        assert e2.delta["identical"] is False
        assert e2.delta["nodes_added"] == {"AS": 1}

    def test_first_entry_has_no_delta(self, archive):
        entry = archive.add(_mini_iyp().store, "t0")
        assert entry.delta is None

    def test_diff_between_named_entries(self, archive):
        archive.add(_mini_iyp().store, "t0")
        archive.add(_mini_iyp(extra_asn=2).store, "t1")
        diff = archive.diff("t0", "t1")
        assert diff.nodes_added == [("AS", 2)]
        assert archive.diff("t0", "t0").unchanged


class TestVerify:
    def test_clean_archive_verifies(self, archive):
        archive.add(_mini_iyp().store, "t0")
        archive.add(_mini_iyp(extra_asn=2).store, "t1", format=1)
        report = archive.verify(deep=True)
        assert report.ok
        assert report.entries_checked == 2

    def test_missing_file_detected(self, archive):
        entry = archive.add(_mini_iyp().store, "t0")
        archive.path(entry).unlink()
        report = archive.verify()
        assert not report.ok
        assert "missing" in report.problems[0]

    def test_corrupted_file_detected(self, archive):
        entry = archive.add(_mini_iyp().store, "t0")
        path = archive.path(entry)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        report = archive.verify()
        assert not report.ok
        assert "checksum" in report.problems[0]

    def test_deep_verify_catches_count_drift(self, archive):
        entry = archive.add(_mini_iyp().store, "t0")
        # Tamper with the manifest counts but keep the file intact.
        manifest_path = archive.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["snapshots"][0]["nodes"] = 999
        manifest_path.write_text(json.dumps(manifest))
        report = SnapshotArchive(archive.root).verify(deep=True)
        assert not report.ok
        assert any("999" in problem for problem in report.problems)
        assert entry.nodes != 999


class TestPruneAndRetention:
    def test_prune_keeps_newest(self, archive):
        for i in range(4):
            archive.add(_mini_iyp(extra_asn=10 + i).store, f"t{i}")
        removed = archive.prune(keep=2)
        assert [entry.label for entry in removed] == ["t0", "t1"]
        assert archive.labels() == ["t2", "t3"]
        assert archive.verify(deep=True).ok

    def test_prune_spares_files_shared_by_dedup(self, archive):
        archive.add(_mini_iyp().store, "t0")
        archive.add(_mini_iyp().store, "t1")  # dedups onto t0's file
        archive.add(_mini_iyp(extra_asn=2).store, "t2")
        archive.prune(keep=2)
        assert archive.labels() == ["t1", "t2"]
        assert archive.verify(deep=True).ok

    def test_retention_policy_applies_on_add(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "archive", retention=2)
        for i in range(4):
            archive.add(_mini_iyp(extra_asn=10 + i).store, f"t{i}")
        assert archive.labels() == ["t2", "t3"]
        assert archive.verify(deep=True).ok
