"""SLO tracking: rolling-window compliance, burn rate, error budget.

Every test injects its own clock, so time marches exactly as stated.
"""

from __future__ import annotations

import pytest

from repro.obs import SLOTracker
from repro.obs.slo import BUDGET_BURNING_ERRORS


class Clock:
    def __init__(self, start: float = 1_000_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tracker(**kwargs) -> tuple[SLOTracker, Clock]:
    clock = Clock()
    defaults = dict(
        latency_threshold=0.1,
        latency_target=0.9,
        availability_target=0.9,
        window_seconds=100.0,
        bucket_seconds=10.0,
        now=clock,
    )
    defaults.update(kwargs)
    return SLOTracker(**defaults), clock


class TestCompliance:
    def test_no_traffic_is_fully_compliant(self):
        slo, _ = tracker()
        snapshot = slo.snapshot()
        assert snapshot["queries_in_window"] == 0
        for objective in (snapshot["latency"], snapshot["availability"]):
            assert objective["compliance"] == 1.0
            assert objective["burn_rate"] == 0.0
            assert objective["budget_remaining"] == 1.0

    def test_latency_compliance_counts_fast_successes(self):
        slo, _ = tracker()
        for _ in range(8):
            slo.observe(0.01)  # fast
        for _ in range(2):
            slo.observe(0.5)  # slow
        latency = slo.snapshot()["latency"]
        assert latency["compliance"] == pytest.approx(0.8)
        # 20% bad against a 10% budget: burning at 2x.
        assert latency["burn_rate"] == pytest.approx(2.0)
        assert latency["budget_remaining"] == 0.0

    def test_burn_rate_one_means_exactly_on_budget(self):
        slo, _ = tracker()
        for _ in range(9):
            slo.observe(0.01)
        slo.observe(0.5)
        latency = slo.snapshot()["latency"]
        assert latency["burn_rate"] == pytest.approx(1.0)
        assert latency["budget_remaining"] == pytest.approx(0.0)


class TestErrorTaxonomy:
    @pytest.mark.parametrize("code", sorted(BUDGET_BURNING_ERRORS))
    def test_operational_errors_burn_availability_budget(self, code):
        slo, _ = tracker()
        for _ in range(9):
            slo.observe(0.01)
        slo.observe(0.01, error=code)
        availability = slo.snapshot()["availability"]
        assert availability["compliance"] == pytest.approx(0.9)
        assert availability["burn_rate"] == pytest.approx(1.0)

    @pytest.mark.parametrize("code", ["syntax_error", "bad_request", "not_found"])
    def test_client_errors_do_not_burn_budget(self, code):
        slo, _ = tracker()
        for _ in range(5):
            slo.observe(0.01)
        for _ in range(5):
            slo.observe(0.01, error=code)
        availability = slo.snapshot()["availability"]
        assert availability["compliance"] == 1.0
        assert availability["burn_rate"] == 0.0

    def test_errors_also_count_against_latency(self):
        # A timed-out query was definitionally not fast.
        slo, _ = tracker()
        for _ in range(9):
            slo.observe(0.01)
        slo.observe(5.0, error="timeout")
        latency = slo.snapshot()["latency"]
        assert latency["compliance"] == pytest.approx(0.9)


class TestRollingWindow:
    def test_old_traffic_ages_out(self):
        slo, clock = tracker(window_seconds=100.0, bucket_seconds=10.0)
        for _ in range(10):
            slo.observe(5.0, error="timeout")  # terrible start
        assert slo.snapshot()["availability"]["compliance"] == 0.0
        clock.advance(200.0)  # the bad buckets fall out of the window
        slo.observe(0.01)
        snapshot = slo.snapshot()
        assert snapshot["queries_in_window"] == 1
        assert snapshot["availability"]["compliance"] == 1.0

    def test_memory_is_bounded_by_window(self):
        slo, clock = tracker(window_seconds=100.0, bucket_seconds=10.0)
        for _ in range(1000):
            slo.observe(0.01)
            clock.advance(7.0)
        assert len(slo._buckets) <= 100 / 10 + 1

    def test_clear_resets_the_window(self):
        slo, _ = tracker()
        slo.observe(0.5, error="timeout")
        slo.clear()
        assert slo.snapshot()["queries_in_window"] == 0


class TestGaugesAndValidation:
    def test_gauges_cover_both_objectives(self):
        slo, _ = tracker()
        slo.observe(0.01)
        gauges = slo.gauges()
        for name in (
            "slo_window_seconds",
            "slo_queries_in_window",
            "slo_latency_target",
            "slo_latency_compliance",
            "slo_latency_budget_remaining",
            "slo_latency_burn_rate",
            "slo_availability_target",
            "slo_availability_compliance",
            "slo_availability_budget_remaining",
            "slo_availability_burn_rate",
        ):
            assert name in gauges
        assert gauges["slo_queries_in_window"] == 1.0

    def test_targets_must_be_fractions(self):
        with pytest.raises(ValueError):
            SLOTracker(latency_target=1.0)
        with pytest.raises(ValueError):
            SLOTracker(availability_target=0.0)

    def test_window_must_cover_a_bucket(self):
        with pytest.raises(ValueError):
            SLOTracker(window_seconds=5.0, bucket_seconds=10.0)
