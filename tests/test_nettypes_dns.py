"""DNS name handling: normalization, suffixes, zone hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes import (
    InvalidNameError,
    is_valid_hostname,
    normalize_name,
    parent_zones,
    public_suffix,
    registered_domain,
    tld,
)
from repro.nettypes.dns import is_subdomain_of, second_level_label


class TestNormalize:
    def test_lowercase(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com"

    def test_trailing_dot_stripped(self):
        assert normalize_name("example.com.") == "example.com"

    def test_both_spellings_collide(self):
        assert normalize_name("Example.COM.") == normalize_name("example.com")

    def test_empty_raises(self):
        with pytest.raises(InvalidNameError):
            normalize_name("  ")


class TestValidity:
    @pytest.mark.parametrize(
        "name", ["example.com", "a.b.c.d", "xn--80ak6aa92e.com", "ns_1.example.org"]
    )
    def test_valid(self, name):
        assert is_valid_hostname(name)

    @pytest.mark.parametrize("name", ["-bad.com", "bad-.com", "a" * 64 + ".com"])
    def test_invalid(self, name):
        assert not is_valid_hostname(name)

    def test_too_long_overall(self):
        assert not is_valid_hostname(".".join(["abc"] * 80))


class TestSuffixes:
    def test_tld(self):
        assert tld("www.example.com") == "com"

    def test_single_label_suffix(self):
        assert public_suffix("example.com") == "com"

    def test_two_label_suffix(self):
        assert public_suffix("shop.example.co.uk") == "co.uk"

    def test_registered_domain_simple(self):
        assert registered_domain("www.example.com") == "example.com"

    def test_registered_domain_two_label_suffix(self):
        assert registered_domain("www.example.co.uk") == "example.co.uk"

    def test_registered_domain_of_suffix_is_none(self):
        assert registered_domain("com") is None
        assert registered_domain("co.uk") is None

    def test_registered_domain_of_apex_is_itself(self):
        assert registered_domain("example.com") == "example.com"

    def test_second_level_label(self):
        assert second_level_label("www.example.com") == "example"
        assert second_level_label("com") is None

    def test_unknown_tld_treated_as_suffix(self):
        assert public_suffix("foo.unknowntld") == "unknowntld"
        assert registered_domain("foo.unknowntld") == "foo.unknowntld"


class TestHierarchy:
    def test_parent_zones(self):
        assert parent_zones("a.b.example.com") == [
            "b.example.com",
            "example.com",
            "com",
        ]

    def test_parent_zones_of_tld(self):
        assert parent_zones("com") == []

    def test_is_subdomain_of(self):
        assert is_subdomain_of("www.example.com", "example.com")
        assert is_subdomain_of("www.example.com", "com")
        assert not is_subdomain_of("example.com", "example.com")
        assert not is_subdomain_of("badexample.com", "example.com")


_labels = st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8)


@given(st.lists(_labels, min_size=2, max_size=5))
def test_property_registered_domain_is_suffix_of_name(labels):
    name = ".".join(labels)
    registrable = registered_domain(name)
    if registrable is not None:
        assert name == registrable or name.endswith("." + registrable)
        # The registrable domain has exactly one label above its suffix.
        suffix = public_suffix(name)
        assert registrable.endswith(suffix)
        extra = registrable[: -(len(suffix) + 1)]
        assert "." not in extra


@given(st.lists(_labels, min_size=1, max_size=6))
def test_property_normalize_idempotent(labels):
    name = ".".join(labels)
    assert normalize_name(normalize_name(name)) == normalize_name(name)
