"""Parser tests: clause structure, patterns, expression precedence."""

import pytest

from repro.cypher import ast
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.parser import parse


class TestMatch:
    def test_simple_pattern(self):
        query = parse("MATCH (a:AS) RETURN a")
        match = query.clauses[0]
        assert isinstance(match, ast.MatchClause)
        node = match.patterns[0].nodes[0]
        assert node.variable == "a" and node.labels == ("AS",)

    def test_as_label_is_allowed(self):
        # ':AS' collides with the AS keyword; must parse as a label.
        query = parse("MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN x")
        assert query.clauses[0].patterns[0].nodes[0].labels == ("AS",)

    def test_relationship_directions(self):
        out = parse("MATCH (a)-[:X]->(b) RETURN a").clauses[0]
        assert out.patterns[0].relationships[0].direction == "out"
        inc = parse("MATCH (a)<-[:X]-(b) RETURN a").clauses[0]
        assert inc.patterns[0].relationships[0].direction == "in"
        both = parse("MATCH (a)-[:X]-(b) RETURN a").clauses[0]
        assert both.patterns[0].relationships[0].direction == "both"

    def test_bare_relationship(self):
        clause = parse("MATCH (a)--(b) RETURN a").clauses[0]
        assert clause.patterns[0].relationships[0].types == ()

    def test_alternative_types(self):
        clause = parse("MATCH (a)-[:X|Y]-(b) RETURN a").clauses[0]
        assert clause.patterns[0].relationships[0].types == ("X", "Y")

    def test_variable_length(self):
        clause = parse("MATCH (a)-[:X*1..3]-(b) RETURN a").clauses[0]
        rel = clause.patterns[0].relationships[0]
        assert rel.min_hops == 1 and rel.max_hops == 3

    def test_variable_length_unbounded(self):
        rel = parse("MATCH (a)-[:X*]-(b) RETURN a").clauses[0].patterns[0].relationships[0]
        assert rel.min_hops == 1 and rel.max_hops == -1

    def test_inline_properties(self):
        clause = parse("MATCH (t:Tag {label:'RPKI Valid'}) RETURN t").clauses[0]
        props = dict(clause.patterns[0].nodes[0].properties)
        assert isinstance(props["label"], ast.Literal)

    def test_relationship_properties(self):
        clause = parse(
            "MATCH (a)-[r:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(b) RETURN a"
        ).clauses[0]
        props = dict(clause.patterns[0].relationships[0].properties)
        assert props["reference_name"].value == "openintel.tranco1m"

    def test_multiple_patterns(self):
        clause = parse("MATCH (a:AS), (b:Prefix) RETURN a").clauses[0]
        assert len(clause.patterns) == 2

    def test_optional_match(self):
        clause = parse("OPTIONAL MATCH (a:AS) RETURN a").clauses[0]
        assert clause.optional

    def test_where_attached(self):
        clause = parse("MATCH (a:AS) WHERE a.asn = 1 RETURN a").clauses[0]
        assert isinstance(clause.where, ast.BinaryOp)

    def test_conflicting_direction_raises(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a)<-[:X]->(b) RETURN a")


class TestProjection:
    def test_implicit_aliases(self):
        query = parse("MATCH (a:AS) RETURN a.asn, count(*)")
        aliases = [item.alias for item in query.clauses[-1].items]
        assert aliases == ["a.asn", "count(*)"]

    def test_explicit_alias(self):
        query = parse("MATCH (a) RETURN a.asn AS asn")
        assert query.clauses[-1].items[0].alias == "asn"

    def test_distinct_flag(self):
        assert parse("MATCH (a) RETURN DISTINCT a").clauses[-1].distinct

    def test_order_skip_limit(self):
        clause = parse(
            "MATCH (a) RETURN a.x ORDER BY a.x DESC, a.y SKIP 2 LIMIT 5"
        ).clauses[-1]
        assert clause.order_by[0].descending and not clause.order_by[1].descending
        assert clause.skip.value == 2 and clause.limit.value == 5

    def test_with_where(self):
        clause = parse("MATCH (a) WITH a.x AS x WHERE x > 1 RETURN x").clauses[1]
        assert isinstance(clause, ast.WithClause)
        assert clause.where is not None

    def test_return_star(self):
        assert parse("MATCH (a) RETURN *").clauses[-1].star


class TestExpressions:
    def _expr(self, text):
        return parse(f"RETURN {text} AS x").clauses[0].items[0].expression

    def test_precedence_and_or(self):
        expr = self._expr("true OR false AND false")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_comparison_chain(self):
        expr = self._expr("1 + 2 * 3 = 7")
        assert expr.op == "eq"
        assert expr.left.op == "+"

    def test_starts_with(self):
        expr = self._expr("'abc' STARTS WITH 'a'")
        assert expr.op == "starts_with"

    def test_in_list(self):
        expr = self._expr("1 IN [1, 2, 3]")
        assert expr.op == "in"
        assert isinstance(expr.right, ast.ListLiteral)

    def test_is_null(self):
        expr = self._expr("x IS NULL")
        assert isinstance(expr, ast.IsNull) and not expr.negated

    def test_is_not_null(self):
        expr = self._expr("x IS NOT NULL")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case_searched(self):
        expr = self._expr("CASE WHEN x > 1 THEN 'a' ELSE 'b' END")
        assert isinstance(expr, ast.CaseExpression) and expr.operand is None

    def test_case_simple(self):
        expr = self._expr("CASE x WHEN 1 THEN 'a' END")
        assert expr.operand is not None and expr.default is None

    def test_function_distinct(self):
        expr = self._expr("count(DISTINCT x)")
        assert expr.distinct

    def test_count_star(self):
        expr = self._expr("count(*)")
        assert expr.star

    def test_list_comprehension(self):
        expr = self._expr("[y IN xs WHERE y > 1 | y * 2]")
        assert isinstance(expr, ast.ListComprehension)
        assert expr.predicate is not None and expr.projection is not None

    def test_index_and_slice(self):
        assert isinstance(self._expr("xs[0]"), ast.IndexAccess)
        sliced = self._expr("xs[1..3]")
        assert sliced.is_slice

    def test_map_literal(self):
        expr = self._expr("{a: 1, b: 'x'}")
        assert isinstance(expr, ast.MapLiteral)

    def test_parameter(self):
        expr = self._expr("$org_name")
        assert isinstance(expr, ast.Parameter) and expr.name == "org_name"


class TestWriteClauses:
    def test_create(self):
        clause = parse("CREATE (a:AS {asn: 1})-[:ORIGINATE]->(p:Prefix)").clauses[0]
        assert isinstance(clause, ast.CreateClause)

    def test_merge_with_on_create(self):
        clause = parse(
            "MERGE (a:AS {asn: 1}) ON CREATE SET a.name = 'x' ON MATCH SET a.seen = true"
        ).clauses[0]
        assert clause.on_create and clause.on_match

    def test_set_forms(self):
        clause = parse("MATCH (a) SET a.x = 1, a:Tag, a += {y: 2}").clauses[1]
        kinds = [item.kind for item in clause.items]
        assert kinds == ["property", "label", "merge_map"]

    def test_delete_detach(self):
        clause = parse("MATCH (a) DETACH DELETE a").clauses[1]
        assert clause.detach

    def test_remove(self):
        clause = parse("MATCH (a) REMOVE a.x").clauses[1]
        assert clause.items[0].key == "x"

    def test_unwind(self):
        clause = parse("UNWIND [1,2] AS x RETURN x").clauses[0]
        assert isinstance(clause, ast.UnwindClause) and clause.alias == "x"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "MATCH",
            "RETURN",
            "MATCH (a RETURN a",
            "MATCH (a) RETURN a LIMIT",
            "FROB (a)",
            "MATCH (a) RETURN a extra",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(CypherSyntaxError):
            parse(bad)

    def test_union_column_structures_parse(self):
        query = parse("RETURN 1 AS x UNION RETURN 2 AS x")
        assert len(query.union_parts) == 1


class TestErrorPositions:
    """Parse errors and AST nodes carry line/column source positions."""

    def test_error_points_at_offending_token(self):
        with pytest.raises(CypherSyntaxError) as err:
            parse("MATCH (a:AS RETURN a")
        assert err.value.line == 1
        assert err.value.column == 13  # the RETURN that should be ')'
        assert "line 1, column 13" in str(err.value)

    def test_error_position_on_later_line(self):
        with pytest.raises(CypherSyntaxError) as err:
            parse("MATCH (a:AS)\nWHERE a.asn = = 1\nRETURN a")
        assert err.value.line == 2
        assert err.value.column == 15

    def test_lexer_error_carries_position(self):
        with pytest.raises(CypherSyntaxError) as err:
            parse("MATCH (a:AS)\nWHERE a.name = 'unterminated")
        assert err.value.line == 2
        assert err.value.column == 16

    def test_node_pattern_spans(self):
        clause = parse("MATCH (a:AS {asn: 1}) RETURN a").clauses[0]
        node = clause.patterns[0].nodes[0]
        assert (node.span.line, node.span.column) == (1, 8)
        assert (node.label_spans[0].line, node.label_spans[0].column) == (1, 10)
        assert (
            node.property_spans[0].line,
            node.property_spans[0].column,
        ) == (1, 14)

    def test_relationship_type_spans(self):
        clause = parse("MATCH (a)-[:ORIGINATE|DEPENDS_ON]-(b) RETURN a").clauses[0]
        rel = clause.patterns[0].relationships[0]
        columns = [span.column for span in rel.type_spans]
        assert [span.line for span in rel.type_spans] == [1, 1]
        assert columns == [13, 23]

    def test_expression_spans(self):
        query = parse("MATCH (a:AS)\nRETURN a.asn")
        item = query.clauses[-1].items[0]
        access = item.expression
        assert (access.subject.span.line, access.subject.span.column) == (2, 8)
        assert (access.key_span.line, access.key_span.column) == (2, 10)

    def test_spans_do_not_affect_equality(self):
        # Spans are compare=False: the parse cache and tests comparing
        # AST fragments built by hand must not see them.
        left = parse("MATCH (a:AS) RETURN a")
        right = parse("MATCH  (a:AS)  RETURN  a".replace("  ", " "))
        assert left == right
