"""Structural invariants of the synthetic Internet."""

from repro.nettypes import ip_in_prefix, prefix_contains
from repro.simnet import WorldConfig, build_world
from repro.simnet.dns import zone_nameservers


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig.small(seed=123)
        first = build_world(config)
        second = build_world(WorldConfig.small(seed=123))
        assert list(first.ases) == list(second.ases)
        assert list(first.prefixes) == list(second.prefixes)
        assert first.tranco == second.tranco

    def test_different_seed_differs(self):
        first = build_world(WorldConfig.small(seed=1))
        second = build_world(WorldConfig.small(seed=2))
        assert first.tranco != second.tranco


class TestTopology(object):
    def test_counts_match_config(self, small_world):
        assert len(small_world.ases) == small_world.config.n_ases
        assert len(small_world.domains) == small_world.config.n_domains

    def test_tier1_clique(self, small_world):
        tier1 = [a for a in small_world.ases.values() if a.category == "Tier1"]
        assert len(tier1) == small_world.config.n_tier1
        for info in tier1:
            others = {a.asn for a in tier1 if a.asn != info.asn}
            assert others <= set(info.peers)

    def test_every_non_tier1_has_provider(self, small_world):
        for info in small_world.ases.values():
            if info.category != "Tier1":
                assert info.providers

    def test_provider_customer_symmetry(self, small_world):
        for info in small_world.ases.values():
            for provider in info.providers:
                assert info.asn in small_world.ases[provider].customers

    def test_ranks_are_a_permutation(self, small_world):
        ranks = sorted(info.rank for info in small_world.ases.values())
        assert ranks == list(range(1, len(small_world.ases) + 1))

    def test_rank_ordered_by_cone(self, small_world):
        by_rank = sorted(small_world.ases.values(), key=lambda a: a.rank)
        cones = [a.cone_size for a in by_rank]
        assert cones == sorted(cones, reverse=True)

    def test_orgs_reference_their_ases(self, small_world):
        for org in small_world.orgs.values():
            for asn in org.asns:
                assert small_world.ases[asn].org_name == org.name

    def test_some_sibling_orgs_exist(self, small_world):
        assert any(len(org.asns) > 1 for org in small_world.orgs.values())


class TestAddressing:
    def test_prefixes_inside_allocation(self, small_world):
        for info in small_world.prefixes.values():
            assert prefix_contains(info.allocated_block, info.prefix)

    def test_af_consistent(self, small_world):
        for info in small_world.prefixes.values():
            assert info.af == (6 if ":" in info.prefix else 4)

    def test_no_duplicate_prefixes(self, small_world):
        assert len(small_world.prefixes) == len(set(small_world.prefixes))

    def test_every_as_has_v4_prefix(self, small_world):
        owners = {p.origins[0] for p in small_world.prefixes.values() if p.af == 4}
        assert owners == set(small_world.ases)

    def test_trie_lookup_agrees(self, small_world):
        for info in list(small_world.prefixes.values())[:50]:
            base = info.prefix.split("/")[0]
            found = small_world.prefix_of_ip(base)
            assert found is not None
            assert ip_in_prefix(base, found)


class TestRPKI:
    def test_statuses_valid(self, small_world):
        allowed = {"Valid", "Invalid", "Invalid,more-specific", "NotFound"}
        for info in small_world.prefixes.values():
            assert info.rov_status in allowed

    def test_valid_iff_roa_matches(self, small_world):
        for info in small_world.prefixes.values():
            if info.rov_status == "Valid":
                roa = info.roas[0]
                assert roa.asn == info.origins[0]
                assert roa.max_length >= int(info.prefix.split("/")[1])
            elif info.rov_status == "Invalid,more-specific":
                roa = info.roas[0]
                assert roa.max_length < int(info.prefix.split("/")[1])
            elif info.rov_status == "Invalid":
                assert info.roas[0].asn != info.origins[0]
            else:
                assert not info.roas

    def test_moas_fraction_small(self, small_world):
        moas = sum(1 for p in small_world.prefixes.values() if len(p.origins) > 1)
        assert 0 < moas < len(small_world.prefixes) * 0.05


class TestDNS:
    def test_tranco_is_permutation_of_domains(self, small_world):
        assert sorted(small_world.tranco) == sorted(small_world.domains)

    def test_ranks_sequential(self, small_world):
        for rank, name in enumerate(small_world.tranco, start=1):
            assert small_world.domains[name].rank == rank

    def test_umbrella_subset_with_ranks(self, small_world):
        assert set(small_world.umbrella) <= set(small_world.tranco)
        for position, name in enumerate(small_world.umbrella, start=1):
            assert small_world.domains[name].umbrella_rank == position

    def test_domain_ips_inside_hosting_as(self, small_world):
        for domain in list(small_world.domains.values())[:200]:
            for ip in domain.ips:
                assert small_world.as_of_ip(ip) == domain.hosting_asn

    def test_nameservers_resolve(self, small_world):
        for domain in list(small_world.domains.values())[:200]:
            assert domain.nameservers
            for ns in domain.nameservers:
                info = small_world.nameservers[ns]
                assert info.ips

    def test_cdn_hosted_domains_on_cdn_as(self, small_world):
        for domain in small_world.domains.values():
            if domain.cdn_hosted:
                category = small_world.ases[domain.hosting_asn].category
                assert category == "Content Delivery Network"

    def test_zone_nameservers_covers_providers_and_tlds(self, small_world):
        zones = zone_nameservers(small_world)
        for provider in small_world.dns_providers.values():
            assert provider.domain in zones
        for tld in small_world.tlds:
            assert tld in zones

    def test_provider_outsourcing_is_acyclic(self, small_world):
        for key, provider in small_world.dns_providers.items():
            seen = {key}
            current = provider.outsourced_to
            while current is not None:
                assert current not in seen, "outsourcing cycle"
                seen.add(current)
                current = small_world.dns_providers[current].outsourced_to

    def test_cctld_operator_in_country(self, small_world):
        # ccTLD registries must be operated from their own economy
        # whenever any AS exists there (the Figure 5 hierarchical shape).
        from repro.simnet.dns import _CC_OPERATOR_COUNTRY

        countries_with_ases = {a.country for a in small_world.ases.values()}
        for tld, country in _CC_OPERATOR_COUNTRY.items():
            if country in countries_with_ases:
                assert small_world.tlds[tld].country == country


class TestPopulation:
    def test_population_positive(self, small_world):
        assert all(v > 0 for v in small_world.country_population.values())

    def test_as_population_shares_bounded(self, small_world):
        by_country = {}
        for (country, _asn), share in small_world.as_population.items():
            assert 0 < share <= 100
            by_country[country] = by_country.get(country, 0) + share
        for total in by_country.values():
            assert total <= 101  # rounding slack


class TestAtlas:
    def test_probe_ips_in_probe_as(self, small_world):
        for probe in small_world.atlas_probes.values():
            assert small_world.as_of_ip(probe.ip) == probe.asn

    def test_measurement_probes_exist(self, small_world):
        for measurement in small_world.atlas_measurements.values():
            for probe_id in measurement.probe_ids:
                assert probe_id in small_world.atlas_probes
