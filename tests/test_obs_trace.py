"""The span tracer: nesting, propagation, ring bounds, null cost."""

import threading

import pytest

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.trace import MAX_SPANS_PER_TRACE, new_trace_id


class TestSpanBasics:
    def test_root_span_starts_a_trace(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            assert root.parent_id is None
            assert tracer.current_trace_id() == root.trace_id
        assert tracer.current_trace_id() is None
        spans = tracer.get_trace(root.trace_id)
        assert [span.name for span in spans] == ["request"]

    def test_children_nest_implicitly(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with tracer.span("parse") as parse:
                assert parse.parent_id == root.span_id
                assert parse.trace_id == root.trace_id
                with tracer.span("execute") as execute:
                    assert execute.parent_id == parse.span_id
        spans = tracer.get_trace(root.trace_id)
        # Completion order: innermost closes first.
        assert [span.name for span in spans] == ["execute", "parse", "request"]

    def test_forced_trace_id(self):
        tracer = Tracer()
        forced = new_trace_id()
        with tracer.trace("request", trace_id=forced) as root:
            assert root.trace_id == forced
        assert tracer.get_trace(forced) is not None

    def test_attributes_and_duration(self):
        tracer = Tracer()
        with tracer.trace("request", profile=True) as root:
            pass
        assert root.attributes == {"profile": True}
        assert root.duration >= 0
        assert root.to_dict()["duration_ms"] >= 0

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.trace("request") as root:
                raise ValueError("boom")
        (span,) = tracer.get_trace(root.trace_id)
        assert span.status == "error"
        assert "ValueError" in span.attributes["error"]


class TestTraceTree:
    def test_tree_nests_by_parent(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with tracer.span("admission"):
                pass
            with tracer.span("execute"):
                with tracer.span("scan"):
                    pass
        tree = tracer.trace_tree(root.trace_id)
        assert tree["name"] == "request"
        names = [child["name"] for child in tree["children"]]
        assert names == ["admission", "execute"]
        assert tree["children"][1]["children"][0]["name"] == "scan"

    def test_unknown_trace_is_none(self):
        assert Tracer().trace_tree("deadbeef") is None

    def test_spans_named(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            with tracer.span("parse"):
                pass
        assert [s.name for s in tracer.spans_named(root.trace_id, "parse")] == ["parse"]


class TestBounds:
    def test_trace_ring_evicts_oldest(self):
        tracer = Tracer(max_traces=3)
        ids = []
        for _ in range(5):
            with tracer.trace("request") as root:
                ids.append(root.trace_id)
        assert tracer.trace_ids() == ids[-3:]
        assert tracer.get_trace(ids[0]) is None
        assert tracer.info()["traces_buffered"] == 3

    def test_span_cap_per_trace(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            for _ in range(MAX_SPANS_PER_TRACE + 10):
                with tracer.span("tick"):
                    pass
        assert len(tracer.get_trace(root.trace_id)) == MAX_SPANS_PER_TRACE


class TestDisabled:
    def test_null_tracer_yields_none(self):
        with NULL_TRACER.trace("request") as root:
            assert root is None
        with NULL_TRACER.span("parse") as span:
            assert span is None
        assert NULL_TRACER.trace_ids() == []

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("request"):
            with tracer.span("child"):
                pass
        assert tracer.info()["traces_buffered"] == 0


class TestThreading:
    def test_threads_get_independent_traces(self):
        tracer = Tracer()
        ids: dict[str, str] = {}
        barrier = threading.Barrier(4)

        def work(tag: str) -> None:
            barrier.wait()
            with tracer.trace("request") as root:
                with tracer.span("inner"):
                    pass
                ids[tag] = root.trace_id

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(ids.values())) == 4
        for trace_id in ids.values():
            assert [s.name for s in tracer.get_trace(trace_id)] == [
                "inner", "request",
            ]


class TestSpanDict:
    def test_span_to_dict_shape(self):
        span = Span("t" * 16, "s" * 16, None, "request", {"k": 1})
        data = span.to_dict()
        assert data["trace_id"] == "t" * 16
        assert data["parent_id"] is None
        assert data["attributes"] == {"k": 1}
        assert data["status"] == "ok"
