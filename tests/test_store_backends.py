"""Backend conformance: dict vs columnar against one store contract.

Two layers of assurance that the backends are interchangeable:

1. A backend-parametrized conformance suite exercising the whole
   :class:`repro.graphdb.interface.GraphReadStore` surface (counts,
   lookups, typed adjacency with self-loops and parallel edges, index
   seeks with Python's cross-type numeric key equality, bulk accessors,
   loader validation).
2. An optimizer-equivalence-style replay: the paper listings, the
   EXPERIMENTS.md fences, and seeded randomized queries all run through
   the Cypher engine against both backends and must return identical
   multisets — including through a live worker-pool hot swap over real
   sockets.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from collections import Counter
from multiprocessing import shared_memory

import pytest

from repro.columnar import ColumnarGraphStore, attach_manifest, pack_store
from repro.columnar.pool import WorkerPool
from repro.columnar.shm import segment_registry
from repro.cypher.engine import CypherEngine
from repro.graphdb import (
    ConstraintViolationError,
    DanglingEndpointError,
    Direction,
    GraphReadStore,
    GraphStore,
    GraphWriteStore,
    NoSuchNodeError,
    ReadOnlyStoreError,
)
from tests.test_optimizer_equivalence import (
    EXPERIMENTS,
    PAPER_LISTINGS,
    QueryGenerator,
    result_multiset,
)

# ---------------------------------------------------------------------------
# A small graph with every awkward shape: multi-label nodes, parallel
# edges, a self-loop, sparse ids, list/bool/float properties.
# ---------------------------------------------------------------------------

NODES = [
    (1, ["AS"], {"asn": 2497, "name": "IIJ"}),
    (2, ["AS"], {"asn": 7922}),
    (5, ["Prefix", "BGPPrefix"], {"prefix": "8.8.8.0/24", "af": 4}),
    (7, ["Name"], {"name": "IIJ", "flag": True, "score": 1.0, "tags": ["a", "b"]}),
    (9, ["AS"], {"asn": 15169}),
    (12, ["Organization"], {"name": "Example Org"}),
]
RELS = [
    (10, "ORIGINATE", 1, 5, {"ref": "bgpkit"}),
    (11, "PEERS_WITH", 1, 2, {"rel": 1}),
    (13, "PEERS_WITH", 2, 9, {}),
    (14, "NAME", 1, 7, {}),
    (15, "DEPENDS_ON", 1, 1, {}),  # self-loop
    (16, "PEERS_WITH", 1, 2, {"rel": 0}),  # parallel edge
    (17, "MANAGED_BY", 1, 12, {}),
]
INDEXES = [("AS", "asn"), ("Name", "name")]
CONSTRAINTS = [("AS", "asn")]

BACKENDS = ("dict", "columnar")


def make_store(backend: str):
    cls = GraphStore if backend == "dict" else ColumnarGraphStore
    return cls.from_records(
        [(i, list(ls), dict(ps)) for i, ls, ps in NODES],
        [(i, t, s, e, dict(ps)) for i, t, s, e, ps in RELS],
        INDEXES,
        CONSTRAINTS,
    )


@pytest.fixture(params=BACKENDS)
def store(request):
    return make_store(request.param)


@pytest.fixture()
def both():
    return make_store("dict"), make_store("columnar")


# ---------------------------------------------------------------------------
# Contract + conformance
# ---------------------------------------------------------------------------


def test_backends_satisfy_protocols(both):
    dict_store, columnar = both
    assert isinstance(dict_store, GraphReadStore)
    assert isinstance(dict_store, GraphWriteStore)
    assert isinstance(columnar, GraphReadStore)
    assert dict_store.backend_name == "dict"
    assert columnar.backend_name == "columnar"


def test_counts_and_cardinalities(store):
    assert store.node_count == len(NODES)
    assert store.relationship_count == len(RELS)
    assert store.label_counts() == {
        "AS": 3,
        "BGPPrefix": 1,
        "Name": 1,
        "Organization": 1,
        "Prefix": 1,
    }
    assert store.label_count("AS") == 3
    assert store.label_count("Nope") == 0
    assert store.relationship_type_counts() == {
        "DEPENDS_ON": 1,
        "MANAGED_BY": 1,
        "NAME": 1,
        "ORIGINATE": 1,
        "PEERS_WITH": 3,
    }


def test_node_access(store):
    node = store.get_node(7)
    assert node.labels == frozenset({"Name"})
    assert node.properties == {
        "name": "IIJ",
        "flag": True,
        "score": 1.0,
        "tags": ["a", "b"],
    }
    assert store.has_node(5) and not store.has_node(4)
    with pytest.raises(NoSuchNodeError):
        store.get_node(404)
    assert [n.id for n in store.nodes_with_label("AS")] == [1, 2, 9]
    assert sorted(n.id for n in store.iter_nodes()) == [1, 2, 5, 7, 9, 12]


def test_index_seek_and_scan(store):
    assert [n.id for n in store.find_nodes("AS", "asn", 2497)] == [1]
    # Python index equality folds bool/int/float: 2497.0 hits the same
    # key, and a float query must not invent rows elsewhere.
    assert [n.id for n in store.find_nodes("AS", "asn", 2497.0)] == [1]
    assert store.find_nodes("AS", "asn", 2497.5) == []
    assert store.find_nodes("AS", "asn", "2497") == []
    # Unindexed property: filtering label scan, same numeric folding.
    assert [n.id for n in store.find_nodes("Name", "flag", 1)] == [7]
    assert [n.id for n in store.find_nodes("Prefix", "af", 4)] == [5]
    assert store.has_index("AS", "asn")
    assert not store.has_index("Prefix", "prefix")
    assert sorted(map(tuple, store.indexes())) == sorted(INDEXES)
    assert sorted(map(tuple, store.constraints())) == sorted(CONSTRAINTS)


def test_adjacency_parity(both):
    dict_store, columnar = both
    for node_id, _, _ in NODES:
        assert dict_store.typed_degrees(node_id) == columnar.typed_degrees(node_id)
        for direction in Direction:
            assert dict_store.degree(node_id, direction) == columnar.degree(
                node_id, direction
            ), (node_id, direction)
            for rel_type in ("PEERS_WITH", "DEPENDS_ON", "ABSENT"):
                assert dict_store.degree_by_type(
                    node_id, rel_type, direction
                ) == columnar.degree_by_type(node_id, rel_type, direction)
                assert Counter(
                    r.id for r in dict_store.relationships_of(
                        node_id, direction, rel_type
                    )
                ) == Counter(
                    r.id
                    for r in columnar.relationships_of(node_id, direction, rel_type)
                )
            assert Counter(
                dict_store.neighbor_ids(node_id, None, direction)
            ) == Counter(columnar.neighbor_ids(node_id, None, direction))


def test_self_loop_semantics(store):
    # BOTH must return the loop once but count it once in degree.
    rels = store.relationships_of(1, Direction.BOTH, "DEPENDS_ON")
    assert [r.id for r in rels] == [15]
    assert store.degree_by_type(1, "DEPENDS_ON", Direction.BOTH) == 1
    assert store.degree_by_type(1, "DEPENDS_ON", Direction.OUT) == 1
    assert store.degree_by_type(1, "DEPENDS_ON", Direction.IN) == 1
    # The BFS primitive sees the loop from both sides (dedupe is the
    # traversal's job, exactly like the dict backend's partitions).
    assert Counter(store.neighbor_ids(1, "DEPENDS_ON", Direction.BOTH)) == {1: 2}


def test_relationship_access(store):
    rel = store.get_relationship(11)
    assert (rel.type, rel.start_id, rel.end_id) == ("PEERS_WITH", 1, 2)
    assert rel.properties == {"rel": 1}
    assert sorted(r.id for r in store.iter_relationships()) == sorted(
        r[0] for r in RELS
    )
    assert sorted(r.id for r in store.relationships_with_type("PEERS_WITH")) == [
        11,
        13,
        16,
    ]
    assert sorted(r.id for r in store.relationships_between(1, 2)) == [11, 16]
    assert sorted(
        r.id for r in store.relationships_between(1, 2, "PEERS_WITH")
    ) == [11, 16]
    assert store.relationships_between(2, 1) == []


def test_bulk_accessors_parity(both):
    dict_store, columnar = both
    assert sorted(dict_store.node_ids()) == sorted(columnar.node_ids())
    assert sorted(dict_store.label_ids("AS")) == sorted(columnar.label_ids("AS"))
    assert dict_store.node_labels(5) == columnar.node_labels(5)
    assert dict_store.node_property(7, "tags") == columnar.node_property(7, "tags")
    assert dict_store.node_property(7, "absent") is None
    assert columnar.node_property(7, "absent") is None
    assert Counter(dict_store.iter_edges()) == Counter(columnar.iter_edges())
    assert Counter(dict_store.iter_edges("PEERS_WITH")) == Counter(
        columnar.iter_edges("PEERS_WITH")
    )
    assert list(columnar.iter_edges("ABSENT")) == []


def test_memory_info_shape(store):
    info = store.memory_info()
    assert set(info) == {
        "nodes_bytes",
        "relationships_bytes",
        "adjacency_bytes",
        "indexes_bytes",
        "total_bytes",
    }
    assert info["total_bytes"] > 0


def test_columnar_rejects_writes():
    columnar = make_store("columnar")
    with pytest.raises(ReadOnlyStoreError):
        columnar.create_node(["X"], {})
    with pytest.raises(ReadOnlyStoreError):
        columnar.update_node(1, {"x": 1})
    with pytest.raises(ReadOnlyStoreError):
        columnar.create_relationship(1, "X", 2)
    with pytest.raises(ReadOnlyStoreError):
        columnar.delete_node(1)
    with pytest.raises(ReadOnlyStoreError):
        columnar.create_index("AS", "name")
    # ReadOnlyStoreError is a GraphError: the server maps it to a 400
    # query error instead of a 500.
    engine = CypherEngine(columnar)
    with pytest.raises(ReadOnlyStoreError):
        engine.run("CREATE (x:Test {p: 1}) RETURN x")


# ---------------------------------------------------------------------------
# Loader validation (satellite: positioned GraphError for dangling ids)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_from_records_rejects_dangling_endpoints(backend):
    cls = GraphStore if backend == "dict" else ColumnarGraphStore
    nodes = [(1, ["AS"], {}), (2, ["AS"], {})]
    with pytest.raises(DanglingEndpointError) as excinfo:
        cls.from_records(
            nodes, [(7, "PEERS_WITH", 1, 2, {}), (8, "PEERS_WITH", 1, 404, {})]
        )
    error = excinfo.value
    assert error.position == 1
    assert error.rel_id == 8
    assert error.endpoint == "end"
    assert error.node_id == 404
    assert "record #1" in str(error)
    with pytest.raises(DanglingEndpointError) as excinfo:
        cls.from_records(nodes, [(9, "PEERS_WITH", 404, 1, {})])
    assert excinfo.value.endpoint == "start"
    assert excinfo.value.position == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_from_records_rechecks_constraints(backend):
    cls = GraphStore if backend == "dict" else ColumnarGraphStore
    with pytest.raises(ConstraintViolationError):
        cls.from_records(
            [(1, ["AS"], {"asn": 1}), (2, ["AS"], {"asn": 1})],
            [],
            constraints=[("AS", "asn")],
        )


# ---------------------------------------------------------------------------
# Shared-memory round trip
# ---------------------------------------------------------------------------


def test_shared_memory_round_trip():
    columnar = make_store("columnar")
    manifest = pack_store(columnar)
    try:
        attached = attach_manifest(manifest)
        assert attached.node_count == columnar.node_count
        assert attached.get_node(7).properties == columnar.get_node(7).properties
        assert Counter(attached.iter_edges()) == Counter(columnar.iter_edges())
        assert [n.id for n in attached.find_nodes("AS", "asn", 7922)] == [2]
        attached.close()
    finally:
        assert segment_registry().unlink(manifest.name)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=manifest.name)


def test_pack_store_accepts_dict_backend():
    manifest = pack_store(make_store("dict"))
    try:
        attached = attach_manifest(manifest)
        assert attached.backend_name == "columnar"
        assert attached.node_count == len(NODES)
        attached.close()
    finally:
        segment_registry().unlink(manifest.name)


# ---------------------------------------------------------------------------
# Engine replay: identical multisets on both backends
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def columnar_iyp(small_iyp):
    """The session graph converted to the columnar backend once."""
    return ColumnarGraphStore.from_store(small_iyp.store)


def assert_same_results(dict_store, columnar_store, query, parameters=None):
    expected = CypherEngine(dict_store).run(query, parameters)
    actual = CypherEngine(columnar_store).run(query, parameters)
    assert expected.columns == actual.columns, query
    assert result_multiset(expected) == result_multiset(actual), query
    return len(expected.records)


@pytest.mark.parametrize("name", sorted(PAPER_LISTINGS))
def test_paper_listing_same_on_both_backends(small_iyp, columnar_iyp, name):
    query = PAPER_LISTINGS[name]
    parameters = None
    if "$org_name" in query:
        orgs = small_iyp.engine.run(
            "MATCH (o:Organization) RETURN o.name AS name ORDER BY name"
        )
        parameters = {"org_name": orgs.records[0]["name"]}
    assert_same_results(small_iyp.store, columnar_iyp, query, parameters)


def test_experiments_fences_same_on_both_backends(small_iyp, columnar_iyp):
    from repro.lint.extract import extract_queries

    fences = extract_queries(EXPERIMENTS)
    assert fences, "EXPERIMENTS.md lost its cypher fences"
    for name, query in fences:
        rows = assert_same_results(small_iyp.store, columnar_iyp, query)
        assert rows > 0, f"{name} returned nothing on the built graph"


def test_randomized_queries_same_on_both_backends(small_iyp, columnar_iyp):
    generator = QueryGenerator(small_iyp.store, seed=20240809)
    nonempty = 0
    for _ in range(30):
        query = generator.query()
        nonempty += bool(
            assert_same_results(small_iyp.store, columnar_iyp, query)
        )
    assert nonempty >= 8, f"only {nonempty}/30 random queries returned rows"


# ---------------------------------------------------------------------------
# Worker pool: conformance over real sockets, including mid-query swap
# ---------------------------------------------------------------------------


def _post(host, port, query):
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps({"query": query}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def test_worker_pool_serves_and_hot_swaps_mid_query(small_iyp):
    first = pack_store(small_iyp.store)

    # Second snapshot: same graph plus a marker node, packed from the
    # (still mutable) dict store after the first segment was copied out.
    small_iyp.store.create_node(["SwapMarker"], {"name": "generation-2"})
    second = pack_store(small_iyp.store)

    pool = WorkerPool(first, workers=2, service_config={"max_concurrent": 4})
    try:
        pool.start()
        host, port = pool.address

        count_query = "MATCH (a:AS) RETURN count(a) AS n"
        expected = len(small_iyp.store.nodes_with_label("AS"))
        body = _post(host, port, count_query)
        assert body["rows"] == [[expected]]

        marker_query = "MATCH (m:SwapMarker) RETURN count(m) AS n"
        assert _post(host, port, marker_query)["rows"] == [[0]]

        errors: list[str] = []

        def hammer():
            for _ in range(20):
                try:
                    result = _post(host, port, count_query)
                    assert result["rows"] == [[expected]]
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        summary = pool.swap(second, label="second")
        for thread in threads:
            thread.join()

        assert not errors, errors[:3]
        assert summary["workers"] == 2
        assert summary["generations"] == [1, 1]
        assert summary["unlinked_segment"] == first.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=first.name)

        # Every worker now serves the new snapshot.
        for _ in range(8):
            assert _post(host, port, marker_query)["rows"] == [[1]]

        stats = json.loads(
            urllib.request.urlopen(
                f"http://{host}:{port}/stats", timeout=30
            ).read()
        )
        assert stats["graph"]["backend"] == "columnar"
        assert stats["graph"]["generation"] == 1
        assert stats["graph"]["snapshot"] == "second"
    finally:
        pool.stop()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=second.name)


def test_stats_reports_backend_field(small_iyp):
    from repro.server.app import QueryService

    dict_stats = QueryService(small_iyp.store).stats()
    assert dict_stats["graph"]["backend"] == "dict"
    columnar_stats = QueryService(
        ColumnarGraphStore.from_store(small_iyp.store)
    ).stats()
    assert columnar_stats["graph"]["backend"] == "columnar"
