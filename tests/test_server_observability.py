"""Server-level observability: statement statistics over HTTP, the
readiness endpoint during hot swaps, SLO surfacing, and the quality
endpoint over an archive.

Complements the unit tests in ``test_obs_statements.py`` /
``test_obs_slo.py`` / ``test_obs_quality.py`` by exercising the same
machinery through real sockets.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.archive import SnapshotArchive
from repro.graphdb import GraphStore
from repro.server import QueryService, ServiceError, create_server

# ---------------------------------------------------------------------------
# plumbing (same shape as test_server.py)
# ---------------------------------------------------------------------------


def _request(method: str, url: str, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _serve(service: QueryService):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def _store_with_ases(n: int) -> GraphStore:
    store = GraphStore()
    store.create_index("AS", "asn")
    for asn in range(64500, 64500 + n):
        store.create_node({"AS"}, {"asn": asn})
    return store


@pytest.fixture()
def served():
    service = QueryService(_store_with_ases(10))
    server, base = _serve(service)
    yield base, service
    server.shutdown()
    server.server_close()


# ---------------------------------------------------------------------------
# statement statistics over HTTP
# ---------------------------------------------------------------------------


class TestStatementEndpoint:
    def test_mixed_workload_aggregates_by_fingerprint(self, served):
        base, service = served
        # Two literal variants of one shape, plus a distinct shape.
        for asn in (64500, 64501, 64502):
            status, body = _request(
                "POST", f"{base}/query",
                {"query": f"MATCH (a:AS) WHERE a.asn = {asn} RETURN a.asn"},
            )
            assert status == 200
        status, _ = _request(
            "POST", f"{base}/query", {"query": "MATCH (a:AS) RETURN count(a)"}
        )
        assert status == 200
        status, snapshot = _request("GET", f"{base}/debug/statements")
        assert status == 200
        assert snapshot["statements_tracked"] == 2
        assert snapshot["recorded_total"] == 4
        hot = snapshot["statements"][0]
        variants = next(
            row for row in snapshot["statements"] if row["calls"] == 3
        )
        assert "?" in variants["query"]
        assert variants["rows"] == 3
        assert hot["counters"]  # resource accounting rode along

    def test_meta_fingerprint_matches_statement(self, served):
        base, _ = served
        _, first = _request(
            "POST", f"{base}/query",
            {"query": "MATCH (a:AS) WHERE a.asn = 64500 RETURN a.asn"},
        )
        _, second = _request(
            "POST", f"{base}/query",
            {"query": "MATCH (a:AS)   WHERE a.asn = 64509   RETURN a.asn"},
        )
        assert first["meta"]["fingerprint"] == second["meta"]["fingerprint"]
        status, snapshot = _request("GET", f"{base}/debug/statements")
        assert first["meta"]["fingerprint"] in {
            row["fingerprint"] for row in snapshot["statements"]
        }

    def test_cache_hits_and_response_bytes_are_counted(self, served):
        base, _ = served
        query = {"query": "MATCH (a:AS) RETURN count(a)"}
        _request("POST", f"{base}/query", query)
        _, body = _request("POST", f"{base}/query", query)
        assert body["meta"]["cached"] is True
        _, snapshot = _request("GET", f"{base}/debug/statements")
        row = snapshot["statements"][0]
        assert row["calls"] == 2
        assert row["cache_hits"] == 1
        assert row["counters"]["bytes_serialized"] > 0

    def test_errors_are_aggregated_too(self, served):
        base, service = served
        status, _ = _request(
            "POST", f"{base}/query",
            {"query": "MATCH (a:AS) RETURN a.asn", "max_rows": 2},
        )
        assert status == 413
        rows = service.statements.snapshot()["statements"]
        errored = next(row for row in rows if row["errors"])
        assert errored["errors"] == {"row_limit": 1}

    def test_top_and_sort_parameters(self, served):
        base, _ = served
        for query in ("RETURN 1", "RETURN 2", "MATCH (a:AS) RETURN count(a)"):
            _request("POST", f"{base}/query", {"query": query})
        status, snapshot = _request(
            "GET", f"{base}/debug/statements?top=1&sort=calls"
        )
        assert status == 200
        assert len(snapshot["statements"]) == 1
        status, body = _request("GET", f"{base}/debug/statements?sort=bogus")
        assert status == 400
        status, body = _request("GET", f"{base}/debug/statements?top=x")
        assert status == 400

    def test_disabled_statements_is_404(self):
        service = QueryService(_store_with_ases(1), statement_stats=False)
        server, base = _serve(service)
        try:
            service.execute("RETURN 1")
            status, body = _request("GET", f"{base}/debug/statements")
            assert status == 404
            assert body["error"]["code"] == "statements_disabled"
        finally:
            server.shutdown()
            server.server_close()


class TestSlowlogJoin:
    def test_slowlog_entries_carry_fingerprint_and_counters(self):
        # Threshold 0: every query is "slow", so one read suffices.
        service = QueryService(_store_with_ases(5), slow_query_seconds=0.0)
        response = service.execute(
            "MATCH (a:AS) WHERE a.asn = 64500 RETURN a.asn"
        )
        entry = service.slowlog.snapshot()["entries"][-1]
        assert entry["fingerprint"] == response["meta"]["fingerprint"]
        assert entry["counters"].get("nodes_scanned", 0) >= 1
        assert "stmt=" in service.slowlog.format_text()


# ---------------------------------------------------------------------------
# readiness during hot swap
# ---------------------------------------------------------------------------


class TestReadiness:
    @pytest.fixture()
    def archived(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "archive")
        archive.add(_store_with_ases(1), "day-1")
        archive.add(_store_with_ases(2), "day-2")
        service = QueryService(
            archive.load("day-1"), archive=archive, snapshot_label="day-1"
        )
        server, base = _serve(service)
        yield base, service, archive
        server.shutdown()
        server.server_close()

    def test_ready_when_idle(self, archived):
        base, _, _ = archived
        status, body = _request("GET", f"{base}/readyz")
        assert status == 200
        assert body["status"] == "ready"
        assert body["loads_in_flight"] == 0

    def test_readyz_is_503_while_a_swap_loads(self, archived, monkeypatch):
        base, service, archive = archived
        loading = threading.Event()
        release = threading.Event()
        original_load = archive.load

        def slow_load(entry):
            loading.set()
            assert release.wait(timeout=30)
            return original_load(entry)

        monkeypatch.setattr(archive, "load", slow_load)
        swap_result: list = []
        swapper = threading.Thread(
            target=lambda: swap_result.append(
                _request("POST", f"{base}/admin/swap", {"snapshot": "day-2"})
            ),
            daemon=True,
        )
        swapper.start()
        assert loading.wait(timeout=30)
        try:
            status, body = _request("GET", f"{base}/readyz")
            assert status == 503
            assert body["status"] == "loading"
            assert body["loads_in_flight"] == 1
            # Liveness is unaffected, and queries still flow.
            assert _request("GET", f"{base}/healthz")[0] == 200
            status, result = _request(
                "POST", f"{base}/query", {"query": "MATCH (a:AS) RETURN count(a)"}
            )
            assert status == 200 and result["rows"] == [[1]]
        finally:
            release.set()
        swapper.join(timeout=30)
        status, swapped = swap_result[0]
        assert status == 200 and swapped["generation"] == 1
        status, body = _request("GET", f"{base}/readyz")
        assert status == 200
        assert body["snapshot"] == "day-2"

    def test_quality_endpoint_reports_over_the_archive(self, archived):
        base, _, _ = archived
        status, report = _request("GET", f"{base}/quality")
        assert status == 200
        assert report["latest"] == "day-2"
        assert [row["label"] for row in report["snapshots"]] == ["day-1", "day-2"]
        assert report["stale"] is False  # entries were just stamped

    def test_quality_without_archive_is_400(self, served):
        base, _ = served
        status, body = _request("GET", f"{base}/quality")
        assert status == 400
        assert body["error"]["code"] == "no_archive"


# ---------------------------------------------------------------------------
# SLO surfacing
# ---------------------------------------------------------------------------


class TestSLOSurfacing:
    def test_stats_and_metrics_carry_slo_blocks(self, served):
        base, _ = served
        _request("POST", f"{base}/query", {"query": "MATCH (a:AS) RETURN count(a)"})
        status, stats = _request("GET", f"{base}/stats")
        assert status == 200
        slo = stats["slo"]
        assert slo["queries_in_window"] >= 1
        assert 0.0 <= slo["availability"]["compliance"] <= 1.0
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            text = response.read().decode()
        assert "repro_slo_latency_burn_rate" in text
        assert "repro_slo_availability_budget_remaining" in text
        assert "repro_statements_tracked" in text

    def test_client_errors_do_not_burn_budget(self, served):
        base, service = served
        status, _ = _request("POST", f"{base}/query", {"query": "MATCH ("})
        assert status == 400
        availability = service.slo.snapshot()["availability"]
        assert availability["compliance"] == 1.0

    def test_operational_errors_burn_budget(self):
        service = QueryService(_store_with_ases(5))
        with pytest.raises(ServiceError):
            service.execute("MATCH (a:AS) RETURN a.asn", max_rows=1)
        availability = service.slo.snapshot()["availability"]
        assert availability["compliance"] < 1.0
        assert availability["burn_rate"] > 0.0
