"""The world self-check."""

from repro.simnet import WorldConfig, build_world
from repro.simnet.validate import validate_world


class TestSelfCheck:
    def test_default_world_is_consistent(self, small_world):
        report = validate_world(small_world, resolve_sample=150)
        assert report.ok, report.problems
        assert report.checks_run >= 10

    def test_2015_world_is_consistent(self):
        world = build_world(
            WorldConfig.year2015(scale=0.1, n_domains=600, n_ases=150)
        )
        report = validate_world(world, resolve_sample=100)
        assert report.ok, report.problems

    def test_detects_injected_inconsistency(self, small_world):
        # Sabotage one domain's IP so it falls outside the hosting AS.
        world = build_world(WorldConfig.small(seed=404))
        victim = world.domains[world.tranco[0]]
        victim.ips = ["203.0.113.99"]  # not announced by anyone
        report = validate_world(world, resolve_sample=10)
        assert not report.ok
        assert any("hosting AS" in problem for problem in report.problems)

    def test_detects_dangling_nameserver(self):
        world = build_world(WorldConfig.small(seed=405))
        victim = world.domains[world.tranco[0]]
        victim.nameservers = ["ns1.does-not-exist.example"]
        report = validate_world(world, resolve_sample=10)
        assert any("dangling" in problem for problem in report.problems)

    def test_detects_bad_rov_state(self):
        world = build_world(WorldConfig.small(seed=406))
        info = next(iter(world.prefixes.values()))
        info.rov_status = "Valid"
        info.roas = []  # Valid without a ROA is inconsistent
        report = validate_world(world, resolve_sample=10)
        assert any("ROV" in problem for problem in report.problems)

    def test_cli_selfcheck(self, capsys):
        from repro.cli import main

        assert main(["selfcheck", "--scale", "small", "--seed", "7"]) == 0
        assert "world is consistent" in capsys.readouterr().out
