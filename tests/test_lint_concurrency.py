"""The concurrency-safety analyzer: one positive and one negative
fixture per RACE code, plus the repo-clean gate.

Each fixture is a minimal class exhibiting (or correctly avoiding) the
pattern a code targets; the negative twin differs only in the locking,
so a regression in either direction — missed race or false positive —
fails a specific test.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import CODES, analyze_paths, analyze_source, default_targets
from repro.lint.concurrency import ConcurrencyAnalyzer


def codes(source: str, path: str = "src/repro/graphdb/mod.py") -> list[str]:
    return [d.code for d in analyze_source(textwrap.dedent(source), path)]


class TestRace001Mutation:
    def test_positive_unguarded_write(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    self._data[key] = value
        """)
        assert found == ["RACE001"]

    def test_positive_unguarded_mutator_call(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    self._items.append(item)
        """)
        assert found == ["RACE001"]

    def test_positive_frozen_rebind(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"capacity": "frozen"}

                def __init__(self):
                    self.capacity = 8

                def resize(self, capacity):
                    self.capacity = capacity
        """)
        assert found == ["RACE001"]

    def test_negative_locked_write(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value
        """)
        assert found == []

    def test_negative_init_is_exempt(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock", "capacity": "frozen"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
                    self.capacity = 8
        """)
        assert found == []

    def test_negative_write_guard_needs_exclusive_not_shared(self):
        # A write under only the *read* side of an RWLock is still a race.
        found = codes("""
            from repro.graphdb.rwlock import RWLock

            class Store:
                GUARDED_BY = {"_nodes": "write:_rwlock"}

                def __init__(self):
                    self._rwlock = RWLock()
                    self._nodes = {}

                def bad(self, key, value):
                    with self._rwlock.read():
                        self._nodes[key] = value

                def good(self, key, value):
                    with self._rwlock.write():
                        self._nodes[key] = value
        """)
        assert found == ["RACE001"]


class TestRace002Read:
    def test_positive_unguarded_read(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def size(self):
                    return len(self._data)
        """)
        assert found == ["RACE002"]

    def test_negative_locked_read(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def size(self):
                    with self._lock:
                        return len(self._data)
        """)
        assert found == []

    def test_negative_write_mode_reads_are_lock_free(self):
        # "write:" guards mutations only: lock-free reads are the design
        # (GraphStore counters, monotonic totals).
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"recorded_total": "write:_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.recorded_total = 0

                def total(self):
                    return self.recorded_total
        """)
        assert found == []


class TestRace003LockedContract:
    def test_positive_locked_method_called_unlocked(self):
        found = codes("""
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def _evict_locked(self):
                    self._data.clear()

                def public(self):
                    self._evict_locked()
        """)
        assert found == ["RACE003"]

    def test_positive_guarded_by_decorator_called_unlocked(self):
        found = codes("""
            import threading
            from repro.concurrency import guarded_by

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                @guarded_by("_lock")
                def _evict(self):
                    self._data.clear()

                def public(self):
                    self._evict()
        """)
        assert found == ["RACE003"]

    def test_negative_called_under_lock(self):
        found = codes("""
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def _evict_locked(self):
                    self._data.clear()

                def public(self):
                    with self._lock:
                        self._evict_locked()
        """)
        assert found == []

    def test_negative_locked_method_calling_locked_method(self):
        # A _locked method holds the lock by contract, so its own calls
        # to sibling _locked methods are satisfied.
        found = codes("""
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def _evict_locked(self):
                    self._data.clear()

                def _rebuild_locked(self):
                    self._evict_locked()
        """)
        assert found == []


class TestRace004CheckThenAct:
    def test_positive_check_outside_act_inside(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put_once(self, key, value):
                    if key not in self._data:
                        with self._lock:
                            self._data[key] = value
        """)
        assert "RACE004" in found

    def test_negative_double_checked_locking(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put_once(self, key, value):
                    if key not in self._data:
                        with self._lock:
                            if key not in self._data:
                                self._data[key] = value
        """)
        assert found == []

    def test_negative_check_and_act_both_locked(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put_once(self, key, value):
                    with self._lock:
                        if key not in self._data:
                            self._data[key] = value
        """)
        assert found == []


class TestRace005ModuleState:
    def test_positive_mutable_module_dict_in_server(self):
        found = codes(
            "SESSIONS = {}\n", path="src/repro/server/sessions.py"
        )
        assert found == ["RACE005"]

    def test_negative_immutable_module_state(self):
        found = codes(
            'BUCKETS = (0.1, 0.5, 1.0)\nNAME = "x"\n',
            path="src/repro/server/mod.py",
        )
        assert found == []

    def test_negative_outside_shared_packages(self):
        # Single-threaded pipeline code may keep module-level dicts.
        found = codes("CACHE = {}\n", path="src/repro/datasets/mod.py")
        assert found == []

    def test_negative_threading_local_and_class_instances(self):
        found = codes("""
            import threading

            _tls = threading.local()
            _NULL = object()
        """, path="src/repro/obs/mod.py")
        assert found == []


class TestRace006Annotations:
    def test_positive_guard_names_missing_lock(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_missing"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
        """)
        assert found == ["RACE006"]

    def test_positive_unparsable_spec(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "bogus-mode:_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
        """)
        assert found == ["RACE006"]

    def test_negative_valid_annotations(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {
                    "_data": "_lock",
                    "total": "write:_lock",
                    "capacity": "frozen",
                    "flag": "atomic",
                }

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
                    self.total = 0
                    self.capacity = 4
                    self.flag = False
        """)
        assert found == []


class TestRace007LockOrder:
    def test_positive_opposite_order_in_one_class(self):
        found = codes("""
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        assert found == ["RACE007"]

    def test_positive_cycle_through_a_call(self):
        # forward acquires a then b directly; backward holds b and calls
        # a method that acquires a — the cycle spans a call edge.
        found = codes("""
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def _take_a(self):
                    with self._a:
                        pass

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        self._take_a()
        """)
        assert found == ["RACE007"]

    def test_negative_container_method_is_not_the_class_method(self):
        # `self._data.get(...)` under the lock is a *dict* get, not the
        # class's own lock-taking `get` — the unique-name fallback must
        # not resolve through a builtin-container attribute and invent a
        # self-cycle (the StatementRegistry shape, analyzed standalone).
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def record(self, key, value):
                    with self._lock:
                        entry = self._data.get(key)
                        if entry is None:
                            self._data[key] = value
                        own = entry or {}
                        own.get(key)

                def get(self, key):
                    with self._lock:
                        return self._data.get(key)
        """)
        assert found == []

    def test_negative_consistent_order(self):
        found = codes("""
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        assert found == []

    def test_negative_reentrant_rwlock_self_nesting(self):
        # The store RWLock is reentrant: read-inside-write is legal and
        # must not count as a self-cycle.
        found = codes("""
            from repro.graphdb.rwlock import RWLock

            class Store:
                def __init__(self):
                    self._rwlock = RWLock()

                def nested(self):
                    with self._rwlock.write():
                        with self._rwlock.read():
                            pass
        """)
        assert found == []


class TestSuppressions:
    def test_targeted_ignore_comment(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def size(self):
                    return len(self._data)  # concurrency: ignore[RACE002]
        """)
        assert found == []

    def test_targeted_ignore_leaves_other_codes(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def size(self):
                    return len(self._data)  # concurrency: ignore[RACE001]
        """)
        assert found == ["RACE002"]

    def test_bare_ignore_suppresses_everything(self):
        found = codes("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    self._data[key] = value  # concurrency: ignore
        """)
        assert found == []


class TestInfrastructure:
    def test_every_race_code_is_registered(self):
        for number in range(1, 8):
            code = f"RACE{number:03d}"
            assert code in CODES
            severity, _title = CODES[code]
            assert severity in ("error", "warning")

    def test_diagnostics_carry_spans(self):
        diags = analyze_source(textwrap.dedent("""
            import threading

            class Registry:
                GUARDED_BY = {"_data": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    self._data[key] = value
        """), "src/repro/graphdb/mod.py")
        assert len(diags) == 1
        span = diags[0].span
        assert span is not None
        assert span.line == 12
        assert span.column >= 1

    def test_syntax_error_is_a_diagnostic_not_a_crash(self):
        diags = analyze_source("def broken(:\n", "src/repro/server/x.py")
        assert [d.code for d in diags] == ["RACE006"]

    def test_default_targets_cover_the_serving_stack(self):
        paths = [str(p) for p in default_targets()]
        assert any("graphdb" in p for p in paths)
        assert any("server" in p for p in paths)
        assert any("obs" in p for p in paths)
        assert any("archive" in p for p in paths)
        assert any("concurrency" in p for p in paths)
        assert any(p.endswith("lru.py") for p in paths)

    def test_analyzer_sees_the_real_annotations(self):
        analyzer = ConcurrencyAnalyzer()
        for path in default_targets():
            analyzer.add_file(path)
        analyzer.run()
        annotated = [c for c in analyzer.classes.values() if c.guards]
        assert len(annotated) >= 8
        assert "GraphStore" in analyzer.classes
        assert analyzer.lock_kinds["GraphStore._rwlock"] == "rwlock"
        # The store-swap path gives the order graph real edges.
        held_locks = {held for held, _ in analyzer.order_edges}
        assert "QueryService._swap_lock" in held_locks


class TestRepoIsClean:
    def test_zero_findings_on_default_targets(self):
        findings = analyze_paths(default_targets())
        formatted = [diag.format(path) for path, diag in findings]
        assert formatted == []
