"""The Figure 4 sneak-peek walk: one domain, many datasets."""

import pytest

from repro.studies import sneak_peek


@pytest.fixture(scope="module")
def peek(small_iyp, small_world):
    # A top-ranked domain is in both rankings and the Cloudflare data,
    # maximizing the number of datasets its neighbourhood touches.
    return sneak_peek(small_iyp, small_world.tranco[0])


class TestSneakPeek:
    def test_neighbourhood_nonempty(self, peek):
        assert peek.relationships

    def test_many_datasets_contribute(self, peek):
        # The paper's example fuses 13 datasets; a popular node in the
        # small world must still touch a good handful.
        assert peek.dataset_count >= 5

    def test_resolution_chain_reaches_origin_as(self, peek):
        assert peek.resolution
        assert any(row["origins"] for row in peek.resolution)

    def test_nameserver_branch(self, peek):
        assert peek.nameservers
        assert any(row["hosting_ases"] for row in peek.nameservers)

    def test_unknown_domain_is_empty(self, small_iyp):
        result = sneak_peek(small_iyp, "definitely-not-a-domain.example")
        assert not result.relationships
        assert result.dataset_count == 0


class TestDotExport:
    def test_dot_is_well_formed(self, small_iyp, small_world):
        from repro.studies.sneak_peek import sneak_peek_dot

        dot = sneak_peek_dot(small_iyp, small_world.tranco[0])
        assert dot.startswith("graph sneak_peek {")
        assert dot.rstrip().endswith("}")
        assert dot.count("--") > 3  # edges exist
        assert 'fillcolor="gold"' in dot  # the DomainName node

    def test_dot_edges_reference_declared_nodes(self, small_iyp, small_world):
        import re

        from repro.studies.sneak_peek import sneak_peek_dot

        dot = sneak_peek_dot(small_iyp, small_world.tranco[0])
        declared = set(re.findall(r"^  (n\d+) \[", dot, re.MULTILINE))
        for left, right in re.findall(r"(n\d+) -- (n\d+)", dot):
            assert left in declared and right in declared

    def test_dot_for_unknown_domain_is_empty_graph(self, small_iyp):
        from repro.studies.sneak_peek import sneak_peek_dot

        dot = sneak_peek_dot(small_iyp, "nope.example")
        assert "--" not in dot
