"""Canonical IP/prefix handling (the Section 2.3 dedup rule)."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes import (
    InvalidAddressError,
    InvalidPrefixError,
    address_family,
    canonical_ip,
    canonical_prefix,
    ip_in_prefix,
    prefix_af,
    prefix_contains,
    slash24_of,
)
from repro.nettypes.ip import ip_bits, prefix_bits, prefix_key


class TestCanonicalIP:
    def test_ipv6_case_and_zeros(self):
        assert canonical_ip("2001:DB8:0:0:0:0:0:1") == "2001:db8::1"

    def test_paper_example_prefix_pair(self):
        # The exact pair from Section 2.3 of the paper.
        assert canonical_prefix("2001:DB8::/32") == canonical_prefix("2001:0db8::/32")

    def test_ipv4_leading_zeros(self):
        assert canonical_ip("192.000.002.001") == "192.0.2.1"

    def test_whitespace_stripped(self):
        assert canonical_ip("  10.0.0.1 ") == "10.0.0.1"

    def test_already_canonical_is_identity(self):
        assert canonical_ip("203.0.113.7") == "203.0.113.7"

    @pytest.mark.parametrize("bad", ["", "hello", "1.2.3", "1.2.3.4.5", "::g"])
    def test_invalid_addresses_raise(self, bad):
        with pytest.raises(InvalidAddressError):
            canonical_ip(bad)

    def test_canonicalization_is_idempotent(self):
        value = canonical_ip("2001:0DB8:0000::0001")
        assert canonical_ip(value) == value


class TestCanonicalPrefix:
    def test_host_bits_zeroed(self):
        assert canonical_prefix("10.0.0.1/8") == "10.0.0.0/8"

    def test_ipv6_compression(self):
        assert canonical_prefix("2001:0db8:0000::/32") == "2001:db8::/32"

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "/24", "x/8"])
    def test_invalid_prefixes_raise(self, bad):
        with pytest.raises(InvalidPrefixError):
            canonical_prefix(bad)

    def test_full_length_prefixes(self):
        assert canonical_prefix("192.0.2.1/32") == "192.0.2.1/32"
        assert canonical_prefix("2001:db8::1/128") == "2001:db8::1/128"


class TestFamilyAndContainment:
    def test_address_family(self):
        assert address_family("192.0.2.1") == 4
        assert address_family("2001:db8::1") == 6

    def test_prefix_af(self):
        assert prefix_af("10.0.0.0/8") == 4
        assert prefix_af("2001:db8::/32") == 6

    def test_ip_in_prefix(self):
        assert ip_in_prefix("10.1.2.3", "10.0.0.0/8")
        assert not ip_in_prefix("11.1.2.3", "10.0.0.0/8")

    def test_cross_family_containment_is_false(self):
        assert not ip_in_prefix("10.0.0.1", "2001:db8::/32")
        assert not prefix_contains("10.0.0.0/8", "2001:db8::/32")

    def test_prefix_contains_self(self):
        assert prefix_contains("10.0.0.0/8", "10.0.0.0/8")

    def test_prefix_contains_subnet(self):
        assert prefix_contains("10.0.0.0/8", "10.1.0.0/16")
        assert not prefix_contains("10.1.0.0/16", "10.0.0.0/8")


class TestSlash24:
    def test_ipv4(self):
        assert slash24_of("192.0.2.77") == "192.0.2.0/24"

    def test_ipv6_uses_slash48(self):
        assert slash24_of("2001:db8:1:2::3") == "2001:db8:1::/48"


class TestBitHelpers:
    def test_prefix_bits_length(self):
        af, bits = prefix_bits("10.0.0.0/8")
        assert af == 4 and len(bits) == 8 and bits == "00001010"

    def test_ip_bits_full_width(self):
        af, bits = ip_bits("255.255.255.255")
        assert af == 4 and bits == "1" * 32
        af6, bits6 = ip_bits("::")
        assert af6 == 6 and bits6 == "0" * 128

    def test_prefix_key_sortable(self):
        assert prefix_key("10.0.0.0/8") < prefix_key("11.0.0.0/8")


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_canonical_ipv4_roundtrip(value):
    """Any IPv4 integer survives the canonical round-trip."""
    text = str(ipaddress.ip_address(value))
    assert canonical_ip(text) == text


@given(
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=128),
)
def test_property_canonical_prefix_idempotent(value, length):
    """canonical_prefix is idempotent over arbitrary v6 inputs."""
    network = ipaddress.ip_network((value, length), strict=False)
    canonical = canonical_prefix(str(network))
    assert canonical_prefix(canonical) == canonical


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_slash24_contains_address(value):
    ip = str(ipaddress.ip_address(value))
    assert ip_in_prefix(ip, slash24_of(ip))
