"""The RiPKI reproduction: Table 2 shapes and the Section 5.1.2
domain-weighting extension."""

import pytest

from repro.studies import run_ripki_study


@pytest.fixture(scope="module")
def results(small_iyp):
    return run_ripki_study(small_iyp)


class TestTable2Shape:
    def test_row_complete(self, results):
        row = results.table2_row()
        assert set(row) == {
            "RPKI Invalid", "RPKI covered", "Top 100k", "Bottom 100k", "CDN",
        }

    def test_invalid_fraction_tiny(self, results):
        # Paper 2024: 0.12%.  Anything under 2% preserves the story.
        assert 0.0 <= results.invalid_pct < 2.0

    def test_majority_covered_2024_regime(self, results):
        # Paper 2024: 52.2% covered (vs 6% in 2015).
        assert results.covered_pct > 40.0

    def test_cdn_coverage_highest(self, results):
        assert results.cdn_pct > results.covered_pct
        assert results.cdn_pct > results.top_band_pct

    def test_academic_and_government_lowest(self, results):
        # Section 4.1.4: Academic 16%, Government 21%, DDoS 76%.
        by_tag = results.coverage_by_tag
        assert by_tag["Academic"] < by_tag["DDoS Mitigation"]
        assert by_tag["Government"] < by_tag["DDoS Mitigation"]
        assert by_tag["Academic"] < results.covered_pct
        assert by_tag["Content Delivery Network"] > 50.0

    def test_percentages_bounded(self, results):
        for value in results.table2_row().values():
            assert 0.0 <= value <= 100.0


class TestDomainWeighting:
    def test_domains_exceed_prefix_coverage(self, results):
        # Section 5.1.2: domains concentrate on covered prefixes
        # (78.8% of domains vs 52.2% of prefixes in the paper).
        assert results.domains_covered_pct > results.covered_pct

    def test_cdn_domains_nearly_all_covered(self, results):
        # Paper: 96% of CDN-hosted domains on covered prefixes.
        assert results.cdn_domains_covered_pct > 80.0


class TestEmptyGraph:
    def test_empty_graph_returns_zeroes(self, empty_iyp):
        results = run_ripki_study(empty_iyp)
        assert results.total_prefixes == 0
        assert results.covered_pct == 0.0
