"""Failure injection for the ETL layer: corrupted inputs must surface
as clean, attributable errors, never as silent partial imports."""

import json

import pytest

from repro.core import IYP
from repro.datasets.base import FetchError, StaticFetcher
from repro.datasets.crawlers import bgpkit, ihr, nro, openintel, ripe, tranco
from repro.pipeline import build_iyp


@pytest.fixture()
def iyp():
    return IYP()


class TestCorruptJSON:
    def test_truncated_json_raises(self, iyp):
        fetcher = StaticFetcher({bgpkit.PFX2AS_URL: '[{"prefix": "10.0.0.0/8", '})
        with pytest.raises(json.JSONDecodeError):
            bgpkit.PrefixToASNCrawler(iyp, fetcher).run()

    def test_missing_field_raises_key_error(self, iyp):
        fetcher = StaticFetcher(
            {bgpkit.PFX2AS_URL: json.dumps([{"prefix": "10.0.0.0/8"}])}
        )
        with pytest.raises(KeyError):
            bgpkit.PrefixToASNCrawler(iyp, fetcher).run()

    def test_bad_prefix_value_raises_invalid_prefix(self, iyp):
        from repro.nettypes import InvalidPrefixError

        fetcher = StaticFetcher(
            {bgpkit.PFX2AS_URL: json.dumps([{"prefix": "not-a-prefix", "asn": 1}])}
        )
        with pytest.raises(InvalidPrefixError):
            bgpkit.PrefixToASNCrawler(iyp, fetcher).run()

    def test_bad_asn_raises_invalid_asn(self, iyp):
        from repro.nettypes import InvalidASNError

        fetcher = StaticFetcher(
            {ripe.RPKI_URL: json.dumps(
                {"roas": [{"asn": "ASX", "prefix": "10.0.0.0/8", "maxLength": 8}]}
            )}
        )
        with pytest.raises(InvalidASNError):
            ripe.RPKICrawler(iyp, fetcher).run()


class TestMalformedLinesSkipped:
    """Line-oriented formats tolerate junk rows (real feeds have them)."""

    def test_nro_skips_header_and_junk(self, iyp):
        content = "\n".join(
            [
                "2|nro|20240501|0|19840101|20240501|+0000",  # header
                "# a comment the format does not even allow",
                "arin|US|asn|7018|1|20000101|allocated|arin-att",
                "short|row",
            ]
        )
        nro.DelegatedStatsCrawler(iyp, StaticFetcher({nro.DELEGATED_URL: content})).run()
        assert iyp.run("MATCH (a:AS) RETURN count(a)").value() == 1

    def test_pch_skips_malformed_rows(self, iyp):
        from repro.datasets.crawlers import pch

        content = "10.0.0.0/8|1 2 3|pch-collector-1\ngarbage line\n|||||\n"
        pch.RoutingSnapshotCrawler(iyp, StaticFetcher({pch.PCH_URL: content})).run()
        assert iyp.run("MATCH (:AS)-[:ORIGINATE]->(p) RETURN count(p)").value() == 1

    def test_tranco_skips_short_rows(self, iyp):
        content = "1,example.com\nnot-a-row\n2,foo.org\n"
        tranco.TrancoCrawler(iyp, StaticFetcher({tranco.TRANCO_URL: content})).run()
        assert iyp.run(
            "MATCH (d:DomainName)-[:RANK]->() RETURN count(d)"
        ).value() == 2

    def test_openintel_skips_blank_lines(self, iyp):
        record = json.dumps(
            {"query_name": "a.com", "response_type": "A",
             "response_name": "a.com", "answer": "10.0.0.1"}
        )
        content = f"\n\n{record}\n\n"
        openintel.Tranco1MCrawler(
            iyp, StaticFetcher({openintel.TRANCO1M_URL: content})
        ).run()
        assert iyp.run("MATCH (h:HostName) RETURN count(h)").value() >= 1


class TestBuildReportAttribution:
    def test_failed_crawler_attributed_not_fatal(self, small_world, monkeypatch):
        from repro.datasets.crawlers import ihr as ihr_module

        def boom(self):
            raise ValueError("corrupted upstream data")

        monkeypatch.setattr(ihr_module.ROVCrawler, "run", boom)
        iyp, report = build_iyp(
            small_world,
            dataset_names=["bgpkit.pfx2as", "ihr.rov"],
            raise_on_error=False,
            postprocess=False,
        )
        assert set(report.crawler_errors) == {"ihr.rov"}
        assert "corrupted upstream data" in report.crawler_errors["ihr.rov"]
        # The healthy dataset still imported fully.
        assert iyp.run("MATCH ()-[r:ORIGINATE]->() RETURN count(r)").value() > 0

    def test_fetch_error_attributed(self, small_world):
        iyp, report = build_iyp(
            small_world, dataset_names=["ihr.rov"], raise_on_error=False,
            postprocess=False, iyp=None,
        )
        assert report.ok  # sanity: normal path works

    def test_unregistered_url_is_fetch_error(self, iyp, small_world):
        from repro.datasets.base import SimulatedFetcher

        fetcher = SimulatedFetcher(small_world)  # nothing registered
        crawler = ihr.ROVCrawler(iyp, fetcher)
        with pytest.raises(FetchError):
            crawler.run()


class TestPartialImportVisibility:
    def test_corrupt_row_fails_before_any_write(self, iyp):
        """The pfx2as crawler extracts all identifiers before creating
        nodes, so a corrupt row anywhere in the file aborts the import
        before the graph is touched — no half-imported dataset."""
        records = [
            {"prefix": "10.0.0.0/8", "asn": 1, "count": 1},
            {"prefix": "10.1.0.0/16"},  # missing asn
        ]
        fetcher = StaticFetcher({bgpkit.PFX2AS_URL: json.dumps(records)})
        with pytest.raises(KeyError):
            bgpkit.PrefixToASNCrawler(iyp, fetcher).run()
        assert iyp.store.node_count == 0
        assert iyp.store.relationship_count == 0
