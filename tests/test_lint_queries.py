"""The static Cypher linter: diagnostics, codes, spans, strictness."""

import pytest

from repro.graphdb import GraphStore
from repro.lint import (
    CODES,
    QueryLinter,
    fails_strict,
    lint_query,
    worst_severity,
)
from repro.studies import queries as paper_queries


def codes(findings):
    return [f.code for f in findings]


class TestSyntaxErrors:
    def test_unparsable_query_is_lnt000(self):
        findings = lint_query("MATCH (a:AS RETURN a")
        assert codes(findings) == ["LNT000"]
        assert findings[0].severity == "error"

    def test_lnt000_carries_position(self):
        findings = lint_query("MATCH (a:AS RETURN a")
        assert findings[0].span is not None
        assert findings[0].span.line == 1
        assert findings[0].span.column > 1


class TestOntologyChecks:
    def test_unknown_label_is_lnt001(self):
        findings = lint_query("MATCH (a:ASN) RETURN a")
        assert codes(findings) == ["LNT001"]
        assert ":ASN" in findings[0].message
        assert findings[0].span.line == 1
        assert findings[0].span.column == 10

    def test_unknown_relationship_type_is_lnt002(self):
        findings = lint_query(
            "MATCH (a:AS)-[:ORIGINATES]-(p:Prefix) RETURN a, p"
        )
        assert codes(findings) == ["LNT002"]
        assert ":ORIGINATES" in findings[0].message

    def test_impossible_endpoints_is_lnt003(self):
        # ORIGINATE is stored (AS)->(Prefix); the directed arrow is wrong.
        findings = lint_query(
            "MATCH (p:Prefix)-[:ORIGINATE]->(a:AS) RETURN a, p"
        )
        assert "LNT003" in codes(findings)

    def test_undirected_pattern_accepts_either_orientation(self):
        findings = lint_query(
            "MATCH (p:Prefix)-[:ORIGINATE]-(a:AS) RETURN a, p"
        )
        assert "LNT003" not in codes(findings)

    def test_unknown_property_is_lnt004(self):
        findings = lint_query("MATCH (a:AS) WHERE a.nombre = 'x' RETURN a")
        assert "LNT004" in codes(findings)
        assert "`nombre`" in [f for f in findings if f.code == "LNT004"][0].message

    def test_label_knowledge_crosses_clauses(self):
        # `pfx` is bound as :Prefix in the first MATCH; a wrong property
        # on it in the second clause must still be caught (Listing 3's
        # variable-reuse shape).
        findings = lint_query(
            "MATCH (pfx:Prefix) WITH pfx "
            "MATCH (pfx)-[:PART_OF]-(i:IP) RETURN pfx.bogus"
        )
        assert "LNT004" in codes(findings)


class TestFlowChecks:
    def test_cartesian_product_is_lnt005(self):
        findings = lint_query("MATCH (a:AS), (p:Prefix) RETURN a, p")
        assert "LNT005" in codes(findings)

    def test_connected_patterns_are_not_cartesian(self):
        findings = lint_query(
            "MATCH (a:AS), (a)-[:ORIGINATE]-(p:Prefix) RETURN a, p"
        )
        assert "LNT005" not in codes(findings)

    def test_unused_variable_is_lnt006_info(self):
        findings = lint_query("MATCH (a:AS)-[r:ORIGINATE]-(p:Prefix) RETURN a, p")
        lnt006 = [f for f in findings if f.code == "LNT006"]
        assert len(lnt006) == 1
        assert "`r`" in lnt006[0].message
        assert lnt006[0].severity == "info"

    def test_return_star_suppresses_lnt006(self):
        findings = lint_query("MATCH (a:AS)-[r:ORIGINATE]-(p:Prefix) RETURN *")
        assert "LNT006" not in codes(findings)

    def test_unbound_variable_is_lnt007(self):
        findings = lint_query("MATCH (a:AS) RETURN b.asn")
        assert "LNT007" in codes(findings)

    def test_with_narrows_scope(self):
        findings = lint_query(
            "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) WITH p RETURN a"
        )
        assert "LNT007" in codes(findings)


class TestTypeChecks:
    def test_string_literal_against_int_property_is_lnt009(self):
        findings = lint_query("MATCH (a:AS) WHERE a.asn = '2907' RETURN a")
        assert "LNT009" in codes(findings)

    def test_matching_literal_kind_is_clean(self):
        findings = lint_query("MATCH (a:AS) WHERE a.asn = 2907 RETURN a")
        assert "LNT009" not in codes(findings)

    def test_string_operator_on_numeric_property_is_lnt009(self):
        findings = lint_query("MATCH (a:AS) WHERE a.asn CONTAINS 'x' RETURN a")
        assert "LNT009" in codes(findings)

    def test_inline_property_map_kind_checked(self):
        findings = lint_query("MATCH (a:AS {asn: '2907'}) RETURN a")
        assert "LNT009" in codes(findings)


class TestIndexChecks:
    def test_lnt008_requires_a_store(self):
        findings = lint_query("MATCH (a:AS {asn: 2497}) RETURN a.asn")
        assert "LNT008" not in codes(findings)

    def test_unindexed_lookup_flagged_with_store(self):
        store = GraphStore()
        store.create_node({"AS"}, {"asn": 2497})
        findings = QueryLinter(store).lint("MATCH (a:AS {asn: 2497}) RETURN a.asn")
        assert "LNT008" in codes(findings)

    def test_indexed_lookup_is_clean(self):
        store = GraphStore()
        store.create_index("AS", "asn")
        store.create_node({"AS"}, {"asn": 2497})
        findings = QueryLinter(store).lint("MATCH (a:AS {asn: 2497}) RETURN a.asn")
        assert "LNT008" not in codes(findings)


class TestProcedureChecks:
    def test_known_procedure_is_clean(self):
        findings = lint_query(
            "CALL algo.pagerank() YIELD asn, score RETURN asn, score"
        )
        assert findings == []

    def test_unknown_procedure_is_lnt010(self):
        findings = lint_query("CALL algo.compnents() YIELD component RETURN component")
        assert codes(findings) == ["LNT010"]
        assert findings[0].severity == "error"
        assert "`algo.compnents`" in findings[0].message

    def test_lnt010_suggests_registry_names(self):
        finding = lint_query("CALL algo.compnents()")[0]
        assert "did you mean" in finding.message
        assert "`algo.components`" in finding.message

    def test_lnt010_span_covers_the_procedure_name(self):
        finding = lint_query("CALL algo.compnents()")[0]
        assert finding.span is not None
        assert (finding.span.line, finding.span.column) == (1, 6)
        assert finding.span.length == len("algo.compnents")

    def test_call_arguments_are_linted(self):
        findings = lint_query(
            "CALL algo.kreach(b.asn, 2) YIELD node RETURN node"
        )
        assert "LNT007" in codes(findings)  # `b` was never bound

    def test_standalone_call_is_clean(self):
        assert lint_query("CALL algo.customer_cone()") == []

    def test_unused_mid_pipeline_yield_is_lnt006(self):
        findings = lint_query(
            "CALL algo.pagerank() YIELD asn AS a, score RETURN score"
        )
        lnt006 = [f for f in findings if f.code == "LNT006"]
        assert len(lnt006) == 1
        assert "`a`" in lnt006[0].message

    def test_final_call_yields_are_result_columns_not_unused(self):
        findings = lint_query(
            "MATCH (n:AS) RETURN n.asn"  # sanity: the fixture query shape
        )
        assert "LNT006" not in codes(findings)
        findings = lint_query("CALL algo.pagerank() YIELD asn, score")
        assert "LNT006" not in codes(findings)


class TestDiagnosticsModel:
    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            # Two families share the registry: Cypher lint codes and the
            # concurrency analyzer's RACE codes.
            assert code.startswith(("LNT", "RACE"))
            assert severity in {"error", "warning", "info"}
            assert title

    def test_to_dict_carries_position(self):
        finding = lint_query("MATCH (a:ASN) RETURN a")[0]
        payload = finding.to_dict()
        assert payload["code"] == "LNT001"
        assert payload["line"] == 1 and payload["column"] == 10

    def test_format_cites_source_and_position(self):
        finding = lint_query("MATCH (a:ASN) RETURN a")[0]
        assert finding.format("q.cypher").startswith("q.cypher:1:10: error LNT001")

    def test_worst_severity_and_strictness(self):
        errors = lint_query("MATCH (a:ASN) RETURN a")
        infos = lint_query("MATCH (a:AS)-[r:ORIGINATE]-(p:Prefix) RETURN a, p")
        assert worst_severity(errors) == "error"
        assert worst_severity(infos) == "info"
        assert fails_strict(errors)
        assert not fails_strict(infos)  # info never fails, even strict
        assert not fails_strict([])

    def test_diagnostics_sorted_by_position(self):
        findings = lint_query("MATCH (a:ASN)-[:ORIGINATES]-(p:Prefx) RETURN a, p")
        offsets = [f.span.offset for f in findings if f.span]
        assert offsets == sorted(offsets)


class TestPaperListings:
    """Every published listing must stay lint-clean (strict)."""

    @pytest.mark.parametrize("name", [f"LISTING_{n}" for n in range(1, 7)])
    def test_listing_passes_strict(self, name):
        findings = lint_query(getattr(paper_queries, name))
        assert not fails_strict(findings), [str(f) for f in findings]
