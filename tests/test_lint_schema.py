"""The graph schema validator (data sanitizer): coded store violations."""

import pytest

from repro.graphdb import GraphStore
from repro.lint import GRAPH_BUCKET, SCHEMA_CODES, GraphValidator
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world

REF = {
    "reference_org": "BGPKIT",
    "reference_name": "bgpkit.pfx2as",
    "reference_url_data": "https://example.test",
}


@pytest.fixture()
def store():
    return GraphStore()


def validate(store):
    return GraphValidator().validate(store)


class TestCleanStore:
    def test_empty_store_is_clean(self, store):
        report = validate(store)
        assert report.ok
        assert report.nodes_checked == 0
        assert report.relationships_checked == 0

    def test_well_formed_link_is_clean(self, store):
        a = store.create_node({"AS"}, {"asn": 2497})
        p = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
        store.create_relationship(a.id, "ORIGINATE", p.id, dict(REF))
        report = validate(store)
        assert report.ok, [str(v) for v in report.violations]
        assert report.nodes_checked == 2
        assert report.relationships_checked == 1


class TestNodeChecks:
    def test_non_ontology_label_is_sch001(self, store):
        store.create_node({"Widget"}, {"id": 1})
        report = validate(store)
        assert report.by_code() == {"SCH001": 1}
        assert report.violations[0].crawler == GRAPH_BUCKET

    def test_missing_key_property_is_sch002(self, store):
        store.create_node({"AS"}, {"name": "IIJ"})  # no asn
        report = validate(store)
        assert report.by_code() == {"SCH002": 1}
        assert "asn" in report.violations[0].message


class TestRelationshipChecks:
    def test_unknown_type_is_sch003(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "FROBNICATES", b.id, dict(REF))
        report = validate(store)
        assert report.by_code() == {"SCH003": 1}

    def test_endpoint_violation_is_sch004(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        c = store.create_node({"Country"}, {"country_code": "JP"})
        store.create_relationship(a.id, "ORIGINATE", c.id, dict(REF))
        report = validate(store)
        assert "SCH004" in report.by_code()

    def test_reversed_orientation_is_accepted(self, store):
        # IYP stores links directed but queries them undirected, so a
        # reversed stored direction is not an endpoint violation.
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
        store.create_relationship(p.id, "ORIGINATE", a.id, dict(REF))
        assert validate(store).ok

    def test_missing_provenance_is_sch005(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
        store.create_relationship(a.id, "ORIGINATE", p.id, {})
        report = validate(store)
        assert report.by_code() == {"SCH005": 1}
        assert report.violations[0].crawler == "(unknown)"

    def test_incomplete_reference_is_sch006(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
        store.create_relationship(
            a.id, "ORIGINATE", p.id, {"reference_name": "bgpkit.pfx2as"}
        )
        report = validate(store)
        assert report.by_code() == {"SCH006": 1}

    def test_stray_reference_property_is_sch006(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        p = store.create_node({"Prefix"}, {"prefix": "192.0.2.0/24", "af": 4})
        store.create_relationship(
            a.id, "ORIGINATE", p.id, {**REF, "reference_flavor": "vanilla"}
        )
        report = validate(store)
        assert report.by_code() == {"SCH006": 1}
        assert "reference_flavor" in report.violations[0].message


class TestReport:
    def test_violations_attributed_per_crawler(self, store):
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        c = store.create_node({"Country"}, {"country_code": "JP"})
        store.create_relationship(a.id, "ORIGINATE", c.id, dict(REF))
        store.create_relationship(
            a.id, "FROBNICATES", b.id, {**REF, "reference_name": "ihr.rov"}
        )
        grouped = validate(store).by_crawler()
        assert set(grouped) == {"bgpkit.pfx2as", "ihr.rov"}

    def test_to_dict_caps_detail(self, store):
        for index in range(5):
            store.create_node({"Widget"}, {"id": index})
        payload = validate(store).to_dict(limit=2)
        assert payload["ok"] is False
        assert payload["violation_count"] == 5
        assert len(payload["violations"]) == 2
        assert payload["by_code"] == {"SCH001": 5}

    def test_schema_codes_documented(self):
        assert set(SCHEMA_CODES) == {
            "SCH001", "SCH002", "SCH003", "SCH004", "SCH005", "SCH006"
        }


class TestFreshBuild:
    def test_fresh_build_has_zero_violations(self):
        iyp, report = build_iyp(build_world(WorldConfig.small(seed=11)))
        assert report.schema_report is not None
        assert report.schema_report.ok, report.schema_report.by_code()
        assert report.schema_report.nodes_checked == iyp.store.node_count
        assert report.ok

    def test_corrupted_store_flips_report(self):
        iyp, _ = build_iyp(
            build_world(WorldConfig.small(seed=11)),
            dataset_names=["bgpkit.pfx2as"],
        )
        node = iyp.store.create_node({"Gremlin"}, {"id": 1})
        report = GraphValidator().validate(iyp.store)
        assert not report.ok
        assert report.by_code().get("SCH001") == 1
        assert report.violations[0].element_id == node.id
