"""The weekly report generator."""

import pytest

from repro.studies.report import generate_report


@pytest.fixture(scope="module")
def report(small_iyp):
    return generate_report(small_iyp, snapshot_label="2024-05-01")


class TestReport:
    def test_contains_every_section(self, report):
        for heading in (
            "# IYP weekly report",
            "## RPKI status of popular-domain prefixes",
            "## DNS best practices",
            "## Shared DNS infrastructure",
            "## RPKI and the DNS infrastructure",
            "## Single points of failure",
            "## Dataset consistency",
        ):
            assert heading in report.markdown

    def test_snapshot_label_rendered(self, report):
        assert "2024-05-01" in report.markdown

    def test_raw_results_attached(self, report):
        assert report.ripki.total_prefixes > 0
        assert report.spof.domains_analyzed > 0
        assert report.comparison.prefixes_compared > 0

    def test_markdown_tables_well_formed(self, report):
        rows = [
            line for line in report.markdown.splitlines() if line.startswith("|")
        ]
        assert rows
        # Within each table (a block of consecutive '|' lines), every
        # row must have the same number of columns.
        block: list[str] = []
        for line in report.markdown.splitlines() + [""]:
            if line.startswith("|"):
                block.append(line)
                continue
            if block:
                counts = {row.count("|") for row in block}
                assert len(counts) == 1, block[:3]
                block = []

    def test_refreshes_with_new_data(self, small_iyp, report):
        # The on-demand reproducibility property: adding data changes
        # the regenerated report.
        small_iyp.run("CREATE (:Prefix {prefix: '203.0.113.0/24', af: 4})")
        refreshed = generate_report(small_iyp)
        assert refreshed.markdown != report.markdown
        small_iyp.run(
            "MATCH (p:Prefix {prefix: '203.0.113.0/24'}) DELETE p"
        )
