"""Dataset comparison (Section 6.1): finding the injected BGPKIT bug."""

import pytest

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import compare_origin_datasets


class TestInjectedBugFound:
    def test_disagreements_are_ipv6_dominated(self, small_iyp):
        result = compare_origin_datasets(small_iyp)
        assert result.total > 0, "the injected error must be visible"
        assert result.ipv6_dominated
        assert result.ipv4_count == 0

    def test_disagreements_match_injection(self, small_iyp, small_world):
        result = compare_origin_datasets(small_iyp)
        wrong_origin = min(small_world.ases)
        for entry in result.disagreements:
            assert entry["af"] == 6
            assert wrong_origin in entry["bgpkit_origins"]
            true_origins = set(small_world.prefixes[entry["prefix"]].origins)
            assert set(entry["ihr_origins"]) == true_origins

    def test_expected_injection_rate(self, small_iyp, small_world):
        result = compare_origin_datasets(small_iyp)
        v6_prefixes = sum(
            len(p.origins)
            for p in small_world.prefixes.values()
            if p.af == 6
        )
        expected = v6_prefixes * small_world.config.bgpkit_ipv6_error_fraction
        assert result.total == pytest.approx(expected, abs=max(3, expected))


class TestCleanWorldHasNoFindings:
    def test_no_error_no_disagreement(self):
        config = WorldConfig.small(seed=99)
        config.bgpkit_ipv6_error_fraction = 0.0
        # MOAS disabled too: with both datasets complete and identical
        # there must be zero disagreements.
        world = build_world(config)
        iyp, _report = build_iyp(
            world, dataset_names=["bgpkit.pfx2as", "ihr.rov"], postprocess=False
        )
        result = compare_origin_datasets(iyp)
        assert result.total == 0
        assert result.prefixes_compared == len(world.prefixes)
