"""Executable documentation: every Cypher block in the query cookbook
(documentation/tutorial.md) must run successfully on the built graph."""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "documentation" / "tutorial.md"


def _queries() -> list[str]:
    text = TUTORIAL.read_text(encoding="utf-8")
    return re.findall(r"```cypher\n(.*?)```", text, re.DOTALL)


QUERIES = _queries()


class TestCookbook:
    def test_tutorial_exists_with_queries(self):
        assert TUTORIAL.exists()
        assert len(QUERIES) >= 18

    @pytest.mark.parametrize(
        "query", QUERIES, ids=[f"block{i}" for i in range(len(QUERIES))]
    )
    def test_query_block_runs(self, small_iyp, query):
        result = small_iyp.run(query)
        assert result.columns, "every cookbook query returns something"

    def test_fusion_queries_find_data(self, small_iyp):
        # The cross-dataset examples must return non-trivial results on
        # the synthetic graph, not just run.
        both_rankings = small_iyp.run(
            "MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)"
            "-[:RANK]-(:Ranking {name:'Cisco Umbrella Top 1M'}) "
            "RETURN count(DISTINCT d)"
        ).value()
        assert both_rankings > 0

    def test_every_block_is_read_only_or_undone(self, small_iyp):
        before = (
            small_iyp.store.node_count,
            small_iyp.store.relationship_count,
        )
        for query in QUERIES:
            small_iyp.run(query)
        after = (
            small_iyp.store.node_count,
            small_iyp.store.relationship_count,
        )
        assert before == after, "cookbook queries must not mutate the graph"
