"""Cross-source data-quality telemetry derived from archive manifests.

All inputs are the plain-dict shapes ``BuildReport.build_metadata()``
and ``ArchiveEntry.to_dict()`` produce, built by hand so each signal
(freshness, coverage, agreement, divergence) can be dialed precisely.
"""

from __future__ import annotations

import pytest

from repro.obs import archive_quality, crawler_quality, quality_gauges
from repro.obs.quality import (
    parse_timestamp,
    render_quality_report,
    utc_timestamp,
)

NOW = 1_700_000_000.0


def run(name, created=0, merged=0, rels_created=0, rels_merged=0, error=None):
    return {
        "name": name,
        "seconds": 0.1,
        "nodes_created": created,
        "nodes_merged": merged,
        "relationships_created": rels_created,
        "relationships_merged": rels_merged,
        "error": error,
    }


def entry(label, *, age_seconds, runs, nodes=100, relationships=200,
          schema_ok=True, identical=False):
    return {
        "label": label,
        "created_at": utc_timestamp(lambda: NOW - age_seconds),
        "nodes": nodes,
        "relationships": relationships,
        "build": {
            "schema_ok": schema_ok,
            "crawler_errors": {},
            "crawler_runs": runs,
        },
        "delta": {"identical": identical},
    }


class TestTimestamps:
    def test_round_trip(self):
        text = utc_timestamp(lambda: NOW)
        assert parse_timestamp(text) == NOW

    def test_bad_timestamps_are_none(self):
        assert parse_timestamp("") is None
        assert parse_timestamp("last tuesday") is None


class TestCrawlerQuality:
    def test_agreement_is_the_merge_ratio(self):
        rows = crawler_quality(
            {"crawler_runs": [run("a", created=30, merged=10),
                              run("b", created=10, merged=30)]}
        )
        by_name = {row["crawler"]: row for row in rows}
        assert by_name["a"]["agreement"] == pytest.approx(0.25)
        assert by_name["b"]["agreement"] == pytest.approx(0.75)

    def test_shares_sum_to_one(self):
        rows = crawler_quality(
            {"crawler_runs": [run("a", created=60), run("b", created=40)]}
        )
        assert sum(row["node_share"] for row in rows) == pytest.approx(1.0)

    def test_missing_build_metadata_yields_nothing(self):
        assert crawler_quality(None) == []
        assert crawler_quality({}) == []


class TestArchiveQuality:
    def test_fresh_archive_is_not_stale(self):
        report = archive_quality(
            [entry("b1", age_seconds=3600, runs=[run("a", created=10)])],
            now=lambda: NOW,
        )
        assert report["latest"] == "b1"
        assert report["freshness_seconds"] == pytest.approx(3600, abs=1)
        assert report["stale"] is False

    def test_old_archive_is_stale(self):
        report = archive_quality(
            [entry("b1", age_seconds=30 * 86400, runs=[])],
            now=lambda: NOW,
        )
        assert report["stale"] is True

    def test_growth_is_tracked_between_entries(self):
        report = archive_quality(
            [
                entry("b1", age_seconds=7200, runs=[], nodes=100),
                entry("b2", age_seconds=3600, runs=[], nodes=150),
            ],
            now=lambda: NOW,
        )
        first, second = report["snapshots"]
        assert first["node_growth"] is None
        assert second["node_growth"] == 50

    def test_agreement_drop_flags_divergence(self):
        report = archive_quality(
            [
                entry("b1", age_seconds=7200,
                      runs=[run("steady", created=50, merged=50),
                            run("drifter", created=20, merged=80)]),
                entry("b2", age_seconds=3600,
                      runs=[run("steady", created=50, merged=50),
                            run("drifter", created=90, merged=10)]),
            ],
            now=lambda: NOW,
        )
        by_name = {row["crawler"]: row for row in report["crawlers"]}
        assert by_name["steady"]["diverging"] is False
        assert by_name["drifter"]["diverging"] is True
        assert report["problem_crawlers"] == ["drifter"]

    def test_erroring_crawler_is_a_problem(self):
        report = archive_quality(
            [entry("b1", age_seconds=60,
                   runs=[run("broken", created=1, error="Boom")])],
            now=lambda: NOW,
        )
        assert report["problem_crawlers"] == ["broken"]

    def test_empty_archive(self):
        report = archive_quality([], now=lambda: NOW)
        assert report["snapshots"] == []
        assert report["latest"] is None
        assert report["stale"] is False


class TestGaugesAndRendering:
    def test_gauges_carry_crawler_labels(self):
        report = archive_quality(
            [entry("b1", age_seconds=60, runs=[run("a", created=10, merged=10)])],
            now=lambda: NOW,
        )
        gauges = quality_gauges(report)
        names = {name for name, _, _ in gauges}
        assert "quality_snapshot_age_seconds" in names
        assert "quality_stale" in names
        labelled = [
            (name, value, labels)
            for name, value, labels in gauges
            if labels is not None
        ]
        assert all(labels == {"crawler": "a"} for _, _, labels in labelled)
        agreement = next(
            value for name, value, _ in labelled
            if name == "quality_crawler_agreement"
        )
        assert agreement == pytest.approx(0.5)

    def test_render_mentions_problems(self):
        report = archive_quality(
            [entry("b1", age_seconds=30 * 86400,
                   runs=[run("broken", created=1, error="Boom")])],
            now=lambda: NOW,
        )
        text = render_quality_report(report)
        assert "STALE" in text
        assert "ERROR" in text
        assert "attention: broken" in text

    def test_render_empty_report(self):
        text = render_quality_report(archive_quality([], now=lambda: NOW))
        assert "empty" in text
