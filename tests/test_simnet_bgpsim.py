"""The Gao-Rexford route-propagation simulator."""

import pytest

from repro.simnet import WorldConfig, build_world
from repro.simnet.bgpsim import _best_paths, is_valley_free


@pytest.fixture(scope="module")
def routed_world():
    return build_world(WorldConfig.small())


def _adjacency(world):
    providers_of = {a: set(i.providers) for a, i in world.ases.items()}
    peers_of = {a: set(i.peers) for a, i in world.ases.items()}
    customers_of = {a: set(i.customers) for a, i in world.ases.items()}
    return providers_of, peers_of, customers_of


class TestToyTopology:
    """A hand-built topology where every selected route is checkable.

        T1 --- T2          (tier-1 peering)
        |       |
        M1     M2          (mid providers, customers of the tier-1s)
        |       |
        E1     E2          (edges; E1 also peers with E2)
    """

    @pytest.fixture()
    def adjacency(self):
        providers_of = {"T1": [], "T2": [], "M1": ["T1"], "M2": ["T2"],
                        "E1": ["M1"], "E2": ["M2"]}
        peers_of = {"T1": ["T2"], "T2": ["T1"], "M1": [], "M2": [],
                    "E1": ["E2"], "E2": ["E1"]}
        customers_of = {"T1": ["M1"], "T2": ["M2"], "M1": ["E1"],
                        "M2": ["E2"], "E1": [], "E2": []}
        return providers_of, customers_of, peers_of

    def test_customer_route_preferred_over_peer(self, adjacency):
        providers_of, customers_of, peers_of = adjacency
        best = _best_paths("E2", providers_of, customers_of, peers_of)
        # E1 reaches E2 directly via its peer link (peer > provider).
        assert best["E1"] == ("E1", "E2")

    def test_provider_path_via_hierarchy(self, adjacency):
        providers_of, customers_of, peers_of = adjacency
        best = _best_paths("E1", providers_of, customers_of, peers_of)
        # M2 has no customer/peer route to E1; it must go through its
        # provider T2, across the tier-1 peering, and down.
        assert best["M2"] == ("M2", "T2", "T1", "M1", "E1")

    def test_origin_path_is_itself(self, adjacency):
        providers_of, customers_of, peers_of = adjacency
        best = _best_paths("E1", providers_of, customers_of, peers_of)
        assert best["E1"] == ("E1",)

    def test_all_reachable_in_connected_topology(self, adjacency):
        providers_of, customers_of, peers_of = adjacency
        best = _best_paths("E1", providers_of, customers_of, peers_of)
        assert set(best) == set(providers_of)


class TestWorldPropagation:
    def test_routing_state_attached(self, routed_world):
        assert routed_world.routing is not None
        assert routed_world.routing.collector_paths

    def test_paths_end_at_origin_and_start_at_source(self, routed_world):
        for (source, origin), path in list(
            routed_world.routing.collector_paths.items()
        )[:500]:
            assert path[0] == source
            assert path[-1] == origin

    def test_paths_follow_real_adjacencies(self, routed_world):
        providers_of, peers_of, customers_of = _adjacency(routed_world)
        for path in list(routed_world.routing.collector_paths.values())[:500]:
            for first, second in zip(path, path[1:], strict=False):
                assert (
                    second in providers_of[first]
                    or second in peers_of[first]
                    or second in customers_of[first]
                ), f"non-adjacent hop {first}->{second}"

    def test_paths_are_valley_free(self, routed_world):
        providers_of = {
            a: sorted(i.providers) for a, i in routed_world.ases.items()
        }
        peers_of = {a: sorted(i.peers) for a, i in routed_world.ases.items()}
        for path in list(routed_world.routing.collector_paths.values())[:500]:
            assert is_valley_free(path, providers_of, peers_of), path

    def test_no_loops(self, routed_world):
        for path in routed_world.routing.collector_paths.values():
            assert len(path) == len(set(path))

    def test_hegemony_bounds(self, routed_world):
        for scores in routed_world.routing.hegemony.values():
            for value in scores.values():
                assert 0.0 < value <= 1.0

    def test_tier1s_have_high_mean_hegemony(self, routed_world):
        tier1 = {
            asn
            for asn, info in routed_world.ases.items()
            if info.category == "Tier1"
        }
        mean_scores: dict[int, list[float]] = {}
        for scores in routed_world.routing.hegemony.values():
            for transit, value in scores.items():
                mean_scores.setdefault(transit, []).append(value)
        averages = {
            transit: sum(values) / len(routed_world.routing.hegemony)
            for transit, values in mean_scores.items()
        }
        top10 = sorted(averages, key=lambda t: -averages[t])[:10]
        assert tier1 & set(top10), "no tier-1 among the top transit ASes"

    def test_deterministic(self):
        first = build_world(WorldConfig.small(seed=55))
        second = build_world(WorldConfig.small(seed=55))
        assert first.routing.collector_paths == second.routing.collector_paths


class TestDatasetIntegration:
    def test_pch_paths_parse_and_load(self, routed_world):
        from repro.datasets.crawlers.pch import generate_routing_snapshot

        content = generate_routing_snapshot(routed_world)
        multi_hop = [
            line for line in content.splitlines() if " " in line.split("|")[1]
        ]
        assert multi_hop, "expected multi-hop AS paths in the PCH dump"

    def test_hegemony_from_routing(self, routed_world):
        import csv
        import io

        from repro.datasets.crawlers.ihr import generate_hegemony

        reader = csv.DictReader(io.StringIO(generate_hegemony(routed_world)))
        rows = list(reader)
        assert rows
        for row in rows[:200]:
            origin = int(row["originasn"])
            transit = int(row["asn"])
            assert transit in routed_world.routing.hegemony[origin]
