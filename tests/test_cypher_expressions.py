"""Expression evaluation: operators, three-valued logic, functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cypher import CypherEngine, CypherRuntimeError
from repro.cypher.values import (
    equals,
    hash_key,
    list_membership,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    sort_key,
)
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    return CypherEngine(GraphStore())


def evaluate(engine, expression, params=None):
    return engine.run(f"RETURN {expression} AS x", params).value()


class TestArithmetic:
    def test_basic(self, engine):
        assert evaluate(engine, "1 + 2 * 3") == 7
        assert evaluate(engine, "(1 + 2) * 3") == 9
        assert evaluate(engine, "7 % 3") == 1
        assert evaluate(engine, "2 ^ 10") == 1024.0

    def test_integer_division_truncates_toward_zero(self, engine):
        assert evaluate(engine, "7 / 2") == 3
        assert evaluate(engine, "-7 / 2") == -3

    def test_float_division(self, engine):
        assert evaluate(engine, "7.0 / 2") == 3.5

    def test_division_by_zero(self, engine):
        with pytest.raises(CypherRuntimeError):
            evaluate(engine, "1 / 0")

    def test_unary_minus(self, engine):
        assert evaluate(engine, "-(3 + 4)") == -7

    def test_string_concat(self, engine):
        assert evaluate(engine, "'a' + 'b'") == "ab"

    def test_list_concat(self, engine):
        assert evaluate(engine, "[1] + [2, 3]") == [1, 2, 3]

    def test_string_plus_number_raises(self, engine):
        with pytest.raises(CypherRuntimeError):
            evaluate(engine, "'a' + 1")


class TestNullPropagation:
    def test_arithmetic_with_null(self, engine):
        assert evaluate(engine, "1 + null") is None

    def test_comparison_with_null(self, engine):
        assert evaluate(engine, "1 = null") is None
        assert evaluate(engine, "null = null") is None
        assert evaluate(engine, "1 < null") is None

    def test_is_null(self, engine):
        assert evaluate(engine, "null IS NULL") is True
        assert evaluate(engine, "1 IS NOT NULL") is True

    def test_where_filters_null(self, engine):
        result = engine.run("UNWIND [1, null, 2] AS x WITH x WHERE x > 0 RETURN x")
        assert result.column() == [1, 2]


class TestStringOperators:
    def test_starts_ends_contains(self, engine):
        assert evaluate(engine, "'RPKI Invalid,more-specific' STARTS WITH 'RPKI Invalid'")
        assert evaluate(engine, "'example.com' ENDS WITH '.com'")
        assert evaluate(engine, "'abcdef' CONTAINS 'cde'")

    def test_regex(self, engine):
        assert evaluate(engine, "'rrc00' =~ 'rrc[0-9]+'") is True
        assert evaluate(engine, "'rrc00x' =~ 'rrc[0-9]+'") is False

    def test_case_functions(self, engine):
        assert evaluate(engine, "toUpper('abc')") == "ABC"
        assert evaluate(engine, "toLower('ABC')") == "abc"

    def test_split_replace_substring(self, engine):
        assert evaluate(engine, "split('a.b.c', '.')") == ["a", "b", "c"]
        assert evaluate(engine, "replace('10.0.0.0', '.', '-')") == "10-0-0-0"
        assert evaluate(engine, "substring('abcdef', 1, 3)") == "bcd"


class TestListsAndMaps:
    def test_index(self, engine):
        assert evaluate(engine, "[10, 20, 30][1]") == 20
        assert evaluate(engine, "[10, 20, 30][-1]") == 30
        assert evaluate(engine, "[10][5]") is None

    def test_slice(self, engine):
        assert evaluate(engine, "[1,2,3,4][1..3]") == [2, 3]

    def test_map_access(self, engine):
        assert evaluate(engine, "{a: 1}.a") == 1
        assert evaluate(engine, "{a: 1}['a']") == 1

    def test_in(self, engine):
        assert evaluate(engine, "2 IN [1, 2]") is True
        assert evaluate(engine, "5 IN [1, 2]") is False

    def test_in_null_semantics(self, engine):
        assert evaluate(engine, "null IN [1]") is None
        assert evaluate(engine, "5 IN [1, null]") is None
        assert evaluate(engine, "1 IN [1, null]") is True

    def test_comprehension(self, engine):
        assert evaluate(engine, "[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]") == [20, 40]

    def test_size_head_last_tail(self, engine):
        assert evaluate(engine, "size([1,2,3])") == 3
        assert evaluate(engine, "head([1,2])") == 1
        assert evaluate(engine, "last([1,2])") == 2
        assert evaluate(engine, "tail([1,2,3])") == [2, 3]

    def test_range(self, engine):
        assert evaluate(engine, "range(1, 4)") == [1, 2, 3, 4]
        assert evaluate(engine, "range(0, 10, 5)") == [0, 5, 10]

    def test_coalesce(self, engine):
        assert evaluate(engine, "coalesce(null, null, 3)") == 3
        assert evaluate(engine, "coalesce(null)") is None


class TestCase:
    def test_searched(self, engine):
        assert evaluate(engine, "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END") == "b"

    def test_simple(self, engine):
        assert evaluate(engine, "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"

    def test_default(self, engine):
        assert evaluate(engine, "CASE WHEN false THEN 1 ELSE 99 END") == 99

    def test_no_match_no_default_is_null(self, engine):
        assert evaluate(engine, "CASE WHEN false THEN 1 END") is None


class TestConversionsAndMath:
    def test_to_integer(self, engine):
        assert evaluate(engine, "toInteger('42')") == 42
        assert evaluate(engine, "toInteger('x')") is None
        assert evaluate(engine, "toInteger(3.9)") == 3

    def test_to_float_and_string(self, engine):
        assert evaluate(engine, "toFloat('2.5')") == 2.5
        assert evaluate(engine, "toString(42)") == "42"
        assert evaluate(engine, "toString(true)") == "true"

    def test_rounding(self, engine):
        assert evaluate(engine, "round(2.5678, 2)") == 2.57
        assert evaluate(engine, "abs(-3)") == 3
        assert evaluate(engine, "floor(2.7)") == 2.0
        assert evaluate(engine, "ceil(2.1)") == 3.0
        assert evaluate(engine, "sqrt(16)") == 4.0

    def test_unknown_function(self, engine):
        with pytest.raises(CypherRuntimeError):
            evaluate(engine, "frobnicate(1)")


class TestParameters:
    def test_parameter_value(self, engine):
        assert evaluate(engine, "$x + 1", {"x": 41}) == 42

    def test_missing_parameter(self, engine):
        with pytest.raises(CypherRuntimeError):
            evaluate(engine, "$missing")


class TestGraphFunctions:
    def test_labels_type_id(self):
        store = GraphStore()
        a = store.create_node({"AS", "Tag"}, {"asn": 1})
        b = store.create_node({"AS"}, {"asn": 2})
        store.create_relationship(a.id, "PEERS_WITH", b.id)
        engine = CypherEngine(store)
        row = engine.run(
            "MATCH (a {asn:1})-[r]->(b) RETURN labels(a) AS l, type(r) AS t, "
            "id(a) AS i, keys(a) AS k, properties(b) AS p, "
            "startNode(r).asn AS s, endNode(r).asn AS e"
        ).single()
        assert row["l"] == ["AS", "Tag"]
        assert row["t"] == "PEERS_WITH"
        assert row["i"] == a.id
        assert row["k"] == ["asn"]
        assert row["p"] == {"asn": 2}
        assert row["s"] == 1 and row["e"] == 2

    def test_missing_property_is_null(self):
        store = GraphStore()
        store.create_node({"AS"}, {"asn": 1})
        engine = CypherEngine(store)
        assert engine.run("MATCH (a:AS) RETURN a.nonexistent").value() is None


# ---------------------------------------------------------------------------
# Three-valued logic properties
# ---------------------------------------------------------------------------

_tri = st.sampled_from([True, False, None])


@given(_tri, _tri)
def test_property_de_morgan(a, b):
    assert logical_not(logical_and(a, b)) == logical_or(
        logical_not(a), logical_not(b)
    )


@given(_tri, _tri)
def test_property_and_or_commutative(a, b):
    assert logical_and(a, b) == logical_and(b, a)
    assert logical_or(a, b) == logical_or(b, a)


@given(_tri)
def test_property_double_negation(a):
    assert logical_not(logical_not(a)) == a


@given(_tri, _tri)
def test_property_xor_null_propagates(a, b):
    result = logical_xor(a, b)
    if a is None or b is None:
        assert result is None
    else:
        assert result == (a != b)


_vals = st.one_of(
    st.none(), st.booleans(), st.integers(-5, 5), st.floats(-5, 5, allow_nan=False),
    st.text(max_size=3), st.lists(st.integers(-2, 2), max_size=3),
)


@given(_vals, _vals)
def test_property_equals_consistent_with_hash_key(a, b):
    """If Cypher says two values are equal, they must group together."""
    if equals(a, b) is True:
        assert hash_key(a) == hash_key(b)


@given(st.lists(_vals, min_size=1, max_size=6))
def test_property_sort_key_total_order(values):
    keys = [sort_key(v) for v in values]
    assert sorted(keys) == sorted(sorted(keys))  # comparable without error


@given(_vals, st.lists(_vals, max_size=4))
def test_property_in_membership_sound(item, container):
    verdict = list_membership(item, container)
    if verdict is True:
        assert any(equals(item, element) is True for element in container)
