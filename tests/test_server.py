"""End-to-end tests for the HTTP query service.

A real ``IYPHTTPServer`` is bound to an ephemeral port and exercised
over sockets — the same path a user's ``curl`` takes.  Two servers are
used: a module-scoped one over the shared (read-only!) ``small_iyp``
fixture, and a function-scoped one over a scratch store for everything
that mutates, times out, or trips limits.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.graphdb import GraphStore
from repro.server import QueryService, create_server
from repro.studies.queries import LISTING_1, LISTING_2

# ---------------------------------------------------------------------------
# plumbing
# ---------------------------------------------------------------------------


def _request(method: str, url: str, body=None):
    """Issue one HTTP request; returns (status, decoded JSON body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url):
    return _request("GET", url)


def _post_query(base: str, query: str, **fields):
    return _request("POST", f"{base}/query", {"query": query, **fields})


def _serve(service: QueryService):
    """Bind an ephemeral port and serve from a daemon thread."""
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture(scope="module")
def iyp_server(small_iyp):
    """An HTTP server over the session's built knowledge graph.

    The underlying store is shared with every other test — the queries
    sent here must all be reads.
    """
    service = QueryService(small_iyp.store)
    server, base = _serve(service)
    yield base, service, small_iyp
    server.shutdown()
    server.server_close()


@pytest.fixture()
def scratch_server():
    """A private small store: safe to mutate, abort, and overload."""
    store = GraphStore()
    store.create_index("AS", "asn")
    for asn in range(64500, 64520):
        store.create_node({"AS"}, {"asn": asn})
    # A dense 10-clique so variable-length queries can burn arbitrary
    # CPU — the raw material for the timeout test.
    dense = [store.create_node({"Dense"}, {"i": i}) for i in range(10)]
    for a in dense:
        for b in dense:
            if a.id < b.id:
                store.create_relationship(a.id, "LINK", b.id)
    service = QueryService(store, max_concurrent=2, cache_size=32)
    server, base = _serve(service)
    yield base, service, store
    server.shutdown()
    server.server_close()


# ---------------------------------------------------------------------------
# read-only endpoints over the built graph
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_healthz(self, iyp_server):
        base, _, iyp = iyp_server
        status, body = _get(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["nodes"] == iyp.store.node_count
        assert body["relationships"] == iyp.store.relationship_count

    def test_stats(self, iyp_server):
        base, _, iyp = iyp_server
        status, body = _get(f"{base}/stats")
        assert status == 200
        assert body["graph"]["nodes"] == iyp.store.node_count
        assert body["graph"]["labels"]["AS"] > 0
        assert ["AS", "asn"] in body["graph"]["indexes"]
        assert body["result_cache"]["maxsize"] > 0
        assert body["admission"]["max_concurrent"] == 8
        assert body["uptime_seconds"] >= 0

    def test_ontology(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _get(f"{base}/ontology")
        assert status == 200
        labels = {entity["label"] for entity in body["entities"]}
        assert "AS" in labels and "Prefix" in labels
        assert len(body["entities"]) == 24  # Table 6 of the paper
        types = {rel["type"] for rel in body["relationships"]}
        assert "ORIGINATE" in types and "DEPENDS_ON" in types

    def test_explain(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _get(
            f"{base}/explain?q=MATCH%20(a:AS%20%7Basn:%202497%7D)%20RETURN%20a"
        )
        assert status == 200
        assert "plan" in body and body["plan"]

    def test_explain_requires_query(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _get(f"{base}/explain")
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_metrics_text_format(self, iyp_server):
        base, _, _ = iyp_server
        _post_query(base, "MATCH (a:AS) RETURN count(a)")
        response = urllib.request.urlopen(f"{base}/metrics", timeout=30)
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_store_nodes " in text
        assert "repro_query_latency_seconds_bucket" in text

    def test_unknown_route_is_404(self, iyp_server):
        base, _, _ = iyp_server
        assert _get(f"{base}/nope")[0] == 404
        assert _request("POST", f"{base}/nope", {"query": "RETURN 1"})[0] == 404

    def test_malformed_body_is_400(self, iyp_server):
        base, _, _ = iyp_server
        request = urllib.request.Request(
            f"{base}/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

    def test_empty_query_is_400(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(base, "   ")
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_syntax_error_is_400(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(base, "MATCH (a:AS RETURN a")
        assert status == 400
        assert body["error"]["code"] == "syntax_error"
        assert body["error"]["status"] == 400


# ---------------------------------------------------------------------------
# paper listings: the HTTP path must match the in-process engine
# ---------------------------------------------------------------------------


class TestListingEquivalence:
    @pytest.mark.parametrize(
        "listing", [LISTING_1, LISTING_2], ids=["listing1", "listing2"]
    )
    def test_listing_matches_in_process(self, iyp_server, listing):
        base, _, iyp = iyp_server
        status, body = _post_query(base, listing)
        assert status == 200
        local = iyp.run(listing)
        assert body["columns"] == list(local.columns)
        served = sorted(row[0] for row in body["rows"])
        direct = sorted(record[local.columns[0]] for record in local.records)
        assert served == direct
        assert body["row_count"] == len(local.records)

    def test_parameterized_query(self, iyp_server):
        base, _, iyp = iyp_server
        asn = iyp.run("MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 1")[0]["a.asn"]
        status, body = _post_query(
            base,
            "MATCH (a:AS {asn: $asn}) RETURN a.asn",
            parameters={"asn": asn},
        )
        assert status == 200
        assert body["rows"] == [[asn]]

    def test_node_encoding(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(base, "MATCH (a:AS) RETURN a LIMIT 1")
        assert status == 200
        node = body["rows"][0][0]
        assert node["_type"] == "node"
        assert "AS" in node["labels"]
        assert "asn" in node["properties"]


# ---------------------------------------------------------------------------
# caching, invalidation, and writes (scratch store only)
# ---------------------------------------------------------------------------


class TestCachingAndWrites:
    QUERY = "MATCH (a:AS) RETURN count(a) AS n"

    def test_repeat_query_is_cached(self, scratch_server):
        base, _, _ = scratch_server
        _, first = _post_query(base, self.QUERY)
        _, second = _post_query(base, self.QUERY)
        assert first["meta"]["cached"] is False
        assert second["meta"]["cached"] is True
        assert second["rows"] == first["rows"]

    def test_write_bumps_version_and_invalidates(self, scratch_server):
        base, service, store = scratch_server
        _, before = _post_query(base, self.QUERY)
        _post_query(base, self.QUERY)  # warm the cache
        version_before = store.version

        status, write = _post_query(base, "CREATE (a:AS {asn: 65000})")
        assert status == 200
        assert write["stats"]["nodes_created"] == 1
        assert write["meta"]["cached"] is False
        assert store.version > version_before

        status, after = _post_query(base, self.QUERY)
        assert status == 200
        assert after["meta"]["cached"] is False  # old entry is dead
        assert after["rows"][0][0] == before["rows"][0][0] + 1
        assert after["meta"]["store_version"] > before["meta"]["store_version"]

    def test_distinct_parameters_not_conflated(self, scratch_server):
        base, _, _ = scratch_server
        query = "MATCH (a:AS {asn: $asn}) RETURN a.asn"
        _, one = _post_query(base, query, parameters={"asn": 64500})
        _, two = _post_query(base, query, parameters={"asn": 64501})
        assert one["rows"] == [[64500]]
        assert two["rows"] == [[64501]]


# ---------------------------------------------------------------------------
# admission control: timeout, row limit, busy — and staying alive
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_timeout_returns_408(self, scratch_server):
        base, _, _ = scratch_server
        status, body = _post_query(
            base,
            "MATCH (a:Dense)-[:LINK*1..9]-(b:Dense) RETURN count(*)",
            timeout=0.05,
        )
        assert status == 408
        assert body["error"]["code"] == "timeout"
        assert "time budget" in body["error"]["message"]

    def test_row_limit_returns_413(self, scratch_server):
        base, _, _ = scratch_server
        status, body = _post_query(
            base, "MATCH (a:AS) RETURN a.asn", max_rows=3
        )
        assert status == 413
        assert body["error"]["code"] == "row_limit"

    def test_limit_clause_within_budget_is_fine(self, scratch_server):
        base, _, _ = scratch_server
        status, body = _post_query(
            base, "MATCH (a:AS) RETURN a.asn LIMIT 3", max_rows=3
        )
        assert status == 200
        assert body["row_count"] == 3

    def test_busy_returns_429(self, scratch_server):
        base, service, _ = scratch_server
        # Fill every admission slot from the outside, then knock.
        with service.admission.slot(), service.admission.slot():
            status, body = _post_query(base, "MATCH (a:AS) RETURN count(a)")
        assert status == 429
        assert body["error"]["code"] == "busy"
        assert service.admission.rejected >= 1

    def test_errors_do_not_poison_cache_or_server(self, scratch_server):
        base, service, _ = scratch_server
        query = "MATCH (a:AS) RETURN a.asn"
        assert _post_query(base, query, max_rows=2)[0] == 413
        assert _post_query(base, "MATCH (x:AS RETURN", timeout=1)[0] == 400
        # Same query text, no limit: must execute fresh, not replay an error.
        status, body = _post_query(base, query)
        assert status == 200
        assert body["meta"]["cached"] is False
        assert body["row_count"] == 20
        # And now it is cached like any healthy result.
        assert _post_query(base, query)[1]["meta"]["cached"] is True
        errors = service.metrics.counter_total("query_errors_total")
        assert errors >= 2

    def test_aborted_queries_land_in_slowlog(self, scratch_server):
        base, service, _ = scratch_server
        service.slowlog.clear()
        status, _ = _post_query(base, "MATCH (a:AS) RETURN a.asn", max_rows=3)
        assert status == 413
        entries = service.slowlog.snapshot()["entries"]
        assert entries[-1]["error"] == "row_limit"
        assert entries[-1]["query"] == "MATCH (a:AS) RETURN a.asn"

    def test_parallel_readers_all_succeed(self, iyp_server):
        base, service, _ = iyp_server
        results: list[int] = []

        def hit():
            status, _ = _post_query(
                base, "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(*)"
            )
            results.append(status)

        threads = [threading.Thread(target=hit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [200] * 6


# ---------------------------------------------------------------------------
# observability: tracing, PROFILE, slow-query log
# ---------------------------------------------------------------------------


def _span_names(tree):
    yield tree["name"]
    for child in tree["children"]:
        yield from _span_names(child)


class TestTracing:
    def test_query_returns_resolvable_trace_id(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(base, "MATCH (a:AS) RETURN count(a) AS n")
        assert status == 200
        trace_id = body["meta"]["trace_id"]
        status, trace = _get(f"{base}/debug/trace?id={trace_id}")
        assert status == 200
        assert trace["trace_id"] == trace_id
        names = set(_span_names(trace["spans"]))
        assert {"request", "admission", "parse", "execute"} <= names

    def test_cached_hit_still_traced(self, iyp_server):
        base, service, _ = iyp_server
        query = "MATCH (p:Prefix) RETURN count(p) AS n"
        _post_query(base, query)
        status, body = _post_query(base, query)
        assert body["meta"]["cached"] is True
        _, trace = _get(f"{base}/debug/trace?id={body['meta']['trace_id']}")
        names = set(_span_names(trace["spans"]))
        assert "cache_lookup" in names
        assert "execute" not in names  # served from the cache

    def test_traces_listing(self, iyp_server):
        base, _, _ = iyp_server
        _, body = _post_query(base, "MATCH (a:AS) RETURN count(a)")
        status, listing = _get(f"{base}/debug/traces")
        assert status == 200
        assert listing["enabled"] is True
        assert body["meta"]["trace_id"] in listing["trace_ids"]

    def test_unknown_trace_is_404(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _get(f"{base}/debug/trace?id=0000000000000000")
        assert status == 404
        assert body["error"]["code"] == "unknown_trace"

    def test_tracing_disabled_omits_trace_id(self, small_iyp):
        service = QueryService(small_iyp.store, tracing=False)
        body = service.execute("MATCH (a:AS) RETURN count(a)")
        assert "trace_id" not in body["meta"]
        assert service.tracer.trace_ids() == []


class TestProfileEndpoint:
    @pytest.mark.parametrize(
        "listing", [LISTING_1, LISTING_2], ids=["listing1", "listing2"]
    )
    def test_profile_returns_operator_tree(self, iyp_server, listing):
        base, _, _ = iyp_server
        status, body = _request("POST", f"{base}/profile", {"query": listing})
        assert status == 200
        plan = body["profile"]["plan"]
        assert plan["operator"] == "Query"
        assert plan["rows"] == body["row_count"]
        operators = {child["operator"] for child in plan["children"]}
        assert "Match" in operators
        for child in plan["children"]:
            assert child["time_ms"] >= 0
        match = next(c for c in plan["children"] if c["operator"] == "Match")
        assert match["hits"]  # store hits recorded and attributed
        assert body["profile"]["render"][0].startswith("+Query")

    def test_profile_bypasses_cache(self, iyp_server):
        base, _, _ = iyp_server
        query = "MATCH (a:AS) RETURN count(a) AS n"
        _post_query(base, query)  # warm the result cache
        status, body = _request("POST", f"{base}/profile", {"query": query})
        assert status == 200
        assert body["meta"]["cached"] is False
        assert "profile" in body

    def test_plain_query_has_no_profile_section(self, iyp_server):
        base, _, _ = iyp_server
        _, body = _post_query(base, "MATCH (a:AS) RETURN count(a) AS n2")
        assert "profile" not in body


class TestSlowlogEndpoint:
    def test_slow_query_is_recorded_with_plan(self, small_iyp):
        service = QueryService(small_iyp.store, slow_query_seconds=0.0)
        body = service.execute("MATCH (a:AS) RETURN count(a)")
        snapshot = service.slowlog_snapshot()
        assert snapshot["threshold_seconds"] == 0.0
        entry = snapshot["entries"][-1]
        assert entry["query"] == "MATCH (a:AS) RETURN count(a)"
        assert entry["trace_id"] == body["meta"]["trace_id"]
        assert entry["plan"]["operator"] == "Query"
        assert service.metrics.counter_total("slow_queries_total") >= 1

    def test_fast_queries_not_recorded(self, iyp_server):
        base, service, _ = iyp_server
        before = service.slowlog.recorded_total
        _post_query(base, "MATCH (a:AS) RETURN count(a) AS n3")
        assert service.slowlog.recorded_total == before  # threshold is 1s

    def test_slowlog_endpoint_shape(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _get(f"{base}/debug/slowlog")
        assert status == 200
        assert set(body) == {
            "threshold_seconds", "capacity", "recorded_total", "entries",
        }


class TestObservabilityMetrics:
    def test_new_gauges_exposed(self, iyp_server):
        base, _, _ = iyp_server
        _post_query(base, "MATCH (a:AS) RETURN count(a)")
        text = urllib.request.urlopen(f"{base}/metrics", timeout=30).read().decode()
        for gauge in (
            "repro_parse_cache_hits_total",
            "repro_parse_cache_misses_total",
            "repro_result_cache_hits_total",
            "repro_result_cache_misses_total",
            "repro_result_cache_evictions_total",
            "repro_slowlog_entries",
            "repro_slowlog_recorded_total",
            "repro_traces_buffered",
        ):
            assert f"# TYPE {gauge} gauge" in text

    def test_stats_include_tracer_and_slowlog(self, iyp_server):
        base, _, _ = iyp_server
        _, body = _get(f"{base}/stats")
        assert body["tracer"]["enabled"] is True
        assert body["tracer"]["traces_buffered"] >= 1
        assert body["slowlog"]["threshold_seconds"] == 1.0


class TestLintEndpoint:
    def test_lint_reports_diagnostics(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _request(
            "POST", f"{base}/lint", {"query": "MATCH (a:ASN) RETURN a"}
        )
        assert status == 200
        assert body["ok"] is False and body["strict_ok"] is False
        (finding,) = body["diagnostics"]
        assert finding["code"] == "LNT001"
        assert finding["severity"] == "error"
        assert finding["line"] == 1 and finding["column"] == 10

    def test_lint_clean_query(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _request("POST", f"{base}/lint", {"query": LISTING_1})
        assert status == 200
        assert body["ok"] is True and body["strict_ok"] is True
        assert body["diagnostics"] == []

    def test_lint_never_executes(self, iyp_server):
        base, service, iyp = iyp_server
        before = iyp.store.node_count
        status, body = _request(
            "POST", f"{base}/lint",
            {"query": "CREATE (t:Tag {label: 'lint-side-effect'}) RETURN t"},
        )
        assert status == 200
        assert iyp.store.node_count == before

    def test_lint_empty_query_is_400(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _request("POST", f"{base}/lint", {"query": "  "})
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_lint_counts_metrics(self, iyp_server):
        base, service, _ = iyp_server
        _request("POST", f"{base}/lint", {"query": "MATCH (a:ASN) RETURN a"})
        text = service.metrics_text()
        assert 'repro_lint_diagnostics_total{severity="error"}' in text


class TestQueryWarnings:
    def test_meta_warnings_on_suspicious_query(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(
            base, "MATCH (a:AS) WHERE a.asn = '2497' RETURN a.asn"
        )
        assert status == 200
        warnings = body["meta"]["warnings"]
        assert any(w["code"] == "LNT009" for w in warnings)

    def test_no_warnings_key_on_clean_query(self, iyp_server):
        base, _, _ = iyp_server
        status, body = _post_query(base, LISTING_2)
        assert status == 200
        assert "warnings" not in body["meta"]

    def test_explain_carries_warnings(self, iyp_server):
        base, _, _ = iyp_server
        from urllib.parse import quote

        query = "MATCH (a:AS) RETURN b.asn"
        status, body = _get(f"{base}/explain?q={quote(query)}")
        assert status == 200
        assert isinstance(body["plan"], list) and body["plan"]
        assert any(w["code"] == "LNT007" for w in body["warnings"])

    def test_explain_clean_query_has_empty_warnings(self, iyp_server):
        base, _, _ = iyp_server
        from urllib.parse import quote

        status, body = _get(f"{base}/explain?q={quote(LISTING_1)}")
        assert status == 200
        assert body["warnings"] == []
