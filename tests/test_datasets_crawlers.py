"""Per-crawler tests: native-format parsing and correct graph loading.

Each test feeds a crawler a small hand-written file in the source's
native format (via StaticFetcher) and checks the nodes/links it creates
— this is independent of the synthetic world, so it pins down the
parsers themselves.
"""

import json

import pytest

from repro.core import IYP
from repro.datasets.base import FetchError, StaticFetcher
from repro.datasets.crawlers import (
    apnic,
    bgpkit,
    bgptools,
    caida,
    cisco,
    citizenlab,
    cloudflare,
    emileaben,
    ihr,
    inetintel,
    nro,
    openintel,
    pch,
    peeringdb,
    ripe,
    rovista,
    simulamet,
    stanford,
    tranco,
    worldbank,
)


@pytest.fixture()
def iyp():
    return IYP()


def run_crawler(crawler_cls, iyp, url, content, *args):
    fetcher = StaticFetcher({url: content})
    crawler = crawler_cls(iyp, fetcher, *args)
    crawler.run()
    return crawler


class TestBGPKit:
    def test_pfx2as(self, iyp):
        content = json.dumps(
            [
                {"prefix": "10.0.0.0/8", "asn": 1, "count": 4},
                {"prefix": "2001:DB8::/32", "asn": 2, "count": 1},
            ]
        )
        run_crawler(bgpkit.PrefixToASNCrawler, iyp, bgpkit.PFX2AS_URL, content)
        assert iyp.run("MATCH (:AS)-[:ORIGINATE]->(:Prefix) RETURN count(*)").value() == 2
        # Canonicalization applied on load.
        assert iyp.run(
            "MATCH (p:Prefix {prefix:'2001:db8::/32'}) RETURN count(p)"
        ).value() == 1

    def test_pfx2as_link_has_provenance(self, iyp):
        content = json.dumps([{"prefix": "10.0.0.0/8", "asn": 1, "count": 4}])
        run_crawler(bgpkit.PrefixToASNCrawler, iyp, bgpkit.PFX2AS_URL, content)
        rel = next(iyp.store.iter_relationships())
        assert rel.properties["reference_name"] == "bgpkit.pfx2as"
        assert rel.properties["reference_org"] == "BGPKIT"
        assert rel.properties["count"] == 4

    def test_as2rel(self, iyp):
        content = json.dumps([{"asn1": 1, "asn2": 2, "rel": 0}])
        run_crawler(bgpkit.ASRelCrawler, iyp, bgpkit.AS2REL_URL, content)
        row = iyp.run("MATCH (:AS)-[r:PEERS_WITH]->(:AS) RETURN r.rel").value()
        assert row == 0

    def test_peer_stats(self, iyp):
        content = json.dumps([{"collector": "rrc00", "asn": 7018}])
        run_crawler(bgpkit.PeerStatsCrawler, iyp, bgpkit.PEER_STATS_URL, content)
        assert iyp.run(
            "MATCH (:AS {asn:7018})-[:PEERS_WITH]->(c:BGPCollector) RETURN c.name"
        ).value() == "rrc00"


class TestCAIDA:
    def test_asrank(self, iyp):
        content = json.dumps(
            {
                "data": {
                    "asns": {
                        "edges": [
                            {
                                "node": {
                                    "asn": "2914",
                                    "asnName": "NTT",
                                    "rank": 5,
                                    "organization": {"orgName": "NTT Ltd"},
                                    "country": {"iso": "JP"},
                                    "cone": {"numberAsns": 100},
                                }
                            }
                        ]
                    }
                }
            }
        )
        run_crawler(caida.ASRankCrawler, iyp, caida.ASRANK_URL, content)
        row = iyp.run(
            "MATCH (a:AS {asn:2914})-[r:RANK]->(k:Ranking) RETURN r.rank, k.name"
        ).single()
        assert row["r.rank"] == 5 and row["k.name"] == "CAIDA ASRank"
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:COUNTRY]->(c:Country) RETURN c.country_code"
        ).value() == "JP"

    def test_ixs(self, iyp):
        content = json.dumps(
            {"ix_id": 1000, "name": "AMS-IX", "country": "NL", "pdb_id": 26}
        )
        run_crawler(caida.IXsCrawler, iyp, caida.IXS_URL, content)
        assert iyp.run(
            "MATCH (:IXP {name:'AMS-IX'})-[:EXTERNAL_ID]->(i:CaidaIXID) RETURN i.id"
        ).value() == 1000


class TestIHR:
    def test_rov_tags_and_origins(self, iyp):
        content = (
            "prefix,origin,rpki_status,irr_status\n"
            "10.0.0.0/8,1,Valid,Valid\n"
            "10.1.0.0/16,2,\"Invalid,more-specific\",NotFound\n"
        )
        run_crawler(ihr.ROVCrawler, iyp, ihr.ROV_URL, content)
        assert iyp.run(
            "MATCH (:Prefix {prefix:'10.0.0.0/8'})-[:CATEGORIZED]->(t:Tag) "
            "RETURN collect(t.label)"
        ).value() == ["RPKI Valid", "IRR Valid"]
        assert iyp.run(
            "MATCH (p:Prefix)-[:CATEGORIZED]->(t:Tag) "
            "WHERE t.label STARTS WITH 'RPKI Invalid' RETURN p.prefix"
        ).value() == "10.1.0.0/16"

    def test_hegemony(self, iyp):
        content = "timebin,originasn,asn,hege\n2024-05-01,1,2914,0.8\n"
        run_crawler(ihr.HegemonyCrawler, iyp, ihr.HEGEMONY_URL, content)
        assert iyp.run(
            "MATCH (:AS {asn:1})-[d:DEPENDS_ON]->(:AS {asn:2914}) RETURN d.hege"
        ).value() == 0.8

    def test_country_dependency(self, iyp):
        content = "country,asn,hege\nNL,2914,0.5\n"
        run_crawler(ihr.CountryDependencyCrawler, iyp, ihr.COUNTRY_DEP_URL, content)
        assert iyp.run(
            "MATCH (:Country {country_code:'NL'})-[:DEPENDS_ON]->(a:AS) RETURN a.asn"
        ).value() == 2914


class TestRIPE:
    def test_as_names(self, iyp):
        content = "2914 NTT-COMMUNICATIONS, JP\n7018 ATT-INTERNET4, US\n"
        run_crawler(ripe.ASNamesCrawler, iyp, ripe.ASNAMES_URL, content)
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:NAME]->(n:Name) RETURN n.name"
        ).value() == "NTT-COMMUNICATIONS"
        assert iyp.run(
            "MATCH (:AS {asn:7018})-[:COUNTRY]->(c) RETURN c.country_code"
        ).value() == "US"

    def test_rpki_roas(self, iyp):
        content = json.dumps(
            {"roas": [{"asn": "AS2914", "prefix": "10.0.0.0/8", "maxLength": 10, "ta": "apnic"}]}
        )
        run_crawler(ripe.RPKICrawler, iyp, ripe.RPKI_URL, content)
        row = iyp.run(
            "MATCH (a:AS)-[r:ROUTE_ORIGIN_AUTHORIZATION]->(p:Prefix) "
            "RETURN a.asn, r.maxLength, p.prefix"
        ).single()
        assert row == {"a.asn": 2914, "r.maxLength": 10, "p.prefix": "10.0.0.0/8"}

    def test_atlas_probes(self, iyp):
        content = json.dumps(
            {
                "count": 1,
                "results": [
                    {
                        "id": 42,
                        "asn_v4": 2914,
                        "address_v4": "10.0.0.9",
                        "country_code": "JP",
                        "status": {"name": "Connected"},
                        "tags": [{"slug": "home"}],
                    }
                ],
            }
        )
        run_crawler(ripe.AtlasProbesCrawler, iyp, ripe.ATLAS_PROBES_URL, content)
        row = iyp.run(
            "MATCH (p:AtlasProbe {id:42})-[:ASSIGNED]->(i:IP) RETURN i.ip, p.status"
        ).single()
        assert row["i.ip"] == "10.0.0.9" and row["p.status"] == "Connected"

    def test_atlas_measurements(self, iyp):
        content = json.dumps(
            {
                "count": 1,
                "results": [
                    {
                        "id": 10000001,
                        "type": "ping",
                        "target": "example.com",
                        "target_is_ip": False,
                        "af": 4,
                        "probes": [{"id": 42}],
                    }
                ],
            }
        )
        run_crawler(
            ripe.AtlasMeasurementsCrawler, iyp, ripe.ATLAS_MEASUREMENTS_URL, content
        )
        assert iyp.run(
            "MATCH (m:AtlasMeasurement)-[:TARGET]->(h:HostName) RETURN h.name"
        ).value() == "example.com"
        assert iyp.run(
            "MATCH (:AtlasProbe {id:42})-[:PART_OF]->(m:AtlasMeasurement) RETURN m.id"
        ).value() == 10000001


class TestNRO:
    CONTENT = "\n".join(
        [
            "2|nro|20240501|0|19840101|20240501|+0000",
            "arin|US|asn|7018|1|20000101|allocated|arin-att",
            "ripencc|NL|ipv4|193.0.0.0|65536|20000101|allocated|ripencc-ncc",
            "apnic|JP|ipv6|2001:db8::|32|20000101|allocated|apnic-x",
            "arin|ZZ|ipv4|10.0.0.0|16777216|20000101|reserved|iana-private",
        ]
    )

    def test_delegations(self, iyp):
        run_crawler(nro.DelegatedStatsCrawler, iyp, nro.DELEGATED_URL, self.CONTENT)
        assert iyp.run(
            "MATCH (:AS {asn:7018})-[:ASSIGNED]->(o:OpaqueID) RETURN o.id"
        ).value() == "arin-att"
        # 65536 addresses -> /16
        assert iyp.run(
            "MATCH (p:Prefix {prefix:'193.0.0.0/16'})-[:COUNTRY]->(c) "
            "RETURN c.country_code"
        ).value() == "NL"
        assert iyp.run(
            "MATCH (p:Prefix {prefix:'2001:db8::/32'})-[:ASSIGNED]->(o) RETURN o.id"
        ).value() == "apnic-x"
        # Reserved space gets RESERVED, and ZZ country is skipped.
        assert iyp.run(
            "MATCH (p:Prefix {prefix:'10.0.0.0/8'})-[:RESERVED]->(o) RETURN o.id"
        ).value() == "iana-private"


class TestOpenINTEL:
    def test_tranco1m_resolutions(self, iyp):
        lines = [
            json.dumps({"query_name": "example.com", "response_type": "A",
                        "response_name": "example.com", "answer": "10.0.0.1"}),
            json.dumps({"query_name": "cdn.example.org", "response_type": "CNAME",
                        "response_name": "cdn.example.org", "answer": "edge.cdnco.net"}),
            json.dumps({"query_name": "cdn.example.org", "response_type": "A",
                        "response_name": "edge.cdnco.net", "answer": "10.0.0.2"}),
        ]
        run_crawler(
            openintel.Tranco1MCrawler, iyp, openintel.TRANCO1M_URL, "\n".join(lines)
        )
        assert iyp.run(
            "MATCH (h:HostName {name:'example.com'})-[:RESOLVES_TO]->(i:IP) RETURN i.ip"
        ).value() == "10.0.0.1"
        assert iyp.run(
            "MATCH (:HostName {name:'cdn.example.org'})-[:ALIAS_OF]->(t:HostName) "
            "RETURN t.name"
        ).value() == "edge.cdnco.net"
        # PART_OF the registrable domain.
        assert iyp.run(
            "MATCH (:HostName {name:'example.com'})-[:PART_OF]->(d:DomainName) "
            "RETURN d.name"
        ).value() == "example.com"

    def test_ns_dataset(self, iyp):
        lines = [
            json.dumps({"domain": "example.com", "ns": "ns1.dns.net",
                        "glue": True, "in_zone": True, "ips": ["10.0.0.53"]}),
        ]
        run_crawler(openintel.NSCrawler, iyp, openintel.NS_URL, "\n".join(lines))
        row = iyp.run(
            "MATCH (d:DomainName)-[m:MANAGED_BY]->(ns:AuthoritativeNameServer) "
            "RETURN d.name, ns.name, m.glue, m.in_zone"
        ).single()
        assert row["m.glue"] is True and row["m.in_zone"] is True
        # The nameserver is also a HostName (dual label).
        assert iyp.run(
            "MATCH (n:AuthoritativeNameServer:HostName) RETURN count(n)"
        ).value() == 1

    def test_dnsgraph(self, iyp):
        lines = [
            json.dumps({"zone": "com", "nameservers": [
                {"ns": "a.nic.com", "ips": ["10.9.0.1"]}]}),
        ]
        run_crawler(openintel.DNSGraphCrawler, iyp, openintel.DNSGRAPH_URL, "\n".join(lines))
        assert iyp.run(
            "MATCH (z:DomainName {name:'com'})-[:MANAGED_BY]->(ns) RETURN ns.name"
        ).value() == "a.nic.com"


class TestRankings:
    def test_tranco(self, iyp):
        run_crawler(tranco.TrancoCrawler, iyp, tranco.TRANCO_URL, "1,example.com\r\n2,foo.org\r\n")
        rows = iyp.run(
            "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name:'Tranco top 1M'}) "
            "RETURN d.name AS d, r.rank AS r ORDER BY r"
        ).to_rows()
        assert rows == [("example.com", 1), ("foo.org", 2)]

    def test_umbrella(self, iyp):
        run_crawler(cisco.UmbrellaCrawler, iyp, cisco.UMBRELLA_URL, "1,example.com\n")
        assert iyp.run(
            "MATCH (:DomainName)-[r:RANK]->(k:Ranking) RETURN k.name"
        ).value() == "Cisco Umbrella Top 1M"

    def test_cloudflare_ranking(self, iyp):
        content = json.dumps(
            {"success": True, "result": {"top_0": [{"domain": "example.com"}]}}
        )
        run_crawler(cloudflare.RankingCrawler, iyp, cloudflare.RANKING_URL, content)
        assert iyp.run(
            "MATCH (d:DomainName)-[:RANK]->(:Ranking {name:'Cloudflare top 100 domains'}) "
            "RETURN d.name"
        ).value() == "example.com"

    def test_cloudflare_top_ases(self, iyp):
        content = json.dumps(
            {"success": True,
             "result": {"example.com": [{"clientASN": 7018, "value": 42.0}]}}
        )
        run_crawler(cloudflare.TopASesCrawler, iyp, cloudflare.TOP_ASES_URL, content)
        assert iyp.run(
            "MATCH (:DomainName {name:'example.com'})-[q:QUERIED_FROM]->(a:AS) "
            "RETURN a.asn, q.value"
        ).single() == {"a.asn": 7018, "q.value": 42.0}

    def test_cloudflare_top_locations(self, iyp):
        content = json.dumps(
            {"success": True,
             "result": {"example.com": [{"clientCountryAlpha2": "US", "value": 20.0}]}}
        )
        run_crawler(
            cloudflare.TopLocationsCrawler, iyp, cloudflare.TOP_LOCATIONS_URL, content
        )
        assert iyp.run(
            "MATCH (:DomainName)-[:QUERIED_FROM]->(c:Country) RETURN c.country_code"
        ).value() == "US"


class TestBGPTools:
    def test_names_tags_anycast(self, iyp):
        run_crawler(bgptools.ASNamesCrawler, iyp, bgptools.ASNAMES_URL,
                    "asn,name\nAS2914,NTT\n")
        run_crawler(bgptools.ASTagsCrawler, iyp, bgptools.TAGS_URL,
                    "asn,tag\nAS2914,Tier1\nAS2914,Eyeball\n")
        run_crawler(bgptools.AnycastCrawler, iyp, bgptools.ANYCAST_URL,
                    "192.0.2.0/24\n")
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:CATEGORIZED]->(t:Tag) "
            "RETURN collect(t.label)"
        ).value() == ["Tier1", "Eyeball"]
        assert iyp.run(
            "MATCH (p:Prefix)-[:CATEGORIZED]->(:Tag {label:'Anycast'}) RETURN p.prefix"
        ).value() == "192.0.2.0/24"


class TestOthers:
    def test_stanford_asdb(self, iyp):
        content = "asn,category1,category2\n2914,Computer and Information Technology,ISP\n"
        run_crawler(stanford.ASdbCrawler, iyp, stanford.ASDB_URL, content)
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:CATEGORIZED]->(t:Tag) RETURN count(t)"
        ).value() == 2

    def test_apnic_population(self, iyp):
        content = json.dumps(
            {"data": [{"cc": "JP", "asn": 2914, "percent": 12.5, "users": 1000}]}
        )
        run_crawler(apnic.ASPopulationCrawler, iyp, apnic.ASPOP_URL, content)
        assert iyp.run(
            "MATCH (:AS)-[p:POPULATION]->(:Country {country_code:'JP'}) RETURN p.percent"
        ).value() == 12.5

    def test_worldbank(self, iyp):
        content = json.dumps(
            [{"page": 1}, [{"country": {"id": "JPN"}, "countryiso3code": "JPN",
                            "date": "2023", "value": 125000000}]]
        )
        run_crawler(worldbank.WorldBankPopulationCrawler, iyp,
                    worldbank.POPULATION_URL, content)
        assert iyp.run(
            "MATCH (c:Country {country_code:'JP'})-[p:POPULATION]->(:Estimate) "
            "RETURN p.value"
        ).value() == 125000000

    def test_citizenlab(self, iyp):
        content = "url,category_code\nhttp://example.com/,NEWS\n"
        run_crawler(citizenlab.URLTestingListCrawler, iyp, citizenlab.URL_LIST, content)
        assert iyp.run(
            "MATCH (u:URL)-[:CATEGORIZED]->(t:Tag {label:'NEWS'}) RETURN u.url"
        ).value() == "http://example.com/"

    def test_emileaben(self, iyp):
        run_crawler(emileaben.ASNamesCrawler, iyp, emileaben.ASNAMES_URL, "2914|NTT\n")
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:NAME]->(n:Name) RETURN n.name"
        ).value() == "NTT"

    def test_inetintel_siblings(self, iyp):
        content = json.dumps({"org_name": "MegaCorp", "country": "US", "asns": [1, 2, 3]})
        run_crawler(inetintel.AS2OrgCrawler, iyp, inetintel.AS2ORG_URL, content)
        assert iyp.run(
            "MATCH (:AS)-[:MANAGED_BY]->(o:Organization {name:'MegaCorp'}) "
            "RETURN count(*)"
        ).value() == 3
        assert iyp.run(
            "MATCH (:AS {asn:1})-[:SIBLING_OF]-(b:AS) RETURN b.asn"
        ).value() == 2

    def test_pch(self, iyp):
        content = "10.0.0.0/8|2914|pch-collector-1\n"
        run_crawler(pch.RoutingSnapshotCrawler, iyp, pch.PCH_URL, content)
        rel = next(iyp.store.iter_relationships())
        assert rel.properties["reference_name"] == "pch.routing_snapshot"

    def test_simulamet_rdns(self, iyp):
        content = "prefix,nameserver\n193.0.0.0/16,ns1.dns.net\n"
        run_crawler(simulamet.RDNSCrawler, iyp, simulamet.RDNS_URL, content)
        assert iyp.run(
            "MATCH (:Prefix)-[:MANAGED_BY]->(n:AuthoritativeNameServer) RETURN n.name"
        ).value() == "ns1.dns.net"

    def test_rovista(self, iyp):
        content = "asn,ratio\n1,0.9\n2,0.1\n"
        run_crawler(rovista.RoVistaCrawler, iyp, rovista.ROVISTA_URL, content)
        assert iyp.run(
            "MATCH (:AS {asn:1})-[:CATEGORIZED]->(t:Tag) RETURN t.label"
        ).value() == "Validating RPKI ROV"
        assert iyp.run(
            "MATCH (:AS {asn:2})-[:CATEGORIZED]->(t:Tag) RETURN t.label"
        ).value() == "Not Validating RPKI ROV"


class TestPeeringDB:
    def test_org_ix_membership_chain(self, iyp):
        fetcher = StaticFetcher(
            {
                peeringdb.ORG_URL: json.dumps(
                    {"data": [{"id": 1, "name": "AMS-IX Org", "country": "NL",
                               "website": "https://ams-ix.example"}]}
                ),
                peeringdb.IX_URL: json.dumps(
                    {"data": [{"id": 26, "name": "AMS-IX", "country": "NL",
                               "website": "", "fac": "DataDock AMS 1"}]}
                ),
                peeringdb.IXLAN_URL: json.dumps(
                    {"data": [{"id": 1, "ix_id": 26, "asn": 2914,
                               "speed": 10000, "policy": "Open"}]}
                ),
                peeringdb.FAC_URL: json.dumps(
                    {"data": [{"id": 7, "name": "DataDock AMS 1", "country": "NL"}]}
                ),
                peeringdb.NETFAC_URL: json.dumps(
                    {"data": [{"id": 1, "fac": "DataDock AMS 1", "asn": 2914}]}
                ),
            }
        )
        peeringdb.OrgCrawler(iyp, fetcher).run()
        peeringdb.FacCrawler(iyp, fetcher).run()
        peeringdb.IXCrawler(iyp, fetcher).run()
        peeringdb.NetIXLanCrawler(iyp, fetcher).run()
        peeringdb.NetFacCrawler(iyp, fetcher).run()
        row = iyp.run(
            "MATCH (a:AS {asn:2914})-[m:MEMBER_OF]->(x:IXP) RETURN x.name, m.policy"
        ).single()
        assert row == {"x.name": "AMS-IX", "m.policy": "Open"}
        assert iyp.run(
            "MATCH (:AS {asn:2914})-[:LOCATED_IN]->(f:Facility) RETURN f.name"
        ).value() == "DataDock AMS 1"


class TestFetchErrors:
    def test_missing_url_raises(self, iyp):
        fetcher = StaticFetcher({})
        crawler = tranco.TrancoCrawler(iyp, fetcher)
        with pytest.raises(FetchError):
            crawler.run()
