"""End-to-end incremental ingestion (``repro.delta``).

Covers the whole delta pipeline: record canonicalization, seeded
random-world fuzz asserting diff → DeltaBatch → ``apply_delta``
reproduces the target store exactly, changelog-vs-diff extraction
equivalence, atomicity and edge cases (delete with dangling endpoints,
delete-then-recreate under one key), the IYPD binary file, archive
delta chains on both backends' load paths, the serving follow path
(``QueryService.apply_delta`` + ``ArchiveWatcher``), and the
incremental build itself.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

from repro.analytics import compute_statistics
from repro.archive import ArchiveWatcher, SnapshotArchive
from repro.core.diff import snapshot_diff
from repro.delta import (
    DeltaApplyError,
    DeltaBatch,
    DeltaError,
    delta_from_changelog,
    delta_from_diff,
    delta_to_json,
    is_delta_file,
    load_delta,
    read_delta_meta,
    refresh_statistics,
    save_delta,
)
from repro.delta.records import node_key, record_order_key, rel_key
from repro.graphdb.store import GraphStore
from repro.pipeline.build import build_iyp
from repro.server.app import QueryService

# ---------------------------------------------------------------------------
# Random-store fuzz machinery
# ---------------------------------------------------------------------------

#: (label, key property) pairs drawn from the ontology — node identity
#: in a delta record is exactly this pair plus the key value.
LABEL_KEYS = (
    ("AS", "asn"),
    ("Name", "name"),
    ("Country", "country_code"),
    ("Prefix", "prefix"),
    ("Tag", "label"),
)

DATASETS = ("test.alpha", "test.beta", "test.gamma")
REL_TYPES = ("ORIGINATE", "NAME", "COUNTRY", "CATEGORIZED")


def _key_value(prop: str, index: int):
    return 64000 + index if prop == "asn" else f"{prop}-{index}"


def random_store(rng: random.Random, nodes: int = 50, rels: int = 110) -> GraphStore:
    """A seeded random graph over ontology-shaped identities."""
    store = GraphStore()
    for label, prop in LABEL_KEYS:
        store.create_index(label, prop)
    ids = []
    for index in range(nodes):
        label, prop = LABEL_KEYS[rng.randrange(len(LABEL_KEYS))]
        node = store.create_node(
            {label},
            {prop: _key_value(prop, index), "weight": rng.randrange(100)},
        )
        ids.append(node.id)
    seen = set()
    created = attempts = 0
    while created < rels and attempts < rels * 10:
        attempts += 1
        start, end = rng.choice(ids), rng.choice(ids)
        rel_type, dataset = rng.choice(REL_TYPES), rng.choice(DATASETS)
        if (start, rel_type, end, dataset) in seen:
            continue
        seen.add((start, rel_type, end, dataset))
        store.create_relationship(
            start, rel_type, end,
            {"reference_name": dataset, "count": rng.randrange(5)},
        )
        created += 1
    return store


def copy_store(store: GraphStore) -> GraphStore:
    """An independent deep copy preserving ids, indexes, constraints."""
    return GraphStore.from_records(
        [
            (node.id, set(node.labels), dict(node.properties))
            for node in store.iter_nodes()
        ],
        [
            (rel.id, rel.type, rel.start_id, rel.end_id, dict(rel.properties))
            for rel in store.iter_relationships()
        ],
        indexes=store.indexes(),
        constraints=store.constraints(),
    )


def _rel_identities(store: GraphStore) -> set[tuple]:
    out = set()
    for rel in store.iter_relationships():
        out.add(
            (rel.start_id, rel.type, rel.end_id,
             rel.properties.get("reference_name", ""))
        )
    return out


def mutate(rng: random.Random, store: GraphStore, ops: int = 40) -> None:
    """Random in-place churn that stays inside what deltas model: key
    properties and surviving nodes' label sets are never touched."""
    counter = 10_000
    for _ in range(ops):
        node_ids = [node.id for node in store.iter_nodes()]
        rel_ids = [rel.id for rel in store.iter_relationships()]
        op = rng.randrange(7)
        if op == 0:  # create a node under a fresh key
            label, prop = LABEL_KEYS[rng.randrange(len(LABEL_KEYS))]
            store.create_node(
                {label}, {prop: _key_value(prop, counter), "weight": 1}
            )
            counter += 1
        elif op == 1 and node_ids:  # delete a node (with its links)
            store.delete_node(rng.choice(node_ids), detach=True)
        elif op == 2 and node_ids:  # update non-key properties
            store.update_node(
                rng.choice(node_ids),
                {"weight": rng.randrange(100), "color": rng.choice("rgb")},
            )
        elif op == 3 and rel_ids:  # delete a relationship
            store.delete_relationship(rng.choice(rel_ids))
        elif op == 4 and len(node_ids) >= 2:  # create a relationship
            start, end = rng.choice(node_ids), rng.choice(node_ids)
            rel_type, dataset = rng.choice(REL_TYPES), rng.choice(DATASETS)
            if (start, rel_type, end, dataset) in _rel_identities(store):
                continue
            store.create_relationship(
                start, rel_type, end,
                {"reference_name": dataset, "count": rng.randrange(5)},
            )
        elif op == 5 and rel_ids:  # update relationship properties
            store.update_relationship(
                rng.choice(rel_ids), {"count": rng.randrange(5)}
            )
        elif op == 6 and node_ids:  # delete + recreate under the same key
            node = store.get_node(rng.choice(node_ids))
            labels, props = set(node.labels), dict(node.properties)
            store.delete_node(node.id, detach=True)
            props["weight"] = rng.randrange(100)
            store.create_node(labels, props)


def assert_stores_equivalent(expected: GraphStore, actual: GraphStore) -> None:
    """Identity-level equality: nodes, relationships, properties,
    indexes, constraints, and derived counts all match."""
    diff = snapshot_diff(expected, actual)
    assert diff.unchanged, json.dumps(diff.summary(), indent=1)
    assert actual.node_count == expected.node_count
    assert actual.relationship_count == expected.relationship_count
    assert actual.label_counts() == expected.label_counts()
    assert (
        actual.relationship_type_counts()
        == expected.relationship_type_counts()
    )
    assert sorted(actual.indexes()) == sorted(expected.indexes())
    assert sorted(actual.constraints()) == sorted(expected.constraints())
    # The hash indexes must agree with the data they index.
    for label, prop in actual.indexes():
        for node in actual.nodes_with_label(label):
            value = node.properties.get(prop)
            if value is not None and isinstance(value, (str, int, float, bool)):
                assert node.id in {
                    found.id for found in actual.find_nodes(label, prop, value)
                }


def assert_statistics_equivalent(refreshed, fresh) -> None:
    assert refreshed.node_count == fresh.node_count
    assert refreshed.relationship_count == fresh.relationship_count
    assert refreshed.label_counts == fresh.label_counts
    assert refreshed.relationship_type_counts == fresh.relationship_type_counts
    keys = set(refreshed.expansions) | set(fresh.expansions)
    for key in keys:
        assert refreshed.expansions.get(key, 0.0) == pytest.approx(
            fresh.expansions.get(key, 0.0), rel=1e-9
        ), key


# ---------------------------------------------------------------------------
# Record canonicalization
# ---------------------------------------------------------------------------


class TestDeltaRecords:
    def test_node_key_rejects_non_scalar(self):
        with pytest.raises(DeltaError):
            node_key("AS", "asn", [1, 2])

    def test_batch_roundtrips_through_dict(self):
        record = {
            "op": "create", "entity": "node",
            "key": node_key("AS", "asn", 65000),
            "labels": ["AS"], "properties": {"asn": 65000},
        }
        batch = DeltaBatch(records=[record], base_label="b", base_checksum="c")
        again = DeltaBatch.from_dict(batch.to_dict())
        assert again.records == batch.records
        assert again.base_label == "b" and again.base_checksum == "c"

    def test_out_of_order_batch_rejected(self):
        create = {
            "op": "create", "entity": "node",
            "key": node_key("AS", "asn", 1),
            "labels": ["AS"], "properties": {"asn": 1},
        }
        delete = {
            "op": "delete", "entity": "node",
            "key": node_key("AS", "asn", 2),
        }
        ordered = DeltaBatch(records=sorted(
            [create, delete], key=record_order_key
        ))
        ordered.validate()
        with pytest.raises(DeltaError, match="order"):
            DeltaBatch(records=[create, delete]).validate()

    def test_rel_key_shape(self):
        key = rel_key(
            node_key("AS", "asn", 1), "ORIGINATE",
            node_key("Prefix", "prefix", "10.0.0.0/8"), "test.bgp",
        )
        assert key["type"] == "ORIGINATE"
        assert key["dataset"] == "test.bgp"
        assert key["start"]["label"] == "AS"


# ---------------------------------------------------------------------------
# Fuzz: diff -> DeltaBatch -> apply reproduces the target exactly
# ---------------------------------------------------------------------------


class TestFuzzRoundtrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_diff_delta_apply_roundtrip(self, seed):
        rng = random.Random(seed)
        old = random_store(rng)
        target = copy_store(old)
        mutate(rng, target)
        batch = delta_from_diff(old, target)
        batch.validate()
        applied = copy_store(old)
        previous = compute_statistics(applied, components=False)
        version_before = applied.version
        result = applied.apply_delta(batch)
        assert applied.version == version_before + 1
        assert result.version == applied.version
        assert_stores_equivalent(target, applied)
        refreshed = refresh_statistics(previous, applied, result)
        fresh = compute_statistics(applied, components=False)
        assert_statistics_equivalent(refreshed, fresh)

    @pytest.mark.parametrize("seed", range(8))
    def test_changelog_matches_diff(self, seed):
        rng = random.Random(1000 + seed)
        old = random_store(rng)
        target = copy_store(old)
        with target.track_changes() as events:
            mutate(rng, target)
        from_log = delta_from_changelog(target, events)
        from_diff = delta_from_diff(old, target)
        assert from_log.records == from_diff.records

    @pytest.mark.parametrize("seed", range(4))
    def test_empty_delta_for_identical_stores(self, seed):
        rng = random.Random(2000 + seed)
        old = random_store(rng)
        batch = delta_from_diff(old, copy_store(old))
        assert batch.empty
        applied = copy_store(old)
        applied.apply_delta(batch)
        assert_stores_equivalent(old, applied)


# ---------------------------------------------------------------------------
# Apply semantics and edge cases
# ---------------------------------------------------------------------------


def _two_as_store() -> GraphStore:
    store = GraphStore()
    store.create_index("AS", "asn")
    a = store.create_node({"AS"}, {"asn": 1})
    b = store.create_node({"AS"}, {"asn": 2})
    store.create_relationship(
        a.id, "PEERS_WITH", b.id, {"reference_name": "test.bgp"}
    )
    store.create_relationship(
        b.id, "PEERS_WITH", a.id, {"reference_name": "test.bgp"}
    )
    return store


class TestApplyEdgeCases:
    def test_node_delete_detaches_dangling_relationships(self):
        store = _two_as_store()
        batch = DeltaBatch(records=[
            {"op": "delete", "entity": "node", "key": node_key("AS", "asn", 2)}
        ])
        result = store.apply_delta(batch)
        assert store.node_count == 1
        assert store.relationship_count == 0
        assert result.nodes_deleted == 1
        assert result.relationships_deleted == 2

    def test_delete_then_recreate_same_key_in_one_batch(self):
        store = _two_as_store()
        records = sorted(
            [
                {"op": "delete", "entity": "node",
                 "key": node_key("AS", "asn", 2)},
                {"op": "create", "entity": "node",
                 "key": node_key("AS", "asn", 2),
                 "labels": ["AS"], "properties": {"asn": 2, "fresh": True}},
            ],
            key=record_order_key,
        )
        store.apply_delta(DeltaBatch(records=records))
        (node,) = store.find_nodes("AS", "asn", 2)
        assert node.properties.get("fresh") is True
        assert store.relationship_count == 0  # old links died with the old node

    def test_unknown_node_delete_is_atomic_noop(self):
        store = _two_as_store()
        records = sorted(
            [
                {"op": "create", "entity": "node",
                 "key": node_key("AS", "asn", 3),
                 "labels": ["AS"], "properties": {"asn": 3}},
                {"op": "delete", "entity": "node",
                 "key": node_key("AS", "asn", 99)},
            ],
            key=record_order_key,
        )
        with pytest.raises(DeltaApplyError, match="99"):
            store.apply_delta(DeltaBatch(records=records))
        # Prevalidation rejected the whole batch: nothing was applied.
        assert store.find_nodes("AS", "asn", 3) == []
        assert store.node_count == 2 and store.relationship_count == 2

    def test_rel_create_with_missing_endpoint_rejected(self):
        store = _two_as_store()
        batch = DeltaBatch(records=[{
            "op": "create", "entity": "rel",
            "key": rel_key(node_key("AS", "asn", 1), "PEERS_WITH",
                           node_key("AS", "asn", 42), "test.bgp"),
            "properties": {},
        }])
        with pytest.raises(DeltaApplyError):
            store.apply_delta(batch)
        assert store.relationship_count == 2

    def test_key_property_mutation_rejected_at_extraction(self):
        old = _two_as_store()
        new = copy_store(old)
        (node,) = new.find_nodes("AS", "asn", 2)
        new.delete_node(node.id, detach=True)
        replacement = new.create_node({"AS"}, {"asn": 2})
        with new.track_changes() as events:
            new.update_node(replacement.id, {"asn": 20})
        with pytest.raises(DeltaError, match="key"):
            delta_from_changelog(new, events)


# ---------------------------------------------------------------------------
# The IYPD binary file
# ---------------------------------------------------------------------------


class TestDeltaFile:
    def _batch(self) -> DeltaBatch:
        old = _two_as_store()
        new = copy_store(old)
        (node,) = new.find_nodes("AS", "asn", 1)
        new.update_node(node.id, {"name": "RENAMED"})
        return delta_from_diff(old, new)

    def test_roundtrip_and_determinism(self, tmp_path):
        batch = self._batch()
        first, second = tmp_path / "a.iypd", tmp_path / "b.iypd"
        for path in (first, second):
            save_delta(batch, path, base_label="base", base_checksum="abc",
                       nodes_after=2, relationships_after=2)
        assert first.read_bytes() == second.read_bytes()
        assert is_delta_file(first)
        loaded, meta = load_delta(first)
        assert loaded.records == batch.records
        assert meta["base_label"] == "base"
        assert meta["base_checksum"] == "abc"
        assert read_delta_meta(first)["nodes"] == 2

    def test_full_snapshot_is_not_a_delta_file(self, tmp_path):
        from repro.archive.format import save_snapshot_v2

        path = tmp_path / "full.iyp"
        save_snapshot_v2(_two_as_store(), path)
        assert not is_delta_file(path)

    def test_json_rendering_parses(self):
        batch = self._batch()
        payload = json.loads(delta_to_json(batch))
        assert payload["format"] == "iyp-delta"
        assert payload["records"] == batch.records


# ---------------------------------------------------------------------------
# Archive delta chains, on both backends' load paths
# ---------------------------------------------------------------------------


@pytest.fixture
def chain_archive(tmp_path):
    """Archive with base full snapshot + two delta entries, and the
    three store states they describe."""
    archive = SnapshotArchive(tmp_path / "archive")
    base = _two_as_store()
    archive.add(base, "2024-05-01")

    step1 = copy_store(base)
    (node,) = step1.find_nodes("AS", "asn", 1)
    step1.update_node(node.id, {"name": "FIRST"})
    archive.add_delta(
        step1, delta_from_diff(base, step1), "2024-05-08", base="2024-05-01"
    )

    step2 = copy_store(step1)
    step2.create_node({"AS"}, {"asn": 3})
    archive.add_delta(
        step2, delta_from_diff(step1, step2), "2024-05-15", base="2024-05-08"
    )
    return archive, base, step1, step2


class TestArchiveDeltaChain:
    def test_chain_load_matches_each_state(self, chain_archive):
        archive, base, step1, step2 = chain_archive
        assert_stores_equivalent(step1, archive.load("2024-05-08"))
        assert_stores_equivalent(step2, archive.load("2024-05-15"))
        assert_stores_equivalent(base, archive.load("2024-05-01"))

    def test_reopened_archive_still_loads_chain(self, chain_archive):
        archive, _base, _step1, step2 = chain_archive
        reopened = SnapshotArchive(archive.root)
        assert_stores_equivalent(step2, reopened.load("latest"))

    def test_verify_covers_delta_entries(self, chain_archive):
        archive, *_ = chain_archive
        report = archive.verify(deep=True)
        assert report.ok, [problem for _, problem in report.problems]

    def test_columnar_backend_loads_delta_chain(self, chain_archive):
        from repro.columnar import ColumnarGraphStore

        archive, _base, _step1, step2 = chain_archive
        columnar = ColumnarGraphStore.from_store(archive.load("latest"))
        assert columnar.node_count == step2.node_count
        assert columnar.relationship_count == step2.relationship_count
        assert columnar.label_counts() == step2.label_counts()

    def test_prune_keeps_transitive_base_chain(self, chain_archive):
        archive, _base, _step1, step2 = chain_archive
        removed = archive.prune(keep=1)
        # The surviving delta still loads: its full base must survive too.
        kept = [entry.label for entry in archive.entries()]
        assert "2024-05-15" in kept and "2024-05-01" in kept
        assert all(entry.label == "2024-05-08" for entry in removed)
        assert_stores_equivalent(step2, archive.load("latest"))

    def test_delta_against_missing_base_fails_loudly(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "archive")
        base = _two_as_store()
        archive.add(base, "full-1")
        step = copy_store(base)
        step.create_node({"AS"}, {"asn": 9})
        archive.add_delta(step, delta_from_diff(base, step), "delta-1")
        manifest = json.loads(archive.manifest_path.read_text())
        for entry in manifest["snapshots"]:
            if entry["label"] == "delta-1":
                entry["base"] = "nonexistent"
        archive.manifest_path.write_text(json.dumps(manifest))
        reopened = SnapshotArchive(archive.root)
        with pytest.raises(KeyError):
            reopened.load("delta-1")


# ---------------------------------------------------------------------------
# Serving: QueryService.apply_delta and the --follow watcher
# ---------------------------------------------------------------------------


def _service_with_archive(tmp_path):
    archive = SnapshotArchive(tmp_path / "archive")
    base = _two_as_store()
    archive.add(base, "gen-1")
    store = archive.load("gen-1")
    service = QueryService(store, archive=archive, snapshot_label="gen-1")
    return service, archive, base


class TestServiceApplyDelta:
    def test_apply_updates_label_and_invalidates_cache(self, tmp_path):
        service, _archive, base = _service_with_archive(tmp_path)
        query = "MATCH (a:AS) RETURN count(a) AS n"
        assert service.execute(query)["rows"] == [[2]]
        assert service.execute(query)["meta"]["cached"] is True

        new = copy_store(base)
        new.create_node({"AS"}, {"asn": 3})
        body = service.apply_delta(delta_from_diff(base, new), label="gen-2")
        assert body["snapshot"] == "gen-2"
        assert service.snapshot_label == "gen-2"
        assert body["applied"]["nodes_created"] == 1

        fresh = service.execute(query)
        assert fresh["rows"] == [[3]]
        assert fresh["meta"]["cached"] is False
        # In-place: same generation, no swap counted.
        assert service.generation == 0

    def test_bad_batch_leaves_service_untouched(self, tmp_path):
        service, _archive, _base = _service_with_archive(tmp_path)
        batch = DeltaBatch(records=[
            {"op": "delete", "entity": "node", "key": node_key("AS", "asn", 77)}
        ])
        with pytest.raises(DeltaApplyError):
            service.apply_delta(batch, label="gen-2")
        assert service.snapshot_label == "gen-1"
        assert service.store.node_count == 2


class TestArchiveWatcher:
    def test_unchanged_manifest_is_not_reparsed(self, tmp_path):
        service, archive, _base = _service_with_archive(tmp_path)
        watcher = ArchiveWatcher(service, archive, follow=False)
        assert watcher.check_once() is False  # parses once, already current
        assert watcher.check_once() is False
        assert watcher.check_once() is False
        assert watcher.skipped_polls >= 2

    def test_follow_applies_delta_chain_in_place(self, tmp_path):
        service, archive, base = _service_with_archive(tmp_path)
        watcher = ArchiveWatcher(service, archive, follow=True)
        watcher.check_once()

        new = copy_store(base)
        new.create_node({"AS"}, {"asn": 3})
        archive.add_delta(new, delta_from_diff(base, new), "gen-2", base="gen-1")

        assert watcher.check_once() is True
        assert watcher.delta_applies == 1
        assert watcher.swaps == 0
        assert service.snapshot_label == "gen-2"
        assert service.store.node_count == 3
        assert service.generation == 0  # no swap happened

    def test_follow_falls_back_to_swap_on_full_snapshot(self, tmp_path):
        service, archive, base = _service_with_archive(tmp_path)
        watcher = ArchiveWatcher(service, archive, follow=True)
        new = copy_store(base)
        new.create_node({"AS"}, {"asn": 3})
        archive.add(new, "gen-2")  # a full snapshot breaks the chain

        assert watcher.check_once() is True
        assert watcher.swaps == 1
        assert watcher.delta_applies == 0
        assert service.snapshot_label == "gen-2"
        assert service.generation == 1

    def test_plain_watch_swaps_on_delta_entry(self, tmp_path):
        service, archive, base = _service_with_archive(tmp_path)
        watcher = ArchiveWatcher(service, archive, follow=False)
        new = copy_store(base)
        new.create_node({"AS"}, {"asn": 3})
        archive.add_delta(new, delta_from_diff(base, new), "gen-2", base="gen-1")

        assert watcher.check_once() is True
        assert watcher.swaps == 1  # chain-aware load + full swap
        assert service.store.node_count == 3


# ---------------------------------------------------------------------------
# The incremental build
# ---------------------------------------------------------------------------

#: Small dataset slice: the three AS-name sources plus one structural
#: source that the rename churn must not re-run.
_NAME_DATASETS = [
    "bgptools.as_names",
    "emileaben.as_names",
    "ripe.as_names",
    "bgpkit.pfx2as",
]


class TestIncrementalBuild:
    def test_incremental_equals_scratch_rebuild(self, small_world):
        iyp, report = build_iyp(
            small_world, dataset_names=list(_NAME_DATASETS),
            validate=False, analytics=False,
        )
        assert all(run.payload_checksum for run in report.crawler_runs)

        new_world = copy.deepcopy(small_world)
        renamed = sorted(new_world.ases)[0]
        new_world.ases[renamed].name += " (renamed)"

        iyp2, report2 = build_iyp(
            new_world, dataset_names=list(_NAME_DATASETS),
            incremental=True, previous=report, iyp=iyp,
            validate=False, analytics=False,
        )
        assert report2.incremental
        assert report2.postprocess_skipped
        skipped = {run.name for run in report2.crawler_runs if run.skipped}
        assert "bgpkit.pfx2as" in skipped  # prefix data did not change
        assert not report2.delta.empty

        scratch, _ = build_iyp(
            new_world, dataset_names=list(_NAME_DATASETS),
            validate=False, analytics=False,
        )
        assert_stores_equivalent(scratch.store, iyp2.store)

    def test_no_churn_build_skips_everything(self, small_world):
        iyp, report = build_iyp(
            small_world, dataset_names=list(_NAME_DATASETS),
            validate=False, analytics=False,
        )
        _iyp2, report2 = build_iyp(
            small_world, dataset_names=list(_NAME_DATASETS),
            incremental=True, previous=report, iyp=iyp,
            validate=False, analytics=False,
        )
        assert all(run.skipped for run in report2.crawler_runs)
        assert report2.delta.empty
        assert report2.postprocess_skipped

    def test_previous_report_roundtrips_through_metadata(self, small_world):
        from repro.pipeline.build import BuildReport

        _iyp, report = build_iyp(
            small_world, dataset_names=list(_NAME_DATASETS),
            validate=False, analytics=False,
        )
        rebuilt = BuildReport.from_build_metadata(report.build_metadata())
        assert [run.name for run in rebuilt.crawler_runs] == [
            run.name for run in report.crawler_runs
        ]
        assert all(
            rebuilt_run.payload_checksum == run.payload_checksum
            for rebuilt_run, run in zip(
                rebuilt.crawler_runs, report.crawler_runs, strict=True
            )
        )

    def test_incremental_requires_previous_and_store(self, small_world):
        with pytest.raises(ValueError, match="previous"):
            build_iyp(small_world, incremental=True)

    def test_incremental_archives_delta_entry(self, small_world, tmp_path):
        archive = SnapshotArchive(tmp_path / "archive")
        iyp, report = build_iyp(
            small_world, dataset_names=list(_NAME_DATASETS),
            validate=False, analytics=False,
            archive=archive, archive_label="week-1",
        )
        new_world = copy.deepcopy(small_world)
        renamed = sorted(new_world.ases)[0]
        new_world.ases[renamed].name += " (renamed)"
        _iyp2, report2 = build_iyp(
            new_world, dataset_names=list(_NAME_DATASETS),
            incremental=True, previous=report, iyp=iyp,
            validate=False, analytics=False,
            archive=archive, archive_label="week-2",
        )
        entry = archive.resolve("week-2")
        assert entry.kind == "delta" and entry.base == "week-1"
        assert report2.archived_as == "week-2"
        assert_stores_equivalent(iyp.store, archive.load("week-2"))
