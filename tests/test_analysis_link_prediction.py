"""The link-prediction evaluation harness."""

import pytest

from repro.analysis.embeddings import (
    TransEConfig,
    evaluate_link_prediction,
    train_transe,
)
from repro.graphdb import GraphStore


@pytest.fixture(scope="module")
def trained():
    store = GraphStore()
    orgs = [store.create_node({"Organization"}, {"name": f"org{i}"}) for i in range(3)]
    triples = []
    for i in range(15):
        a = store.create_node({"AS"}, {"asn": i})
        rel = store.create_relationship(a.id, "MANAGED_BY", orgs[i % 3].id)
        triples.append((rel.start_id, "MANAGED_BY", rel.end_id))
    model = train_transe(store, TransEConfig(dimensions=16, epochs=80, seed=2))
    return model, triples


class TestEvaluation:
    def test_hits_at_k_in_bounds(self, trained):
        model, triples = trained
        metrics = evaluate_link_prediction(model, triples, k=3)
        assert 0.0 <= metrics["hits_at_k"] <= 1.0
        assert metrics["evaluated"] == len(triples)

    def test_structured_data_scores_well(self, trained):
        model, triples = trained
        metrics = evaluate_link_prediction(model, triples, k=3)
        # 3 orgs among 18 entities; a random ranker gets ~3/18 = 0.17.
        assert metrics["hits_at_k"] > 0.5

    def test_mean_rank_bounded(self, trained):
        model, triples = trained
        metrics = evaluate_link_prediction(model, triples, k=3)
        assert 1.0 <= metrics["mean_rank"] <= model.n_entities

    def test_empty_test_set(self, trained):
        model, _ = trained
        metrics = evaluate_link_prediction(model, [], k=3)
        assert metrics["evaluated"] == 0

    def test_unknown_entities_skipped(self, trained):
        model, triples = trained
        metrics = evaluate_link_prediction(
            model, [(999999, "MANAGED_BY", 999998)] + triples[:2], k=3
        )
        assert metrics["evaluated"] == 2

    def test_extract_triples_covers_store(self, trained):
        model, triples = trained
        assert model.n_relations == 1
