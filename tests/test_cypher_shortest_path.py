"""shortestPath() support."""

import pytest

from repro.cypher import CypherEngine
from repro.cypher.errors import CypherSyntaxError
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    """Chain 0-1-2-3 plus shortcut 0-4-3; node 5 isolated."""
    store = GraphStore()
    nodes = [store.create_node({"N"}, {"i": i}) for i in range(6)]
    for a, b in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]:
        store.create_relationship(nodes[a].id, "E", nodes[b].id)
    return CypherEngine(store)


class TestShortestPath:
    def test_picks_the_shorter_route(self, engine):
        result = engine.run(
            "MATCH p = shortestPath((a:N {i:0})-[:E*..6]-(b:N {i:3})) "
            "RETURN [x IN nodes(p) | x.i] AS path"
        )
        assert result.value() == [0, 4, 3]

    def test_one_path_per_end_node(self, engine):
        result = engine.run(
            "MATCH shortestPath((a:N {i:0})-[r:E*..6]-(b:N)) "
            "RETURN b.i AS b, size(r) AS hops ORDER BY b"
        )
        assert result.to_rows() == [(1, 1), (2, 2), (3, 2), (4, 1)]

    def test_unreachable_node_not_returned(self, engine):
        result = engine.run(
            "MATCH shortestPath((a:N {i:0})-[:E*..6]-(b:N {i:5})) RETURN b"
        )
        assert len(result) == 0

    def test_max_hop_limit_respected(self, engine):
        result = engine.run(
            "MATCH shortestPath((a:N {i:0})-[r:E*..1]-(b:N)) "
            "RETURN collect(b.i) AS ends"
        )
        assert sorted(result.value()) == [1, 4]

    def test_directed_shortest(self, engine):
        result = engine.run(
            "MATCH shortestPath((a:N {i:3})-[r:E*..6]->(b:N)) RETURN count(b)"
        )
        assert result.value() == 0  # node 3 has no outgoing edges

    def test_requires_two_nodes(self, engine):
        with pytest.raises(CypherSyntaxError):
            engine.run(
                "MATCH shortestPath((a)-[:E]-(b)-[:E]-(c)) RETURN a"
            )

    def test_works_on_knowledge_graph(self, engine):
        # A realistic use: how far is a domain from an AS?  Exercised on
        # the routing chain built in this fixture's stand-in graph.
        result = engine.run(
            "MATCH p = shortestPath((a:N {i:1})-[:E*..4]-(b:N {i:4})) "
            "RETURN size(relationships(p))"
        )
        assert result.value() == 2  # 1-0-4
