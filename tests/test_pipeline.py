"""The build pipeline and the refinement pass over the small world."""

import pytest

from repro.core import IYP
from repro.ontology import SchemaValidator
from repro.pipeline import build_iyp, run_postprocessing
from repro.pipeline.postprocess import (
    add_address_families,
    complete_country_codes,
    link_covering_prefixes,
    link_ips_to_prefixes,
    link_name_hierarchy,
    link_urls_to_hostnames,
)


class TestBuild:
    def test_report_is_clean(self, small_world):
        iyp, report = build_iyp(small_world)
        assert report.ok
        assert report.nodes > 1000
        assert report.relationships > report.nodes
        assert set(report.crawler_seconds) == {
            spec.name for spec in __import__(
                "repro.datasets.registry", fromlist=["DATASETS"]
            ).DATASETS
        }

    def test_subset_build(self, small_world):
        iyp, report = build_iyp(
            small_world, dataset_names=["bgpkit.pfx2as"], postprocess=False
        )
        assert set(report.crawler_seconds) == {"bgpkit.pfx2as"}
        assert iyp.store.relationship_type_counts().keys() == {"ORIGINATE"}

    def test_schema_valid(self, small_iyp):
        report = SchemaValidator().validate(small_iyp.store)
        assert report.ok, [str(v) for v in report.violations[:10]]

    def test_no_duplicate_identity_nodes(self, small_iyp):
        from repro.ontology import ENTITIES

        for definition in ENTITIES.values():
            key = definition.key_properties[0]
            seen = set()
            for node in small_iyp.store.nodes_with_label(definition.label):
                value = node.properties.get(key)
                assert (definition.label, value) not in seen
                seen.add((definition.label, value))

    def test_build_errors_can_be_collected(self, small_world, monkeypatch):
        from repro.datasets.crawlers import tranco as tranco_module

        def boom(self):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(tranco_module.TrancoCrawler, "run", boom)
        iyp, report = build_iyp(
            small_world, dataset_names=["tranco.top1m"], raise_on_error=False
        )
        assert not report.ok
        assert "synthetic failure" in report.crawler_errors["tranco.top1m"]

    def test_build_errors_raise_by_default(self, small_world, monkeypatch):
        from repro.datasets.crawlers import tranco as tranco_module

        def boom(self):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(tranco_module.TrancoCrawler, "run", boom)
        with pytest.raises(RuntimeError):
            build_iyp(small_world, dataset_names=["tranco.top1m"])


class TestRefinementSteps:
    def test_af_properties(self):
        iyp = IYP()
        iyp.get_node("IP", ip="10.0.0.1")
        iyp.get_node("Prefix", prefix="2001:db8::/32")
        count = add_address_families(iyp)
        assert count == 2
        assert iyp.run("MATCH (i:IP) RETURN i.af").value() == 4
        assert iyp.run("MATCH (p:Prefix) RETURN p.af").value() == 6

    def test_ip_lpm_link(self):
        iyp = IYP()
        iyp.get_node("Prefix", prefix="10.0.0.0/8")
        iyp.get_node("Prefix", prefix="10.1.0.0/16")
        iyp.get_node("IP", ip="10.1.2.3")
        link_ips_to_prefixes(iyp)
        assert iyp.run(
            "MATCH (:IP {ip:'10.1.2.3'})-[:PART_OF]->(p:Prefix) RETURN p.prefix"
        ).value() == "10.1.0.0/16"

    def test_covering_prefix_link(self):
        iyp = IYP()
        iyp.get_node("Prefix", prefix="10.0.0.0/8")
        iyp.get_node("Prefix", prefix="10.1.0.0/16")
        link_covering_prefixes(iyp)
        assert iyp.run(
            "MATCH (:Prefix {prefix:'10.1.0.0/16'})-[:PART_OF]->(p:Prefix) "
            "RETURN p.prefix"
        ).value() == "10.0.0.0/8"

    def test_url_to_hostname(self):
        iyp = IYP()
        iyp.get_node("URL", url="https://www.example.com/page")
        link_urls_to_hostnames(iyp)
        assert iyp.run(
            "MATCH (:URL)-[:PART_OF]->(h:HostName) RETURN h.name"
        ).value() == "www.example.com"

    def test_name_hierarchy(self):
        iyp = IYP()
        iyp.get_node("HostName", name="a.b.example.com")
        link_name_hierarchy(iyp)
        assert iyp.run(
            "MATCH (:HostName)-[:PART_OF]->(d:DomainName) RETURN d.name"
        ).value() == "example.com"
        assert iyp.run(
            "MATCH (p:DomainName {name:'com'})-[:PARENT]->(d:DomainName) "
            "RETURN d.name"
        ).value() == "example.com"

    def test_country_completion(self):
        iyp = IYP()
        iyp.get_node("Country", country_code="NL")
        complete_country_codes(iyp)
        row = iyp.run(
            "MATCH (c:Country) RETURN c.alpha3 AS a3, c.name AS name"
        ).single()
        assert row == {"a3": "NLD", "name": "Netherlands"}

    def test_postprocess_idempotent(self):
        iyp = IYP()
        iyp.get_node("Prefix", prefix="10.0.0.0/8")
        iyp.get_node("IP", ip="10.1.2.3")
        run_postprocessing(iyp)
        rels = iyp.store.relationship_count
        run_postprocessing(iyp)
        assert iyp.store.relationship_count == rels

    def test_refinement_links_carry_provenance(self, small_iyp):
        refinement_links = [
            rel
            for rel in small_iyp.store.iter_relationships()
            if rel.properties.get("reference_name") == "iyp.refinement"
        ]
        assert refinement_links
        for rel in refinement_links[:20]:
            assert rel.properties["reference_org"] == "IYP"


class TestRefinedGraphInvariants:
    def test_every_ip_has_af_and_prefix(self, small_iyp):
        rows = small_iyp.run(
            "MATCH (i:IP) OPTIONAL MATCH (i)-[p:PART_OF]->(:Prefix) "
            "RETURN i.af AS af, count(p) AS links"
        ).records
        for row in rows:
            assert row["af"] in (4, 6)

    def test_sampled_lpm_correct(self, small_iyp, small_world):
        rows = small_iyp.run(
            "MATCH (i:IP)-[:PART_OF]->(p:Prefix) RETURN i.ip AS ip, p.prefix AS prefix "
            "LIMIT 100"
        ).records
        from repro.nettypes import ip_in_prefix

        assert rows
        for row in rows:
            assert ip_in_prefix(row["ip"], row["prefix"])

    def test_countries_complete(self, small_iyp):
        rows = small_iyp.run(
            "MATCH (c:Country) RETURN c.country_code AS cc, c.alpha3 AS a3, "
            "c.name AS name"
        ).records
        assert rows
        for row in rows:
            assert row["a3"] and row["name"]


class TestPipelineTelemetry:
    def test_crawler_runs_recorded(self, small_world):
        iyp, report = build_iyp(
            small_world, dataset_names=["bgpkit.pfx2as"], postprocess=False
        )
        (run,) = report.crawler_runs
        assert run.name == "bgpkit.pfx2as"
        assert run.error is None
        assert run.seconds >= 0
        assert run.nodes_created > 0
        assert run.relationships_created > 0
        created = run.nodes_created
        assert created <= iyp.store.node_count

    def test_second_import_merges_instead_of_creating(self, small_world):
        iyp, report = build_iyp(
            small_world,
            dataset_names=["bgpkit.pfx2as", "pch.routing_snapshot"],
            postprocess=False,
        )
        second = report.crawler_runs[1]
        # The second origin dataset re-imports overlapping entities: the
        # fusion layer must merge its nodes, not duplicate them.
        assert second.nodes_merged > 0
        assert second.nodes_created == 0

    def test_metrics_counters_accumulate(self, small_world):
        from repro.server.metrics import Metrics

        metrics = Metrics()
        _, report = build_iyp(
            small_world,
            dataset_names=["bgpkit.pfx2as", "tranco.top1m"],
            postprocess=False,
            metrics=metrics,
        )
        assert metrics.counter_total("crawler_runs_total") == 2
        assert metrics.counter_value(
            "crawler_runs_total", {"crawler": "bgpkit.pfx2as", "status": "ok"}
        ) == 1
        total_created = sum(r.nodes_created for r in report.crawler_runs)
        assert metrics.counter_total("crawler_nodes_created_total") == total_created
        assert metrics.counter_total("crawler_seconds_total") > 0

    def test_failed_crawler_reports_error_run(self, small_world, monkeypatch):
        from repro.datasets.crawlers import tranco as tranco_module
        from repro.server.metrics import Metrics

        def boom(self):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(tranco_module.TrancoCrawler, "run", boom)
        metrics = Metrics()
        _, report = build_iyp(
            small_world, dataset_names=["tranco.top1m"],
            raise_on_error=False, metrics=metrics,
        )
        (run,) = report.crawler_runs
        assert run.error is not None and "synthetic failure" in run.error
        assert metrics.counter_value(
            "crawler_runs_total", {"crawler": "tranco.top1m", "status": "error"}
        ) == 1

    def test_build_trace_spans(self, small_world):
        from repro.obs import Tracer

        tracer = Tracer()
        _, report = build_iyp(
            small_world, dataset_names=["bgpkit.pfx2as"], tracer=tracer
        )
        assert report.trace_id is not None
        spans = tracer.get_trace(report.trace_id)
        names = [span.name for span in spans]
        assert names.count("crawler") == 1
        assert "postprocess" in names
        assert names[-1] == "build"
        crawler_span = next(s for s in spans if s.name == "crawler")
        assert crawler_span.attributes["crawler"] == "bgpkit.pfx2as"

    def test_structured_log_line(self, small_world, caplog):
        import json as json_module
        import logging

        with caplog.at_level(logging.INFO, logger="repro.pipeline"):
            build_iyp(small_world, dataset_names=["bgpkit.pfx2as"], postprocess=False)
        records = [r for r in caplog.records if r.name == "repro.pipeline"]
        assert records
        payload = json_module.loads(records[0].message.split(" ", 1)[1])
        assert payload["name"] == "bgpkit.pfx2as"
        assert payload["error"] is None


class TestSchemaValidation:
    def test_build_attaches_schema_report(self, small_world):
        _, report = build_iyp(small_world, dataset_names=["bgpkit.pfx2as"])
        assert report.schema_report is not None
        assert report.schema_report.ok
        assert report.schema_report.nodes_checked > 0
        assert report.schema_report.relationships_checked > 0

    def test_validate_can_be_disabled(self, small_world):
        _, report = build_iyp(
            small_world, dataset_names=["bgpkit.pfx2as"], validate=False
        )
        assert report.schema_report is None
        assert report.ok  # ok falls back to crawler errors only

    def test_schema_violations_counted_in_metrics(self, small_world, monkeypatch):
        from repro.datasets.crawlers import bgpkit as bgpkit_module
        from repro.server.metrics import Metrics

        original = bgpkit_module.PrefixToASNCrawler.run

        def sabotage(self):
            original(self)
            self.iyp.store.create_node({"Gremlin"}, {"id": 1})

        monkeypatch.setattr(bgpkit_module.PrefixToASNCrawler, "run", sabotage)
        metrics = Metrics()
        _, report = build_iyp(
            small_world, dataset_names=["bgpkit.pfx2as"],
            postprocess=False, metrics=metrics,
        )
        assert not report.ok
        assert report.schema_report.by_code() == {"SCH001": 1}
        assert metrics.counter_value(
            "schema_violations_total", {"code": "SCH001"}
        ) == 1
