"""Query fingerprinting: literal-insensitive, structure-sensitive.

The contract statement statistics rely on: two executions of the "same"
query — same shape, different constants — must aggregate under one
fingerprint, while any structural difference (labels, clauses,
projections) must split them.
"""

from __future__ import annotations

import string

from repro.cypher import CypherEngine
from repro.cypher.fingerprint import (
    FINGERPRINT_HEX_CHARS,
    fingerprint_query,
    normalize_query,
)
from repro.cypher.parser import parse
from repro.graphdb import GraphStore


def fp(query: str) -> str:
    return fingerprint_query(parse(query))[0]


def normalized(query: str) -> str:
    return normalize_query(parse(query))


class TestLiteralMasking:
    def test_integer_literals_share_a_fingerprint(self):
        assert fp("MATCH (a:AS) WHERE a.asn = 1 RETURN a") == fp(
            "MATCH (a:AS) WHERE a.asn = 99999 RETURN a"
        )

    def test_string_literals_share_a_fingerprint(self):
        assert fp("MATCH (n:Name) WHERE n.name = 'NTT' RETURN n") == fp(
            "MATCH (n:Name) WHERE n.name = 'Cloudflare' RETURN n"
        )

    def test_whitespace_and_keyword_case_are_insignificant(self):
        assert fp("MATCH (a:AS) WHERE a.asn = 1 RETURN a") == fp(
            "match   (a:AS)\n  where a.asn = 5\n  return a"
        )

    def test_parameter_names_are_masked(self):
        assert fp("MATCH (a:AS) WHERE a.asn = $x RETURN a") == fp(
            "MATCH (a:AS) WHERE a.asn = $other RETURN a"
        )

    def test_limit_literal_is_masked(self):
        assert fp("MATCH (a:AS) RETURN a LIMIT 10") == fp(
            "MATCH (a:AS) RETURN a LIMIT 50"
        )

    def test_normalized_text_hides_the_literal(self):
        text = normalized("MATCH (a:AS) WHERE a.asn = 2497 RETURN a")
        assert "2497" not in text
        assert "?" in text


class TestStructureSensitivity:
    def test_label_change_changes_the_fingerprint(self):
        assert fp("MATCH (a:AS) WHERE a.asn = 1 RETURN a") != fp(
            "MATCH (a:Prefix) WHERE a.asn = 1 RETURN a"
        )

    def test_literal_and_parameter_are_distinct(self):
        # A parameterized query plans differently from an inlined one;
        # they must not share an aggregate.
        assert fp("MATCH (a:AS) WHERE a.asn = 1 RETURN a") != fp(
            "MATCH (a:AS) WHERE a.asn = $asn RETURN a"
        )

    def test_extra_clause_changes_the_fingerprint(self):
        assert fp("MATCH (a:AS) RETURN a") != fp(
            "MATCH (a:AS) WHERE a.asn = 1 RETURN a"
        )

    def test_projection_change_changes_the_fingerprint(self):
        assert fp("MATCH (a:AS) RETURN a.asn") != fp("MATCH (a:AS) RETURN a.name")

    def test_relationship_direction_changes_the_fingerprint(self):
        out = "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a"
        rev = "MATCH (a:AS)<-[:ORIGINATE]-(p:Prefix) RETURN a"
        assert fp(out) != fp(rev)


class TestFingerprintFormat:
    def test_fingerprint_is_short_hex(self):
        value = fp("RETURN 1")
        assert len(value) == FINGERPRINT_HEX_CHARS
        assert set(value) <= set(string.hexdigits.lower())

    def test_deterministic_across_calls(self):
        query = "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a, p LIMIT 10"
        assert fp(query) == fp(query)


class TestEngineCache:
    def test_engine_fingerprint_is_cached(self):
        engine = CypherEngine(GraphStore())
        first = engine.fingerprint("MATCH (a:AS) WHERE a.asn = 1 RETURN a")
        again = engine.fingerprint("MATCH (a:AS) WHERE a.asn = 1 RETURN a")
        assert first == again
        assert first[0] == fp("MATCH (a:AS) WHERE a.asn = 1 RETURN a")
