"""The documentation generator (never drifts from code)."""

from repro.datasets import DATASETS
from repro.docs import (
    render_data_sources,
    render_node_types,
    render_relationship_types,
    write_docs,
)
from repro.ontology import ENTITIES, RELATIONSHIPS


class TestRendering:
    def test_data_sources_lists_every_dataset(self):
        page = render_data_sources()
        for spec in DATASETS:
            assert f"`{spec.name}`" in page

    def test_node_types_lists_every_entity(self):
        page = render_node_types()
        for label in ENTITIES:
            assert f"`:{label}`" in page

    def test_relationship_types_lists_every_type(self):
        page = render_relationship_types()
        for rel_type in RELATIONSHIPS:
            assert f"`:{rel_type}`" in page

    def test_loose_entities_flagged(self):
        page = render_node_types()
        assert "loosely identified" in page

    def test_markdown_tables_well_formed(self):
        for page in (
            render_data_sources(),
            render_node_types(),
            render_relationship_types(),
        ):
            rows = [line for line in page.splitlines() if line.startswith("|")]
            widths = {row.count("|") for row in rows}
            assert len(widths) == 1, "ragged markdown table"


class TestWriting:
    def test_write_docs(self, tmp_path):
        written = write_docs(tmp_path / "documentation")
        assert len(written) == 3
        for path in written:
            assert path.exists()
            assert path.read_text().startswith("#")

    def test_cli_docs_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["docs", "--output", str(tmp_path / "d")]) == 0
        assert "data-sources.md" in capsys.readouterr().out
