"""Engine edge cases and regression guards."""

import pytest

from repro.cypher import CypherEngine, CypherRuntimeError
from repro.graphdb import GraphStore


@pytest.fixture()
def engine():
    return CypherEngine(GraphStore())


class TestSelfLoops:
    @pytest.fixture()
    def loop_engine(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        store.create_relationship(a.id, "PEERS_WITH", a.id)
        return CypherEngine(store)

    def test_undirected_self_loop_matched_once(self, loop_engine):
        result = loop_engine.run(
            "MATCH (a:AS)-[:PEERS_WITH]-(b:AS) RETURN count(*)"
        )
        assert result.value() == 1

    def test_directed_self_loop(self, loop_engine):
        result = loop_engine.run(
            "MATCH (a:AS)-[:PEERS_WITH]->(a) RETURN a.asn"
        )
        assert result.value() == 1


class TestMultiClauseScoping:
    def test_with_drops_unprojected_variables(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (a:AS) WITH a.asn AS x RETURN a")

    def test_with_star_keeps_everything(self, engine):
        engine.run("CREATE (:AS {asn: 1})-[:ORIGINATE]->(:Prefix {prefix: 'p'})")
        result = engine.run(
            "MATCH (a:AS)-[:ORIGINATE]->(p) WITH * RETURN a.asn, p.prefix"
        )
        assert result.single() == {"a.asn": 1, "p.prefix": "p"}

    def test_chained_aggregation(self, engine):
        engine.run("UNWIND range(1, 6) AS x CREATE (:N {v: x, g: x % 2})")
        result = engine.run(
            "MATCH (n:N) WITH n.g AS g, count(*) AS per_group "
            "WITH max(per_group) AS biggest RETURN biggest"
        )
        assert result.value() == 3

    def test_match_after_return_fails(self, engine):
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (a) RETURN a MATCH (b) RETURN b")


class TestNullRows:
    def test_property_of_optional_null(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        result = engine.run(
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:X]->(b) RETURN b.anything AS v"
        )
        assert result.column("v") == [None]

    def test_labels_of_null_is_null(self, engine):
        engine.run("CREATE (:AS {asn: 1})")
        result = engine.run(
            "MATCH (a:AS) OPTIONAL MATCH (a)-[:X]->(b) RETURN labels(b) AS l"
        )
        assert result.column("l") == [None]

    def test_unwind_null_produces_no_rows(self, engine):
        result = engine.run("UNWIND null AS x RETURN x")
        assert len(result) == 0


class TestMergeEdgeCases:
    def test_merge_does_not_mix_partial_matches(self, engine):
        # MERGE of a whole path creates the whole path if the *pattern*
        # does not match, even when parts exist.
        engine.run("CREATE (:AS {asn: 1})")
        engine.run("MERGE (a:AS {asn: 1})-[:ORIGINATE]->(p:Prefix {prefix: 'x'})")
        # Node (asn:1) existed but the path did not -> Cypher creates a
        # fresh path, duplicating the AS node (documented semantics).
        assert engine.store.node_count == 3

    def test_merge_undirected_relationship_matches_either(self, engine):
        engine.run("CREATE (:A {v: 1})-[:X]->(:B {v: 2})")
        engine.run("MATCH (a:A), (b:B) MERGE (b)-[:X]-(a)")
        assert engine.store.relationship_count == 1

    def test_merge_with_parameter_values(self, engine):
        engine.run("MERGE (a:AS {asn: $asn})", {"asn": 42})
        engine.run("MERGE (a:AS {asn: $asn})", {"asn": 42})
        assert engine.store.node_count == 1


class TestIndexConsistencyAfterWrites:
    def test_set_then_match_via_index(self, engine):
        engine.store.create_index("AS", "asn")
        engine.run("CREATE (:AS {asn: 1})")
        engine.run("MATCH (a:AS {asn: 1}) SET a.asn = 99")
        assert len(engine.run("MATCH (a:AS {asn: 99}) RETURN a")) == 1
        assert len(engine.run("MATCH (a:AS {asn: 1}) RETURN a")) == 0

    def test_label_added_then_label_scan(self, engine):
        engine.run("CREATE (:HostName {name: 'ns1.x.com'})")
        engine.run("MATCH (h:HostName) SET h:AuthoritativeNameServer")
        assert len(
            engine.run("MATCH (n:AuthoritativeNameServer) RETURN n")
        ) == 1

    def test_deleted_node_not_matched(self, engine):
        engine.run("CREATE (:AS {asn: 1}), (:AS {asn: 2})")
        engine.run("MATCH (a:AS {asn: 1}) DETACH DELETE a")
        assert engine.run("MATCH (a:AS) RETURN count(a)").value() == 1


class TestLongPatterns:
    def test_six_hop_chain(self, engine):
        engine.run(
            "CREATE (:N {i:0})-[:E]->(:N {i:1})-[:E]->(:N {i:2})-[:E]->"
            "(:N {i:3})-[:E]->(:N {i:4})-[:E]->(:N {i:5})-[:E]->(:N {i:6})"
        )
        result = engine.run(
            "MATCH (a:N {i:0})-[:E]->()-[:E]->()-[:E]->()-[:E]->()-[:E]->()"
            "-[:E]->(z) RETURN z.i"
        )
        assert result.value() == 6

    def test_variable_length_zero_min_disallowed_by_grammar(self, engine):
        # *0.. is parsed (min 0) and the zero-hop case binds both ends
        # to the same node.
        engine.run("CREATE (:N {i:0})-[:E]->(:N {i:1})")
        result = engine.run(
            "MATCH (a:N {i:0})-[:E*0..1]-(b) RETURN collect(DISTINCT b.i)"
        )
        assert sorted(result.value()) == [0, 1]


class TestParameterTypes:
    def test_list_parameter(self, engine):
        engine.run("UNWIND $xs AS x CREATE (:N {v: x})", {"xs": [1, 2, 3]})
        assert engine.run("MATCH (n:N) RETURN count(n)").value() == 3

    def test_map_parameter_via_set(self, engine):
        # Whole-map node parameters (`CREATE (:N $props)`) are not in
        # the grammar; the supported spelling is CREATE + SET +=.
        engine.run(
            "CREATE (n:N) SET n += $props", {"props": {"a": 1, "b": "x"}}
        )
        node = engine.store.nodes_with_label("N")[0]
        assert node.properties == {"a": 1, "b": "x"}

    def test_in_with_parameter_list(self, engine):
        engine.run("UNWIND [1,2,3,4] AS x CREATE (:N {v: x})")
        result = engine.run(
            "MATCH (n:N) WHERE n.v IN $wanted RETURN count(n)", {"wanted": [2, 4]}
        )
        assert result.value() == 2
