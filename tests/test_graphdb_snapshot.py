"""Snapshots: the reproduction's equivalent of IYP's weekly dumps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphStore, load_snapshot, save_snapshot
from repro.graphdb.snapshot import snapshot_dict, store_from_dict


def _sample_store() -> GraphStore:
    store = GraphStore()
    store.create_unique_constraint("AS", "asn")
    a = store.create_node({"AS"}, {"asn": 2914, "tags": ["Tier1", "Eyeball"]})
    p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8", "af": 4})
    store.create_relationship(a.id, "ORIGINATE", p.id, {"reference_name": "x"})
    return store


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.node_count == store.node_count
        assert loaded.relationship_count == store.relationship_count
        assert snapshot_dict(loaded) == snapshot_dict(store)

    def test_indexes_and_constraints_restored(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.has_index("AS", "asn")
        assert len(loaded.find_nodes("AS", "asn", 2914)) == 1

    def test_list_properties_survive(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        node = loaded.find_nodes("AS", "asn", 2914)[0]
        assert node.properties["tags"] == ["Tier1", "Eyeball"]

    def test_version_check(self):
        try:
            store_from_dict({"format_version": 999, "nodes": [], "relationships": []})
        except ValueError as exc:
            assert "999" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_snapshot_is_compressed_json(self, tmp_path):
        import gzip
        import json

        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert len(payload["nodes"]) == 2


class TestFidelityAfterDeletions:
    """Ids and index behaviour must survive the round-trip exactly.

    The serving layer caches results keyed by ``store.version`` and
    returns node/relationship ids to clients, so a reload that compacts
    or remaps ids would silently change what the server hands out.
    """

    def _store_with_holes(self) -> GraphStore:
        store = GraphStore()
        nodes = [store.create_node({"N"}, {"i": i}) for i in range(6)]
        rels = [
            store.create_relationship(nodes[i].id, "E", nodes[i + 1].id)
            for i in range(5)
        ]
        # Punch holes in both id spaces.
        store.delete_relationship(rels[1].id)
        store.delete_node(nodes[2].id, detach=True)  # also removes a rel
        return store

    def test_ids_preserved_after_deletions(self):
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        assert {n.id for n in restored.iter_nodes()} == {
            n.id for n in store.iter_nodes()
        }
        assert {r.id for r in restored.iter_relationships()} == {
            r.id for r in store.iter_relationships()
        }
        assert snapshot_dict(restored) == snapshot_dict(store)

    def test_new_ids_do_not_collide_after_reload(self):
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        existing = {n.id for n in restored.iter_nodes()}
        fresh = restored.create_node({"N"}, {"i": 99})
        assert fresh.id not in existing

    def test_constraint_enforced_after_reload(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        from repro.graphdb.errors import ConstraintViolationError

        try:
            loaded.create_node({"AS"}, {"asn": 2914})
        except ConstraintViolationError:
            pass
        else:
            raise AssertionError("unique constraint not enforced after reload")

    def test_index_used_by_engine_after_reload(self, tmp_path):
        from repro.cypher import CypherEngine

        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        plan = CypherEngine(loaded).explain("MATCH (a:AS {asn: 2914}) RETURN a")
        assert "index" in str(plan).lower()

    def test_reload_starts_at_version_of_rebuild(self):
        """The version counter restarts per process; caches key on the
        (store object, version) pair, so only monotonicity matters."""
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        before = restored.version
        restored.create_node({"N"}, {"i": 100})
        assert restored.version == before + 1


_props = st.dictionaries(
    st.text(alphabet="abcxyz", min_size=1, max_size=5),
    st.one_of(st.integers(-5, 5), st.text(max_size=5), st.booleans()),
    max_size=3,
)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7), _props), max_size=15),
)
def test_property_snapshot_roundtrip(n_nodes, edges):
    """Any generated graph survives a dict round-trip exactly."""
    store = GraphStore()
    nodes = [store.create_node({"N"}, {"i": i}) for i in range(n_nodes)]
    for start, end, props in edges:
        store.create_relationship(
            nodes[start % n_nodes].id, "E", nodes[end % n_nodes].id, props
        )
    restored = store_from_dict(snapshot_dict(store))
    assert snapshot_dict(restored) == snapshot_dict(store)
