"""Snapshots: the reproduction's equivalent of IYP's weekly dumps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphStore, load_snapshot, save_snapshot
from repro.graphdb.snapshot import snapshot_dict, store_from_dict


def _sample_store() -> GraphStore:
    store = GraphStore()
    store.create_unique_constraint("AS", "asn")
    a = store.create_node({"AS"}, {"asn": 2914, "tags": ["Tier1", "Eyeball"]})
    p = store.create_node({"Prefix"}, {"prefix": "10.0.0.0/8", "af": 4})
    store.create_relationship(a.id, "ORIGINATE", p.id, {"reference_name": "x"})
    return store


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.node_count == store.node_count
        assert loaded.relationship_count == store.relationship_count
        assert snapshot_dict(loaded) == snapshot_dict(store)

    def test_indexes_and_constraints_restored(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        assert loaded.has_index("AS", "asn")
        assert len(loaded.find_nodes("AS", "asn", 2914)) == 1

    def test_list_properties_survive(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        node = loaded.find_nodes("AS", "asn", 2914)[0]
        assert node.properties["tags"] == ["Tier1", "Eyeball"]

    def test_version_check(self):
        try:
            store_from_dict({"format_version": 999, "nodes": [], "relationships": []})
        except ValueError as exc:
            assert "999" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_snapshot_is_compressed_json(self, tmp_path):
        import gzip
        import json

        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert len(payload["nodes"]) == 2


class TestFidelityAfterDeletions:
    """Ids and index behaviour must survive the round-trip exactly.

    The serving layer caches results keyed by ``store.version`` and
    returns node/relationship ids to clients, so a reload that compacts
    or remaps ids would silently change what the server hands out.
    """

    def _store_with_holes(self) -> GraphStore:
        store = GraphStore()
        nodes = [store.create_node({"N"}, {"i": i}) for i in range(6)]
        rels = [
            store.create_relationship(nodes[i].id, "E", nodes[i + 1].id)
            for i in range(5)
        ]
        # Punch holes in both id spaces.
        store.delete_relationship(rels[1].id)
        store.delete_node(nodes[2].id, detach=True)  # also removes a rel
        return store

    def test_ids_preserved_after_deletions(self):
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        assert {n.id for n in restored.iter_nodes()} == {
            n.id for n in store.iter_nodes()
        }
        assert {r.id for r in restored.iter_relationships()} == {
            r.id for r in store.iter_relationships()
        }
        assert snapshot_dict(restored) == snapshot_dict(store)

    def test_new_ids_do_not_collide_after_reload(self):
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        existing = {n.id for n in restored.iter_nodes()}
        fresh = restored.create_node({"N"}, {"i": 99})
        assert fresh.id not in existing

    def test_constraint_enforced_after_reload(self, tmp_path):
        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        from repro.graphdb.errors import ConstraintViolationError

        try:
            loaded.create_node({"AS"}, {"asn": 2914})
        except ConstraintViolationError:
            pass
        else:
            raise AssertionError("unique constraint not enforced after reload")

    def test_index_used_by_engine_after_reload(self, tmp_path):
        from repro.cypher import CypherEngine

        store = _sample_store()
        path = tmp_path / "snapshot.json.gz"
        save_snapshot(store, path)
        loaded = load_snapshot(path)
        plan = CypherEngine(loaded).explain("MATCH (a:AS {asn: 2914}) RETURN a")
        assert "index" in str(plan).lower()

    def test_reload_starts_at_version_of_rebuild(self):
        """The version counter restarts per process; caches key on the
        (store object, version) pair, so only monotonicity matters."""
        store = self._store_with_holes()
        restored = store_from_dict(snapshot_dict(store))
        before = restored.version
        restored.create_node({"N"}, {"i": 100})
        assert restored.version == before + 1


_EDGE_CASE_PROPS = {
    "unicode": "日本インターネットエクスチェンジ ☂ Ωmega",
    "empty_string": "",
    "large_int": 2**70,
    "negative": -(2**40),
    "float": 3.14159,
    "bool_true": True,
    "bool_false": False,
    "empty_list": [],
    "list_with_none": [1, None, "x"],
    "mixed_list": ["AS", 2914, True, 0.5],
}


@pytest.mark.parametrize("format", [1, 2], ids=["v1", "v2"])
class TestEdgeCasePropertyFidelity:
    """Awkward property values must survive both formats bit-for-bit."""

    def _roundtrip(self, tmp_path, format, props):
        store = GraphStore()
        a = store.create_node({"N"}, dict(props))
        b = store.create_node({"N"}, {"i": 1})
        store.create_relationship(a.id, "E", b.id, dict(props))
        path = tmp_path / f"edge.v{format}"
        save_snapshot(store, path, format=format)
        return store, load_snapshot(path)

    def test_values_identical(self, tmp_path, format):
        store, loaded = self._roundtrip(tmp_path, format, _EDGE_CASE_PROPS)
        node = next(n for n in loaded.iter_nodes() if "unicode" in n.properties)
        rel = next(iter(loaded.iter_relationships()))
        for entity in (node, rel):
            for key, value in _EDGE_CASE_PROPS.items():
                assert entity.properties[key] == value, key
        assert snapshot_dict(loaded) == snapshot_dict(store)

    def test_bool_does_not_become_int(self, tmp_path, format):
        # In Python True == 1; serialization must not flatten the type,
        # or WHERE x = true / x = 1 would change answers after a reload.
        _, loaded = self._roundtrip(
            tmp_path, format, {"flag": True, "count": 1, "zero": False}
        )
        node = next(n for n in loaded.iter_nodes() if "flag" in n.properties)
        assert node.properties["flag"] is True
        assert node.properties["zero"] is False
        assert type(node.properties["count"]) is int

    def test_large_int_exact(self, tmp_path, format):
        _, loaded = self._roundtrip(tmp_path, format, {"big": 2**70 + 1})
        node = next(n for n in loaded.iter_nodes() if "big" in n.properties)
        assert node.properties["big"] == 2**70 + 1

    def test_none_scalar_never_reaches_a_snapshot(self, tmp_path, format):
        # The store follows Neo4j's null semantics: a None property is
        # a removal, so neither format ever has to encode a bare null —
        # only None inside lists (kept above) is representable.
        store, loaded = self._roundtrip(
            tmp_path, format, {"gone": None, "kept": 1}
        )
        node = next(n for n in loaded.iter_nodes() if "kept" in n.properties)
        assert "gone" not in node.properties

    def test_nested_lists_rejected_at_the_model(self, tmp_path, format):
        # The property model only allows scalars and flat lists, so a
        # nested list can never reach either serializer.
        store = GraphStore()
        with pytest.raises(TypeError):
            store.create_node({"N"}, {"nested": [[1, 2], [3]]})


@pytest.mark.parametrize("format", [1, 2], ids=["v1", "v2"])
def test_snapshot_bytes_deterministic(tmp_path, format):
    """Two saves of the same store are byte-identical (checksum dedup)."""
    store = GraphStore()
    store.create_index("N", "i")
    nodes = [
        store.create_node({"N"}, {"i": i, "name": f"n{i}"}) for i in range(20)
    ]
    for a, b in zip(nodes, nodes[1:], strict=False):
        store.create_relationship(a.id, "E", b.id, {"w": a.id})
    first, second = tmp_path / "first", tmp_path / "second"
    save_snapshot(store, first, format=format)
    save_snapshot(store, second, format=format)
    assert first.read_bytes() == second.read_bytes()


_props = st.dictionaries(
    st.text(alphabet="abcxyz", min_size=1, max_size=5),
    st.one_of(st.integers(-5, 5), st.text(max_size=5), st.booleans()),
    max_size=3,
)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7), _props), max_size=15),
)
def test_property_snapshot_roundtrip(n_nodes, edges):
    """Any generated graph survives a dict round-trip exactly."""
    store = GraphStore()
    nodes = [store.create_node({"N"}, {"i": i}) for i in range(n_nodes)]
    for start, end, props in edges:
        store.create_relationship(
            nodes[start % n_nodes].id, "E", nodes[end % n_nodes].id, props
        )
    restored = store_from_dict(snapshot_dict(store))
    assert snapshot_dict(restored) == snapshot_dict(store)
