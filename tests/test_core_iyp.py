"""The IYP facade: canonicalization, provenance, dataset parallelism."""

import pytest

from repro.core import Reference


class TestCanonicalization:
    def test_prefix_dedup_from_paper(self, empty_iyp):
        # Section 2.3's exact example: both spellings -> one node.
        first = empty_iyp.get_node("Prefix", prefix="2001:DB8::/32")
        second = empty_iyp.get_node("Prefix", prefix="2001:0db8::/32")
        assert first.id == second.id
        assert first.properties["prefix"] == "2001:db8::/32"

    def test_asn_spellings_dedup(self, empty_iyp):
        assert (
            empty_iyp.get_node("AS", asn="AS2914").id
            == empty_iyp.get_node("AS", asn=2914).id
        )

    def test_hostname_case_dedup(self, empty_iyp):
        assert (
            empty_iyp.get_node("HostName", name="WWW.Example.COM.").id
            == empty_iyp.get_node("HostName", name="www.example.com").id
        )

    def test_country_code_uppercased(self, empty_iyp):
        node = empty_iyp.get_node("Country", country_code="nl")
        assert node.properties["country_code"] == "NL"

    def test_ip_canonicalized(self, empty_iyp):
        node = empty_iyp.get_node("IP", ip="2001:DB8::0001")
        assert node.properties["ip"] == "2001:db8::1"

    def test_unknown_label_rejected(self, empty_iyp):
        with pytest.raises(KeyError):
            empty_iyp.get_node("Widget", id=1)

    def test_missing_key_property_rejected(self, empty_iyp):
        with pytest.raises(TypeError):
            empty_iyp.get_node("AS", name="missing asn")

    def test_extra_properties_merged(self, empty_iyp):
        empty_iyp.get_node("AS", asn=1)
        node = empty_iyp.get_node("AS", properties={"cone": 5}, asn=1)
        assert node.properties["cone"] == 5

    def test_batch_get_nodes_dedups(self, empty_iyp):
        nodes = empty_iyp.batch_get_nodes("AS", "asn", ["AS1", 1, "1", 2])
        assert set(nodes) == {1, 2}
        assert empty_iyp.store.node_count == 2


class TestProvenance:
    def test_reference_properties_stamped(self, empty_iyp):
        a = empty_iyp.get_node("AS", asn=1)
        p = empty_iyp.get_node("Prefix", prefix="10.0.0.0/8")
        ref = Reference("BGPKIT", "bgpkit.pfx2as", url_data="https://x", time_fetch="t")
        rel = empty_iyp.add_link(a, "ORIGINATE", p, reference=ref)
        assert rel.properties["reference_org"] == "BGPKIT"
        assert rel.properties["reference_name"] == "bgpkit.pfx2as"
        assert rel.properties["reference_url_data"] == "https://x"
        assert rel.properties["reference_time_fetch"] == "t"

    def test_same_dataset_does_not_duplicate(self, empty_iyp):
        a = empty_iyp.get_node("AS", asn=1)
        p = empty_iyp.get_node("Prefix", prefix="10.0.0.0/8")
        ref = Reference("BGPKIT", "bgpkit.pfx2as")
        empty_iyp.add_link(a, "ORIGINATE", p, reference=ref)
        empty_iyp.add_link(a, "ORIGINATE", p, reference=ref)
        assert empty_iyp.store.relationship_count == 1

    def test_two_datasets_yield_parallel_links(self, empty_iyp):
        # Section 2.3: the semantically same link from two datasets
        # stays two distinct relationships.
        a = empty_iyp.get_node("AS", asn=1)
        p = empty_iyp.get_node("Prefix", prefix="10.0.0.0/8")
        empty_iyp.add_link(a, "ORIGINATE", p, reference=Reference("BGPKIT", "bgpkit.pfx2as"))
        empty_iyp.add_link(a, "ORIGINATE", p, reference=Reference("IHR", "ihr.rov"))
        assert empty_iyp.store.relationship_count == 2

    def test_dataset_selectable_by_reference_name(self, empty_iyp):
        a = empty_iyp.get_node("AS", asn=1)
        p = empty_iyp.get_node("Prefix", prefix="10.0.0.0/8")
        empty_iyp.add_link(a, "ORIGINATE", p, reference=Reference("BGPKIT", "bgpkit.pfx2as"))
        empty_iyp.add_link(a, "ORIGINATE", p, reference=Reference("IHR", "ihr.rov"))
        result = empty_iyp.run(
            "MATCH (:AS)-[r:ORIGINATE {reference_name:'ihr.rov'}]->(:Prefix) "
            "RETURN count(r)"
        )
        assert result.value() == 1


class TestQueriesAndSummary:
    def test_run_docstring_example(self, empty_iyp):
        asn = empty_iyp.get_node("AS", asn="AS2914")
        pfx = empty_iyp.get_node("Prefix", prefix="10.0.0.0/8")
        empty_iyp.add_link(asn, "ORIGINATE", pfx, reference=Reference("BGPKIT", "x"))
        value = empty_iyp.run(
            "MATCH (a:AS)-[:ORIGINATE]-(:Prefix) RETURN a.asn"
        ).value()
        assert value == 2914

    def test_summary_counts(self, empty_iyp):
        empty_iyp.get_node("AS", asn=1)
        empty_iyp.get_node("AS", asn=2)
        summary = empty_iyp.summary()
        assert summary["nodes"] == 2
        assert summary["labels"] == {"AS": 2}

    def test_indexes_exist_for_all_entities(self, empty_iyp):
        from repro.ontology import ENTITIES

        for definition in ENTITIES.values():
            assert empty_iyp.store.has_index(
                definition.label, definition.key_properties[0]
            )
