"""Property-based cross-check of the pattern matcher.

For random small multigraphs and random two-hop patterns, the engine's
MATCH results must agree with an exhaustive brute-force enumeration that
independently implements Cypher's semantics (label filtering, direction,
relationship isomorphism).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import CypherEngine
from repro.graphdb import GraphStore

LABELS = ["A", "B"]
REL_TYPES = ["X", "Y"]


@st.composite
def graphs(draw):
    """A random small directed multigraph with labels and types."""
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    node_labels = draw(
        st.lists(
            st.sampled_from(LABELS), min_size=n_nodes, max_size=n_nodes
        )
    )
    n_edges = draw(st.integers(min_value=0, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_nodes - 1),
                st.sampled_from(REL_TYPES),
                st.integers(0, n_nodes - 1),
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    return node_labels, edges


def _build(node_labels, edges):
    store = GraphStore()
    nodes = [
        store.create_node({label}, {"i": index})
        for index, label in enumerate(node_labels)
    ]
    rels = [
        store.create_relationship(nodes[src].id, rel_type, nodes[dst].id)
        for src, rel_type, dst in edges
    ]
    return store, nodes, rels


def _brute_force_two_hop(
    nodes, rels, label_a, type_1, dir_1, label_b, type_2, dir_2, label_c
):
    """All (a.i, b.i, c.i) for (a:A)-[:T1]-(b:B)-[:T2]-(c:C) with
    relationship isomorphism."""
    results = set()
    for rel_1, rel_2 in itertools.permutations(rels, 2):
        if rel_1.type != type_1 or rel_2.type != type_2:
            continue
        for a_id, b_id in _orientations(rel_1, dir_1):
            for b2_id, c_id in _orientations(rel_2, dir_2):
                if b_id != b2_id:
                    continue
                a, b, c = nodes[a_id], nodes[b_id], nodes[c_id]
                if (
                    label_a in a.labels
                    and label_b in b.labels
                    and label_c in c.labels
                ):
                    results.add(
                        (a.properties["i"], b.properties["i"], c.properties["i"])
                    )
    return results


def _orientations(rel, direction):
    # Node ids here are dense (0..n-1) because the store assigns them
    # sequentially starting at 0 in these tests.
    if direction == "out":
        yield rel.start_id, rel.end_id
    elif direction == "in":
        yield rel.end_id, rel.start_id
    else:
        yield rel.start_id, rel.end_id
        if rel.start_id != rel.end_id:
            yield rel.end_id, rel.start_id


def _arrow(rel_type, direction):
    if direction == "out":
        return f"-[:{rel_type}]->"
    if direction == "in":
        return f"<-[:{rel_type}]-"
    return f"-[:{rel_type}]-"


@settings(max_examples=120, deadline=None)
@given(
    graphs(),
    st.sampled_from(LABELS),
    st.sampled_from(REL_TYPES),
    st.sampled_from(["out", "in", "both"]),
    st.sampled_from(LABELS),
    st.sampled_from(REL_TYPES),
    st.sampled_from(["out", "in", "both"]),
    st.sampled_from(LABELS),
)
def test_property_two_hop_matches_brute_force(
    graph, label_a, type_1, dir_1, label_b, type_2, dir_2, label_c
):
    node_labels, edges = graph
    store, nodes, rels = _build(node_labels, edges)
    engine = CypherEngine(store)
    query = (
        f"MATCH (a:{label_a}){_arrow(type_1, dir_1)}(b:{label_b})"
        f"{_arrow(type_2, dir_2)}(c:{label_c}) "
        "RETURN a.i AS a, b.i AS b, c.i AS c"
    )
    got = {(row["a"], row["b"], row["c"]) for row in engine.run(query)}
    expected = _brute_force_two_hop(
        nodes, rels, label_a, type_1, dir_1, label_b, type_2, dir_2, label_c
    )
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(graphs(), st.sampled_from(LABELS), st.sampled_from(REL_TYPES),
       st.sampled_from(["out", "in", "both"]), st.sampled_from(LABELS))
def test_property_one_hop_matches_brute_force(
    graph, label_a, rel_type, direction, label_b
):
    node_labels, edges = graph
    store, nodes, rels = _build(node_labels, edges)
    engine = CypherEngine(store)
    query = (
        f"MATCH (a:{label_a}){_arrow(rel_type, direction)}(b:{label_b}) "
        "RETURN a.i AS a, b.i AS b"
    )
    got = sorted((row["a"], row["b"]) for row in engine.run(query))
    expected = []
    for rel in rels:
        if rel.type != rel_type:
            continue
        for a_id, b_id in _orientations(rel, direction):
            a, b = nodes[a_id], nodes[b_id]
            if label_a in a.labels and label_b in b.labels:
                expected.append((a.properties["i"], b.properties["i"]))
    assert got == sorted(expected)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_property_count_star_equals_row_count(graph):
    node_labels, edges = graph
    store, _nodes, _rels = _build(node_labels, edges)
    engine = CypherEngine(store)
    rows = engine.run("MATCH (a)-[r]->(b) RETURN a, r, b")
    count = engine.run("MATCH (a)-[r]->(b) RETURN count(*)").value()
    assert count == len(rows) == len(edges)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_property_distinct_never_exceeds_total(graph):
    node_labels, edges = graph
    store, _nodes, _rels = _build(node_labels, edges)
    engine = CypherEngine(store)
    total = engine.run("MATCH (a)--(b) RETURN a.i AS x")
    distinct = engine.run("MATCH (a)--(b) RETURN DISTINCT a.i AS x")
    assert len(distinct) <= len(total)
    assert set(distinct.column("x")) == set(total.column("x"))


# ---------------------------------------------------------------------------
# Linter robustness: any query the generator produces — valid ontology
# vocabulary or not, parsable or not — must lint without crashing.
# ---------------------------------------------------------------------------

ONTOLOGY_LABELS = ["AS", "Prefix", "IP", "ASN", "Widget"]
ONTOLOGY_TYPES = ["ORIGINATE", "DEPENDS_ON", "FROBNICATES", "X"]


@st.composite
def random_queries(draw):
    """Random one/two-hop queries mixing real and bogus vocabulary."""
    label_a = draw(st.sampled_from(ONTOLOGY_LABELS))
    label_b = draw(st.sampled_from(ONTOLOGY_LABELS))
    rel_type = draw(st.sampled_from(ONTOLOGY_TYPES))
    direction = draw(st.sampled_from(["out", "in", "both"]))
    where = draw(
        st.sampled_from(
            [
                "",
                " WHERE a.asn = 1",
                " WHERE a.asn = 'one'",
                " WHERE a.bogus CONTAINS 'x'",
                " WHERE b.prefix STARTS WITH '10.'",
            ]
        )
    )
    tail = draw(st.sampled_from(["RETURN a", "RETURN a, b", "RETURN *",
                                 "RETURN count(*)", "RETURN missing.x"]))
    return (
        f"MATCH (a:{label_a}){_arrow(rel_type, direction)}(b:{label_b})"
        f"{where} {tail}"
    )


@settings(max_examples=150, deadline=None)
@given(random_queries())
def test_property_linter_never_crashes(query):
    from repro.lint import SEVERITIES, lint_query

    for finding in lint_query(query):
        assert finding.code.startswith("LNT")
        assert finding.severity in SEVERITIES


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=60))
def test_property_linter_handles_arbitrary_text(text):
    from repro.lint import lint_query

    findings = lint_query(text)
    # Unparsable inputs must degrade to a single LNT000, never raise.
    if findings and findings[0].code == "LNT000":
        assert findings[0].severity == "error"


@settings(max_examples=60, deadline=None)
@given(graphs(), random_queries())
def test_property_linter_with_store_never_crashes(graph, query):
    from repro.lint import QueryLinter

    node_labels, edges = graph
    store, _nodes, _rels = _build(node_labels, edges)
    QueryLinter(store).lint(query)
