"""The paper's published queries (Listings 1-6, Figure 3) must run
verbatim on the full knowledge graph and return sensible data."""

import pytest

from repro.studies import queries


class TestListing1:
    def test_all_originating_ases(self, small_iyp, small_world):
        result = small_iyp.run(queries.LISTING_1)
        asns = set(result.column())
        # Every AS in the world originates at least one prefix.
        assert asns == set(small_world.ases)


class TestListing2:
    def test_moas_prefixes(self, small_iyp, small_world):
        result = small_iyp.run(queries.LISTING_2)
        found = set(result.column())
        expected = {
            info.prefix
            for info in small_world.prefixes.values()
            if len(info.origins) > 1
        }
        # All genuine MOAS prefixes are found.  The graph may contain a
        # few more from the injected BGPKIT IPv6 error (wrong origin =
        # second origin in the fused graph) - exactly the paper's point
        # about dataset comparison.
        assert expected <= found
        injected = found - expected
        for prefix in injected:
            assert small_world.prefixes[prefix].af == 6

    def test_moas_requires_distinct_asn(self, small_iyp):
        # No prefix may be reported MOAS because of two parallel links
        # from the same AS (bgpkit + pch import the same origination).
        result = small_iyp.run(queries.LISTING_2)
        for prefix in result.column():
            origins = small_iyp.run(
                "MATCH (a:AS)-[:ORIGINATE]-(p:Prefix {prefix: $p}) "
                "RETURN collect(DISTINCT a.asn)",
                {"p": prefix},
            ).value()
            assert len(origins) > 1


class TestListing3:
    def test_org_hostnames(self, small_iyp, small_world):
        # Pick an org whose AS hosts Tranco content on an RPKI-valid
        # prefix, then the query must return at least one hostname.
        candidates = {}
        for name, domain in small_world.domains.items():
            info = small_world.prefixes.get(
                small_world.prefix_of_ip(domain.ips[0]) if domain.ips else ""
            )
            if info is not None and info.rov_status == "Valid":
                org = small_world.ases[domain.hosting_asn].org_name
                candidates[org] = name
        org_name, expected_domain = next(iter(candidates.items()))
        result = small_iyp.run(queries.LISTING_3, {"org_name": org_name})
        assert expected_domain in set(result.column())


class TestListing4:
    def test_invalid_prefix_count(self, small_iyp, small_world):
        result = small_iyp.run(queries.LISTING_4)
        count = result.value()
        invalid_world = sum(
            1
            for info in small_world.prefixes.values()
            if info.rov_status.startswith("Invalid")
        )
        # Only invalid prefixes that actually host ranked content are
        # counted, so the graph count is bounded by the world count.
        assert 0 <= count <= invalid_world


class TestListing5:
    def test_cno_nameserver_ips(self, small_iyp):
        result = small_iyp.run(queries.LISTING_5)
        assert len(result) > 0
        for row in result.records:
            assert row["domain"].endswith((".com", ".net", ".org"))
            assert row["ips"]
            assert all("." in ip and ":" not in ip for ip in row["ips"])


class TestListing6:
    def test_all_tranco_prefixes(self, small_iyp):
        result = small_iyp.run(queries.LISTING_6)
        assert len(result) > 0
        for row in result.records[:50]:
            assert row["prefixes"]


class TestFigure3Searches:
    def test_pattern_search_without_lexical_elements(self, small_iyp):
        # Search 1 and 2 of Figure 3 are purely structural; they must
        # not require any keyword, only ontology terms.
        originating = small_iyp.run(
            "MATCH (x:AS)-[:ORIGINATE]-(:Prefix) RETURN count(DISTINCT x)"
        ).value()
        assert originating > 0

    def test_specific_node_search(self, small_iyp, small_world):
        # Search 3 anchors on a specific node (semantic, not literal).
        asn = next(iter(small_world.ases))
        result = small_iyp.run(
            "MATCH (a:AS {asn: $asn}) RETURN a.asn", {"asn": asn}
        )
        assert result.value() == asn
        # Radically different from looking for the literal string:
        # no other node type matches.
        assert len(result) == 1


class TestListingsUnderProfile:
    """Every published listing must produce an operator-level PROFILE
    tree: rows, store hits, and wall time per executed clause."""

    LISTINGS = {
        "listing1": (queries.LISTING_1, None),
        "listing2": (queries.LISTING_2, None),
        "listing3": (queries.LISTING_3, "org"),  # needs $org_name
        "listing4": (queries.LISTING_4, None),
        "listing5": (queries.LISTING_5, None),
        "listing6": (queries.LISTING_6, None),
    }

    @pytest.mark.parametrize("name", sorted(LISTINGS))
    def test_profile_tree(self, small_iyp, small_world, name):
        listing, needs_org = self.LISTINGS[name]
        params = None
        if needs_org:
            org = next(iter(small_world.ases.values())).org_name
            params = {"org_name": org}
        result, plan = small_iyp.engine.profile(listing, params)
        assert plan.operator == "Query"
        assert plan.rows == len(result)
        assert plan.children, "profiled plan must contain executed clauses"
        match_nodes = [n for n in plan.walk() if n.operator == "Match"]
        assert match_nodes, "every listing starts from a MATCH"
        for node in plan.walk():
            assert node.seconds >= 0
            assert node.rows >= 0
        # The listings all traverse relationships, so the store must
        # have reported hits attributed somewhere in the tree.
        assert plan.total_hits > 0
        assert any(n.hits for n in match_nodes)
        # Rendered form is line-per-operator.
        assert len(plan.render().splitlines()) == sum(1 for _ in plan.walk())
