"""PROFILE mode and the plumbing beneath it: store-access recording,
operator attribution, and the slow-query log."""

import pytest

from repro.cypher import CypherEngine
from repro.graphdb import GraphStore
from repro.obs import AccessCollector, collecting, current_collector, record_access
from repro.obs.slowlog import MAX_QUERY_CHARS, SlowQueryLog, params_hash


@pytest.fixture()
def store():
    """A tiny graph with an index on :AS(asn) and some edges."""
    store = GraphStore()
    store.create_index("AS", "asn")
    ases = [store.create_node({"AS"}, {"asn": 64500 + i}) for i in range(10)]
    prefixes = [
        store.create_node({"Prefix"}, {"prefix": f"10.{i}.0.0/16"}) for i in range(10)
    ]
    for a, p in zip(ases, prefixes, strict=True):
        store.create_relationship(a.id, "ORIGINATE", p.id)
    return store


@pytest.fixture()
def engine(store):
    return CypherEngine(store)


class TestAccessRecording:
    def test_no_collector_is_a_noop(self):
        assert current_collector() is None
        record_access("label_scan")  # must not raise

    def test_collecting_installs_and_restores(self):
        collector = AccessCollector()
        with collecting(collector):
            assert current_collector() is collector
            record_access("index_seek")
            record_access("index_seek", 2)
        assert current_collector() is None
        assert collector.hits == {"index_seek": 3}

    def test_collecting_nests(self):
        outer, inner = AccessCollector(), AccessCollector()
        with collecting(outer):
            with collecting(inner):
                record_access("expand")
            record_access("label_scan")
        assert inner.hits == {"expand": 1}
        assert outer.hits == {"label_scan": 1}

    def test_operator_bucket_attribution(self):
        collector = AccessCollector()
        bucket: dict[str, int] = {}
        with collecting(collector):
            record_access("full_scan")
            previous = collector.set_operator(bucket)
            record_access("index_seek")
            collector.set_operator(previous)
            record_access("expand")
        assert bucket == {"index_seek": 1}
        # Events outside the bucket stay with the collector; each event
        # lands in exactly one place.
        assert collector.hits == {"full_scan": 1, "expand": 1}

    def test_store_reports_access_kinds(self, store):
        collector = AccessCollector()
        with collecting(collector):
            store.find_nodes("AS", "asn", 64500)        # indexed
            store.find_nodes("Prefix", "prefix", "x")   # not indexed
            store.nodes_with_label("AS")
            list(store.iter_nodes())
            store.relationships_of(0)
        assert collector.hits["index_seek"] == 1
        assert collector.hits["label_scan"] == 2
        assert collector.hits["full_scan"] == 1
        assert collector.hits["expand"] == 1

    def test_store_reports_write_kinds(self):
        store = GraphStore()
        collector = AccessCollector()
        with collecting(collector):
            a = store.merge_node("AS", "asn", 1)    # created
            store.merge_node("AS", "asn", 1)        # merged
            b = store.create_node({"AS"}, {"asn": 2})
            store.merge_relationship(a.id, "PEERS_WITH", b.id)  # created
            store.merge_relationship(a.id, "PEERS_WITH", b.id)  # merged
        assert collector.hits["node_created"] >= 2
        assert collector.hits["node_merged"] == 1
        assert collector.hits["rel_created"] == 1
        assert collector.hits["rel_merged"] == 1


class TestEngineProfile:
    def test_profile_returns_result_and_tree(self, engine):
        result, plan = engine.profile("MATCH (a:AS) RETURN a.asn ORDER BY a.asn")
        assert len(result) == 10
        assert plan.operator == "Query"
        assert plan.rows == 10
        operators = [node.operator for node in plan.walk()]
        assert operators == ["Query", "Match", "Return"]

    def test_rows_per_operator(self, engine):
        _, plan = engine.profile("MATCH (a:AS) RETURN a.asn LIMIT 3")
        match, ret = plan.children
        assert match.rows == 10
        assert ret.rows == 3
        assert "LIMIT" in ret.detail

    def test_index_seek_attributed_to_match(self, engine):
        _, plan = engine.profile("MATCH (a:AS {asn: 64500}) RETURN a")
        (match, _) = plan.children
        assert "index seek" in match.detail
        assert match.hits.get("index_seek", 0) >= 1
        assert "label_scan" not in match.hits

    def test_label_scan_attributed_to_match(self, engine):
        _, plan = engine.profile("MATCH (p:Prefix) RETURN count(p)")
        (match, _) = plan.children
        assert "label scan" in match.detail
        assert match.hits.get("label_scan", 0) >= 1

    def test_expand_hits_on_traversal(self, engine):
        _, plan = engine.profile(
            "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN count(*)"
        )
        (match, _) = plan.children
        assert match.hits.get("expand", 0) >= 10

    def test_root_aggregates_hits_and_time(self, engine):
        _, plan = engine.profile("MATCH (a:AS)-[:ORIGINATE]->(p) RETURN count(*)")
        child_hits = sum(c.total_hits for c in plan.children)
        assert plan.total_hits == child_hits
        assert plan.seconds >= max(c.seconds for c in plan.children)

    def test_union_parts_profiled(self, engine):
        _, plan = engine.profile(
            "MATCH (a:AS) RETURN a.asn AS x UNION MATCH (p:Prefix) RETURN p.prefix AS x"
        )
        parts = [n for n in plan.walk() if n.operator == "UnionPart"]
        assert [p.detail for p in parts] == ["1/2", "2/2"]
        assert all(any(c.operator == "Match" for c in p.children) for p in parts)

    def test_render_shape(self, engine):
        _, plan = engine.profile("MATCH (a:AS {asn: 64501}) RETURN a.asn")
        text = plan.render()
        lines = text.splitlines()
        assert lines[0].startswith("+Query rows=1")
        assert any("Match" in line and "hits{" in line for line in lines)
        assert all("time=" in line for line in lines)

    def test_to_dict_round_trip(self, engine):
        _, plan = engine.profile("MATCH (a:AS) RETURN count(a)")
        data = plan.to_dict()
        assert data["operator"] == "Query"
        assert {c["operator"] for c in data["children"]} == {"Match", "Return"}
        for child in data["children"]:
            assert set(child) == {
                "operator", "detail", "rows", "time_ms", "hits", "children",
            }

    def test_unprofiled_run_collects_nothing(self, engine):
        result = engine.run("MATCH (a:AS) RETURN count(a)")
        assert result.value() == 10  # no profiler, no error, no state leak
        assert current_collector() is None

    def test_profile_of_write_query(self, engine):
        result, plan = engine.profile("CREATE (t:Tag {label: 'x'}) RETURN t.label")
        assert result.stats.nodes_created == 1
        operators = [node.operator for node in plan.walk()]
        assert "Create" in operators
        assert plan.hits.get("node_created", 0) == 1


class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        assert not log.should_record(0.4999)
        assert log.should_record(0.5)

    def test_record_entry_shape(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        entry = log.record(
            "MATCH (a) RETURN a", 1.5,
            parameters={"asn": 1}, trace_id="abc", plan={"operator": "Query"},
        )
        assert entry["elapsed_ms"] == 1500.0
        assert entry["trace_id"] == "abc"
        assert entry["params_hash"] == params_hash({"asn": 1})
        assert entry["plan"] == {"operator": "Query"}
        assert entry["error"] is None
        assert len(log) == 1

    def test_ring_bounded(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for i in range(5):
            log.record(f"q{i}", 0.1)
        snapshot = log.snapshot()
        assert [e["query"] for e in snapshot["entries"]] == ["q2", "q3", "q4"]
        assert snapshot["recorded_total"] == 5

    def test_query_text_truncated(self):
        log = SlowQueryLog()
        entry = log.record("x" * (MAX_QUERY_CHARS + 100), 2.0)
        assert len(entry["query"]) == MAX_QUERY_CHARS

    def test_params_hash_stable_and_order_free(self):
        assert params_hash({"a": 1, "b": 2}) == params_hash({"b": 2, "a": 1})
        assert params_hash({"a": 1}) != params_hash({"a": 2})
        assert params_hash(None) == params_hash({}) == "-"

    def test_format_text(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        assert log.format_text() == ""
        log.record("MATCH (a)\nRETURN a", 1.0, trace_id="t1")
        log.record("RETURN 1", 0.2, error="timeout")
        text = log.format_text()
        assert "2 slow queries" in text
        assert "MATCH (a) RETURN a" in text  # newlines collapsed
        assert "[timeout]" in text
        assert "trace=t1" in text
