"""Knowledge-graph applications: reasoning, embeddings, centrality."""

import pytest

from repro.analysis import (
    InferenceRule,
    as_pagerank,
    rank_agreement,
    run_inference,
    train_transe,
)
from repro.analysis.embeddings import TransEConfig, extract_triples
from repro.core import IYP, Reference
from repro.graphdb import GraphStore


@pytest.fixture()
def reasoning_iyp():
    iyp = IYP()
    ref = Reference("T", "test.data")
    a = iyp.get_node("AS", asn=1)
    b = iyp.get_node("AS", asn=2)
    org = iyp.get_node("Organization", name="MegaCorp")
    prefix = iyp.get_node("Prefix", prefix="10.0.0.0/8")
    ip = iyp.get_node("IP", ip="10.1.2.3")
    country = iyp.get_node("Country", country_code="US")
    iyp.add_link(a, "SIBLING_OF", b, reference=ref)
    iyp.add_link(a, "MANAGED_BY", org, reference=ref)
    iyp.add_link(a, "ORIGINATE", prefix, reference=ref)
    iyp.add_link(ip, "PART_OF", prefix, reference=ref)
    iyp.add_link(prefix, "COUNTRY", country, reference=ref)
    return iyp


class TestReasoning:
    def test_sibling_symmetry(self, reasoning_iyp):
        created = run_inference(reasoning_iyp)
        assert created["sibling_symmetry"] == 1
        assert reasoning_iyp.run(
            "MATCH (:AS {asn:2})-[:SIBLING_OF]->(b:AS {asn:1}) RETURN count(*)"
        ).value() == 1

    def test_prefix_org_inferred(self, reasoning_iyp):
        run_inference(reasoning_iyp)
        assert reasoning_iyp.run(
            "MATCH (:Prefix)-[:MANAGED_BY]->(o:Organization) RETURN o.name"
        ).value() == "MegaCorp"

    def test_ip_country_inherited(self, reasoning_iyp):
        run_inference(reasoning_iyp)
        assert reasoning_iyp.run(
            "MATCH (:IP {ip:'10.1.2.3'})-[:COUNTRY]->(c) RETURN c.country_code"
        ).value() == "US"

    def test_inferred_links_carry_provenance(self, reasoning_iyp):
        run_inference(reasoning_iyp)
        refs = reasoning_iyp.run(
            "MATCH ()-[r]->() WHERE r.reference_name STARTS WITH 'iyp.inference' "
            "RETURN collect(DISTINCT r.reference_name)"
        ).value()
        assert "iyp.inference.sibling_symmetry" in refs

    def test_idempotent(self, reasoning_iyp):
        run_inference(reasoning_iyp)
        before = reasoning_iyp.store.relationship_count
        second = run_inference(reasoning_iyp)
        assert reasoning_iyp.store.relationship_count == before
        assert sum(second.values()) == 0

    def test_custom_rule(self, reasoning_iyp):
        rule = InferenceRule(
            name="as_country_via_prefix",
            description="An AS operates in the country of its prefixes.",
            query="""
                MATCH (a:AS)-[:ORIGINATE]->(:Prefix)-[:COUNTRY]->(c:Country)
                WHERE NOT (a)-[:COUNTRY]-(:Country)
                RETURN DISTINCT a AS start, c AS end
            """,
            rel_type="COUNTRY",
        )
        created = run_inference(reasoning_iyp, rules=(rule,))
        assert created["as_country_via_prefix"] == 1

    def test_runs_on_full_graph(self, small_iyp):
        # On the fully built graph, inference adds real knowledge.
        created = run_inference(small_iyp)
        assert created["ip_country"] > 0
        assert created["prefix_org"] > 0


def _toy_store() -> GraphStore:
    """Two clusters of ASes sharing an organization each."""
    store = GraphStore()
    orgs = [store.create_node({"Organization"}, {"name": f"org{i}"}) for i in range(2)]
    for i in range(10):
        a = store.create_node({"AS"}, {"asn": i})
        store.create_relationship(a.id, "MANAGED_BY", orgs[i % 2].id)
    return store


class TestEmbeddings:
    def test_extract_triples_dedups_parallel_links(self):
        store = GraphStore()
        a = store.create_node({"AS"}, {"asn": 1})
        b = store.create_node({"Prefix"}, {"prefix": "x"})
        store.create_relationship(a.id, "ORIGINATE", b.id, {"reference_name": "p"})
        store.create_relationship(a.id, "ORIGINATE", b.id, {"reference_name": "q"})
        assert extract_triples(store) == [(a.id, "ORIGINATE", b.id)]

    def test_training_is_deterministic(self):
        store = _toy_store()
        config = TransEConfig(dimensions=8, epochs=5, seed=3)
        first = train_transe(store, config)
        second = train_transe(store, config)
        assert (first.entity_vectors == second.entity_vectors).all()

    def test_true_triples_score_above_false(self):
        store = _toy_store()
        model = train_transe(store, TransEConfig(dimensions=16, epochs=60, seed=1))
        orgs = {n.properties["name"]: n for n in store.nodes_with_label("Organization")}
        ases = {n.properties["asn"]: n for n in store.nodes_with_label("AS")}
        true_score = model.score(ases[0].id, "MANAGED_BY", orgs["org0"].id)
        false_score = model.score(ases[0].id, "MANAGED_BY", orgs["org1"].id)
        assert true_score > false_score

    def test_link_prediction_recovers_org(self):
        store = _toy_store()
        model = train_transe(store, TransEConfig(dimensions=16, epochs=60, seed=1))
        ases = {n.properties["asn"]: n for n in store.nodes_with_label("AS")}
        orgs = {n.properties["name"]: n for n in store.nodes_with_label("Organization")}
        predictions = [p for p, _ in model.predict_tails(ases[2].id, "MANAGED_BY", k=3)]
        assert orgs["org0"].id in predictions

    def test_nearest_entities_excludes_self(self):
        store = _toy_store()
        model = train_transe(store, TransEConfig(dimensions=8, epochs=5))
        anchor = store.nodes_with_label("AS")[0]
        neighbours = model.nearest_entities(anchor.id, k=3)
        assert len(neighbours) == 3
        assert all(node_id != anchor.id for node_id, _ in neighbours)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            train_transe(GraphStore())

    def test_trains_on_small_iyp(self, small_iyp):
        model = train_transe(
            small_iyp.store, TransEConfig(dimensions=8, epochs=1, batch_size=4096)
        )
        assert model.n_entities == small_iyp.store.node_count
        assert model.n_relations >= 20


class TestCentrality:
    def test_pagerank_sums_to_one(self, small_iyp):
        scores = as_pagerank(small_iyp)
        assert scores
        assert abs(sum(scores.values()) - 1.0) < 1e-6

    def test_tier1s_rank_high(self, small_iyp, small_world):
        scores = as_pagerank(small_iyp)
        ordered = sorted(scores, key=lambda asn: -scores[asn])
        top = set(ordered[:30])
        tier1 = {
            asn for asn, info in small_world.ases.items() if info.category == "Tier1"
        }
        # Most tier-1s are in the PageRank top-30.
        assert len(top & tier1) >= len(tier1) // 2

    def test_rank_agreement_positive(self, small_iyp):
        agreement = rank_agreement(small_iyp, top_k=20)
        assert 0.0 < agreement <= 1.0

    def test_empty_graph(self, empty_iyp):
        assert as_pagerank(empty_iyp) == {}
        assert rank_agreement(empty_iyp) == 0.0
