#!/usr/bin/env python3
"""Reproduction of the RiPKI study (paper Section 4.1, Table 2).

The equivalent of the paper's first Jupyter notebook: builds the
knowledge graph, re-runs the RiPKI analysis, and prints the paper's
Table 2 next to the measured values, plus the Section 4.1.4 per-tag
breakdown and the Section 5.1.2 domain-weighted extension.

Run:  python examples/ripki_study.py [--scale small|medium]
"""

import argparse

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_ripki_study

PAPER_2015 = {"RPKI Invalid": 0.09, "RPKI covered": 6.0, "Top 100k": 4.0,
              "Bottom 100k": 5.5, "CDN": 0.9}
PAPER_2024 = {"RPKI Invalid": 0.12, "RPKI covered": 52.2, "Top 100k": 55.2,
              "Bottom 100k": 61.5, "CDN": 68.4}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium"], default="small")
    args = parser.parse_args()
    config = WorldConfig.small() if args.scale == "small" else WorldConfig.medium()

    print(f"Building world ({args.scale}) and knowledge graph...")
    world = build_world(config)
    iyp, report = build_iyp(world)
    print(f"  graph: {report.nodes:,} nodes / {report.relationships:,} rels")

    print("Running the RiPKI reproduction queries...")
    results = run_ripki_study(iyp)
    measured = results.table2_row()

    print("\nTable 2 - RPKI status of prefixes hosting popular domains (%)")
    header = ["", *PAPER_2024.keys()]
    print("  " + " | ".join(f"{h:>14}" for h in header))
    for label, row in (
        ("RiPKI (2015)", PAPER_2015),
        ("IYP (2024)", PAPER_2024),
        ("this repro", {k: round(v, 2) for k, v in measured.items()}),
    ):
        cells = [label, *(str(v) for v in row.values())]
        print("  " + " | ".join(f"{c:>14}" for c in cells))

    print(
        f"\nInvalids caused by a wrong maxLength: "
        f"{results.invalid_maxlen_share:.0f}% (paper: 75%)"
    )

    print("\nSection 4.1.4 - RPKI coverage by AS classification tag (%):")
    for tag, value in sorted(results.coverage_by_tag.items(), key=lambda kv: kv[1]):
        print(f"  {tag:<50} {value:>6.1f}")

    print("\nSection 5.1.2 - consolidation effect:")
    print(f"  prefixes RPKI-covered:          {results.covered_pct:6.1f}%  (paper 52.2%)")
    print(f"  domains on covered prefixes:    {results.domains_covered_pct:6.1f}%  (paper 78.8%)")
    print(f"  CDN prefixes covered:           {results.cdn_pct:6.1f}%  (paper 68.4%)")
    print(f"  CDN-hosted domains covered:     {results.cdn_domains_covered_pct:6.1f}%  (paper 96%)")


if __name__ == "__main__":
    main()
