#!/usr/bin/env python3
"""Longitudinal analysis across snapshots (paper Section 7).

The paper describes running one IYP instance per point in time and
merging results by hand.  This example does that workflow with the
library: build a 2015-era and a 2024-era knowledge graph, register
them as a labelled series, run the same queries against both, and diff
the snapshots structurally.

Run:  python examples/longitudinal_analysis.py
"""

from repro.core import snapshot_diff
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_ripki_study
from repro.studies.longitudinal import SnapshotSeries


def main() -> None:
    series = SnapshotSeries()
    configs = {
        "2015": WorldConfig.year2015(scale=0.1, n_domains=1500, n_ases=250),
        "2024": WorldConfig(seed=20240501, scale=0.1, n_domains=1500, n_ases=250),
    }
    for label, config in configs.items():
        print(f"Building the {label}-era knowledge graph...")
        iyp, report = build_iyp(build_world(config))
        print(f"  {report.nodes:,} nodes / {report.relationships:,} rels")
        series.add(label, iyp)

    print("\nOne query, every era - RPKI coverage of announced prefixes (%):")
    coverage = series.metric(
        """
        MATCH (p:Prefix)
        OPTIONAL MATCH (p)-[:CATEGORIZED]-(t:Tag)
        WHERE t.label IN ['RPKI Valid', 'RPKI Invalid',
                          'RPKI Invalid,more-specific']
        WITH p, count(t) AS tags
        RETURN round(100.0 * sum(CASE WHEN tags > 0 THEN 1 ELSE 0 END)
                     / count(p), 1)
        """
    )
    for label, value in coverage.items():
        print(f"  {label}: {value}%")

    print("\nA whole study, every era - Table 2:")
    tables = series.study(run_ripki_study)
    for label, results in tables.items():
        row = {k: round(v, 1) for k, v in results.table2_row().items()}
        print(f"  {label}: {row}")

    print("\nStructural diff between the eras (by entity identity):")
    diff = snapshot_diff(
        series.snapshots["2015"].store, series.snapshots["2024"].store
    )
    summary = diff.summary()
    for section in ("nodes_added", "relationships_added"):
        top = sorted(summary[section].items(), key=lambda kv: -kv[1])[:5]
        print(f"  {section}: " + ", ".join(f"{k} +{v}" for k, v in top))
    print(
        "\n(The eras are different worlds, so the diff is large - in the "
        "paper's\nweekly-snapshot setting the same tool shows exactly what "
        "changed in a week.)"
    )


if __name__ == "__main__":
    main()
