#!/usr/bin/env python3
"""Local-instance workflow (Section 6.1 "Lessons learned").

Mirrors the paper's recommended way of working with IYP locally:

1. build (or download) a snapshot of the knowledge graph;
2. load it into a local instance;
3. add private annotations (tag the resources under study);
4. run analysis queries that mix public data with the private tags;
5. share the *queries*, not the data (Section 6.2).

Run:  python examples/local_instance.py
"""

import tempfile
from pathlib import Path

from repro.core import IYP
from repro.graphdb import load_snapshot, save_snapshot
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world

STUDY_TAG = "My Hosting Study"

# The query a paper would publish (Section 6.2: share queries + snapshot
# date, and anyone can regenerate the numbers).
PUBLISHED_QUERY = """
MATCH (d:DomainName)-[:CATEGORIZED]-(:Tag {label: $tag})
MATCH (d)-[:PART_OF]-(:HostName)-[:RESOLVES_TO]-(:IP)
      -[:PART_OF]-(:Prefix)-[:ORIGINATE]-(a:AS)
RETURN a.asn AS asn, count(DISTINCT d) AS domains
ORDER BY domains DESC LIMIT 5
"""


def main() -> None:
    print("Building the public knowledge graph and writing a snapshot...")
    world = build_world(WorldConfig.small())
    iyp, report = build_iyp(world)
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "iyp-2024-05-01.json.gz"
        save_snapshot(iyp.store, snapshot_path)
        size_mb = snapshot_path.stat().st_size / 1e6
        print(f"  snapshot: {snapshot_path.name} ({size_mb:.1f} MB, "
              f"{report.nodes:,} nodes)")

        print("\nStarting a 'local instance' from the snapshot...")
        local = IYP(load_snapshot(snapshot_path))

    print("Tagging the resources under study (private annotation)...")
    result = local.run(
        """
        MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)
        WHERE r.rank <= 100
        MERGE (t:Tag {label: $tag})
        MERGE (d)-[:CATEGORIZED {reference_name:'local.study'}]->(t)
        """,
        {"tag": STUDY_TAG},
    )
    print(f"  relationships created: {result.stats.relationships_created}")

    print("\nRunning the published query against local + private data:")
    result = local.run(PUBLISHED_QUERY, {"tag": STUDY_TAG})
    print(result.to_table())

    print(
        "\nThe public instance is untouched; re-running the same query on a "
        "newer\nsnapshot refreshes the results - the paper's on-demand "
        "reproducibility."
    )


if __name__ == "__main__":
    main()
