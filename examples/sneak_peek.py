#!/usr/bin/env python3
"""The Figure 4 "sneak peek": one popular domain across many datasets.

Walks the neighbourhood of a top-ranked domain — zone, hostname,
resolution chain, prefix, origin AS, RPKI tags, nameservers, querying
ASes — reports which datasets contributed, and writes a Graphviz DOT
rendering of the subgraph (the reproduction of the paper's figure).

Run:  python examples/sneak_peek.py [--domain NAME] [--dot OUTPUT.dot]
"""

import argparse

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import sneak_peek
from repro.studies.sneak_peek import sneak_peek_dot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", help="domain to inspect (default: rank 1)")
    parser.add_argument("--dot", default="sneak_peek.dot",
                        help="write the Graphviz rendering here")
    args = parser.parse_args()

    print("Building world and knowledge graph...")
    world = build_world(WorldConfig.small())
    iyp, _report = build_iyp(world)
    domain = args.domain or world.tranco[0]

    peek = sneak_peek(iyp, domain)
    print(f"\nNeighbourhood of {domain!r}:")
    print(f"  datasets fused: {peek.dataset_count} "
          f"(paper's example: 13)")
    for name in sorted(peek.datasets):
        print(f"    - {name}")

    print("\nResolution chain (top rows):")
    for row in peek.resolution[:4]:
        tags = ", ".join(row["prefix_tags"]) or "-"
        print(f"  {row['hostname']} -> {row['ip']} -> {row['prefix']} "
              f"(AS {row['origins']}; tags: {tags})")

    print("\nNameserver branch:")
    for row in peek.nameservers[:4]:
        print(f"  {row['ns']} -> {row['ips']} (hosted in AS {row['hosting_ases']})")

    dot = sneak_peek_dot(iyp, domain)
    with open(args.dot, "w", encoding="utf-8") as handle:
        handle.write(dot)
    print(f"\nGraphviz rendering written to {args.dot} "
          f"({dot.count('--')} edges); render with: dot -Tsvg -Kneato {args.dot}")


if __name__ == "__main__":
    main()
