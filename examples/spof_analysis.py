#!/usr/bin/env python3
"""Single points of failure in the DNS chain (Section 5.2, Figures 5-6).

Walks direct, third-party, and hierarchical dependencies of every
ranked domain and renders the two figures as ASCII stacked bars.

Run:  python examples/spof_analysis.py [--scale small|medium]
"""

import argparse

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_spof_study

_BAR_WIDTH = 44


def _bar(counts: dict, total_max: int) -> str:
    segments = [
        ("#", counts["direct"]),
        ("+", counts["third_party"]),
        (".", counts["hierarchical"]),
    ]
    total = sum(value for _, value in segments) or 1
    width = max(1, int(_BAR_WIDTH * total / max(total_max, 1)))
    out = []
    for char, value in segments:
        out.append(char * max(0, int(round(width * value / total))))
    return "".join(out)[:_BAR_WIDTH]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium"], default="small")
    args = parser.parse_args()
    config = WorldConfig.small() if args.scale == "small" else WorldConfig.medium()

    print(f"Building world ({args.scale}) and knowledge graph...")
    world = build_world(config)
    iyp, _report = build_iyp(world)

    print("Walking DNS dependency chains...")
    results = run_spof_study(iyp)
    print(
        f"  {results.domains_analyzed:,} domains analyzed; "
        f"direct/{results.domains_with['direct']:,} "
        f"third-party/{results.domains_with['third_party']:,} "
        f"hierarchical/{results.domains_with['hierarchical']:,}"
    )

    legend = "# direct   + third-party   . hierarchical"
    print(f"\nFigure 5 - country-based SPoF   [{legend}]")
    top_countries = results.top_countries(12)
    biggest = max(sum(c.values()) for _, c in top_countries)
    for country, counts in top_countries:
        total = sum(counts.values())
        print(f"  {country:<3} {total:>7,} |{_bar(counts, biggest)}")

    print(f"\nFigure 6 - AS-based SPoF        [{legend}]")
    top_ases = results.top_ases(12)
    biggest = max(sum(c.values()) for _, c in top_ases)
    for asn, counts in top_ases:
        name = results.as_names.get(asn, f"AS{asn}")
        total = sum(counts.values())
        print(f"  {name:<22.22} {total:>7,} |{_bar(counts, biggest)}")

    print(
        "\nReading the figures: an AS whose bar is mostly '+' plays the "
        "Akamai role\n(hosting DNS for DNS-hosting companies); a bar that "
        "is mostly '#' plays the\nGoDaddy role (DNS for end customers) - "
        "exactly the paper's Figure 6 contrast."
    )


if __name__ == "__main__":
    main()
