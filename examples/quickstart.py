#!/usr/bin/env python3
"""Quickstart: build a small Internet Yellow Pages and query it.

Builds a small synthetic Internet, imports all 46 datasets into the
knowledge graph, and runs the paper's semantic-search examples
(Figure 3 / Listings 1-3) plus a few exploratory queries.

Run:  python examples/quickstart.py
"""

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import queries


def main() -> None:
    print("Building the synthetic Internet (small scale)...")
    world = build_world(WorldConfig.small())
    print(
        f"  {len(world.ases)} ASes, {len(world.prefixes)} prefixes, "
        f"{len(world.domains)} ranked domains"
    )

    print("Importing all 46 datasets into the knowledge graph...")
    iyp, report = build_iyp(world)
    print(
        f"  {report.nodes:,} nodes / {report.relationships:,} relationships "
        f"in {report.total_seconds:.1f}s"
    )

    summary = iyp.summary()
    print("\nNode labels:")
    for label, count in summary["labels"].items():
        print(f"  :{label:<25} {count:>7,}")

    print("\n--- Listing 1: all originating ASes " + "-" * 20)
    result = iyp.run(queries.LISTING_1)
    print(f"{len(result)} ASes originate prefixes; first five: "
          f"{sorted(result.column())[:5]}")

    print("\n--- Listing 2: MOAS prefixes " + "-" * 27)
    result = iyp.run(queries.LISTING_2)
    print(f"{len(result)} multi-origin prefixes")
    print(result.to_table(max_rows=5))

    print("\n--- Listing 3: popular hostnames of one org, RPKI-valid ----")
    # Pick the busiest hosting organization as the anchor.
    org = iyp.run(
        """
        MATCH (o:Organization)-[:MANAGED_BY]-(:AS)-[:ORIGINATE]-(:Prefix)
              -[:CATEGORIZED]-(:Tag {label:'RPKI Valid'})
        RETURN o.name AS org, count(*) AS n ORDER BY n DESC LIMIT 1
        """
    ).single()["org"]
    result = iyp.run(queries.LISTING_3, {"org_name": org})
    print(f"org = {org!r}: {len(result)} hostnames; first five:")
    for name in sorted(result.column())[:5]:
        print(f"  {name}")

    print("\n--- Exploration: top-5 ASes by IXP memberships " + "-" * 10)
    result = iyp.run(
        """
        MATCH (a:AS)-[:MEMBER_OF]-(x:IXP)
        MATCH (a)-[:NAME]-(n:Name)
        RETURN a.asn AS asn, head(collect(DISTINCT n.name)) AS name,
               count(DISTINCT x) AS ixps
        ORDER BY ixps DESC, asn LIMIT 5
        """
    )
    print(result.to_table())


if __name__ == "__main__":
    main()
