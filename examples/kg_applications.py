#!/usr/bin/env python3
"""Knowledge-graph applications (paper Section 10, Conclusion).

The paper closes by naming the applications IYP paves the way for:
knowledge reasoning, recommender systems, and knowledge-graph
embeddings.  This example runs working versions of all three on the
synthetic knowledge graph:

1. rule-based inference materializes implicit links;
2. TransE embeddings are trained on the graph's triples;
3. embedding-space nearest neighbours act as a simple recommender
   ("networks similar to this one"), and PageRank over the AS subgraph
   is compared against the imported CAIDA ASRank.

Run:  python examples/kg_applications.py
"""

from repro.analysis import (
    TransEConfig,
    as_pagerank,
    rank_agreement,
    run_inference,
    train_transe,
)
from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world


def main() -> None:
    print("Building world and knowledge graph...")
    world = build_world(WorldConfig.small())
    iyp, report = build_iyp(world)
    print(f"  {report.nodes:,} nodes / {report.relationships:,} relationships")

    print("\n1. Knowledge reasoning (rule-based inference)")
    created = run_inference(iyp)
    for rule, count in created.items():
        print(f"   {rule:<22} +{count:,} links")
    example = iyp.run(
        """
        MATCH (i:IP)-[r:COUNTRY {reference_name:'iyp.inference.ip_country'}]
              ->(c:Country)
        RETURN i.ip AS ip, c.country_code AS cc LIMIT 3
        """
    )
    print("   e.g. inferred IP countries:")
    for row in example:
        print(f"     {row['ip']:<18} -> {row['cc']}")

    print("\n2. Knowledge-graph embeddings (TransE)")
    model = train_transe(
        iyp.store, TransEConfig(dimensions=24, epochs=8, batch_size=4096)
    )
    print(f"   trained {model.n_entities:,} entity / {model.n_relations} "
          f"relation vectors")

    print("\n3. Recommender: ASes nearest to the top CDN in embedding space")
    cdn_asn = next(
        asn for asn, info in world.ases.items()
        if info.category == "Content Delivery Network"
    )
    cdn_node = iyp.store.find_nodes("AS", "asn", cdn_asn)[0]
    print(f"   anchor: AS{cdn_asn} ({world.ases[cdn_asn].name})")
    for node_id, distance in model.nearest_entities(cdn_node.id, k=5):
        node = iyp.store.get_node(node_id)
        label = sorted(node.labels)[0]
        key = node.properties.get("asn") or node.properties.get(
            "name", node.properties.get("prefix", "?")
        )
        print(f"     d={distance:.3f}  :{label} {key}")

    print("\n4. Centrality: PageRank over the AS subgraph vs CAIDA ASRank")
    scores = as_pagerank(iyp)
    top = sorted(scores, key=lambda asn: -scores[asn])[:5]
    for asn in top:
        print(f"   AS{asn:<8} pagerank={scores[asn]:.4f} "
              f"asrank={world.ases[asn].rank} ({world.ases[asn].name})")
    agreement = rank_agreement(iyp, top_k=20)
    print(f"   top-20 agreement between the two rankings: {agreement:.0%}")


if __name__ == "__main__":
    main()
