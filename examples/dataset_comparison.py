#!/usr/bin/env python3
"""Dataset comparison (Section 6.1): find a data bug by diffing datasets.

BGPKIT pfx2asn and IHR ROV both map prefixes to origin ASes.  The
synthetic world injects a wrong-origin error into a fraction of the
BGPKIT IPv6 entries; this script finds it exactly the way the paper
describes: by querying the differences between the two datasets inside
the knowledge graph.

Run:  python examples/dataset_comparison.py
"""

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import compare_origin_datasets


def main() -> None:
    print("Building world and importing the two origin datasets...")
    world = build_world(WorldConfig.small())
    iyp, _report = build_iyp(
        world, dataset_names=["bgpkit.pfx2as", "ihr.rov"], postprocess=True
    )

    print("Comparing origin sets between bgpkit.pfx2as and ihr.rov...")
    result = compare_origin_datasets(iyp)
    print(f"  prefixes compared:    {result.prefixes_compared:,}")
    print(f"  disagreements found:  {result.total}")
    print(f"  IPv4 / IPv6 split:    {result.ipv4_count} / {result.ipv6_count}")

    if result.ipv6_dominated:
        print(
            "\nThe disagreement is concentrated in IPv6 prefixes - the same "
            "signature\nthe paper reports for the real BGPKIT bug.  "
            "Disagreeing prefixes:"
        )
        for entry in result.disagreements[:10]:
            print(
                f"  {entry['prefix']:<28} bgpkit={entry['bgpkit_origins']} "
                f"ihr={entry['ihr_origins']}"
            )
        print(
            "\nFollowing the paper's recommendation, this would now be "
            "reported to the\ndata provider so the originating dataset gets "
            "fixed (Section 2.3)."
        )
    else:
        print("No systematic bias found between the datasets.")


if __name__ == "__main__":
    main()
