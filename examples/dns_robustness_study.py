#!/usr/bin/env python3
"""Reproduction of the DNS Robustness study (Section 4.2, Tables 3-5).

The equivalent of the paper's second Jupyter notebook: nameserver best
practices for .com/.net/.org SLDs, shared-infrastructure grouping by
exact NS set / /24 / BGP prefix, and the all-TLD extension.

Run:  python examples/dns_robustness_study.py [--scale small|medium]
"""

import argparse

from repro.pipeline import build_iyp
from repro.simnet import WorldConfig, build_world
from repro.studies import run_dns_robustness_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium"], default="small")
    args = parser.parse_args()
    config = WorldConfig.small() if args.scale == "small" else WorldConfig.medium()

    print(f"Building world ({args.scale}) and knowledge graph...")
    world = build_world(config)
    iyp, report = build_iyp(world)
    print(f"  graph: {report.nodes:,} nodes / {report.relationships:,} rels")

    results = run_dns_robustness_study(iyp)

    print("\nTable 3 - DNS best practices (.com/.net/.org SLDs, %)")
    paper = {"Coverage": 49.0, "Discarded": 10.0, "Meet": 18.0,
             "Exceed": 67.0, "Not meet": 4.0, "In-zone glue": 76.0}
    measured = results.table3_row()
    print(f"  {'metric':<14} {'paper 2024':>10} {'this repro':>10}")
    for key in paper:
        print(f"  {key:<14} {paper[key]:>10.1f} {measured[key]:>10.1f}")

    scale_note = f"(this world has {len(world.tranco):,} domains; paper uses 1M)"
    print(f"\nTable 4 - shared infrastructure {scale_note}")
    print(f"  {'grouping':<28} {'median':>8} {'max':>8} {'groups':>8}")
    for label, stats in (
        (".com/.net/.org by NS set", results.cno_by_ns),
        (".com/.net/.org by /24", results.cno_by_slash24),
    ):
        print(f"  {label:<28} {stats.median:>8} {stats.maximum:>8} {stats.groups:>8}")

    print("\nTable 5 - extended grouping")
    for label, stats in (
        (".com/.net/.org by BGP prefix", results.cno_by_prefix),
        ("All Tranco by BGP prefix", results.all_by_prefix),
        ("All Tranco by NS set", results.all_by_ns),
    ):
        print(f"  {label:<28} {stats.median:>8} {stats.maximum:>8} {stats.groups:>8}")

    print(
        "\nConclusion check: grouping by BGP prefix is nearly identical to "
        "/24 grouping\n  (max {} vs {}), so the original paper's /24 "
        "assumption is sound - same\n  finding as Section 4.2.4.".format(
            results.cno_by_prefix.maximum, results.cno_by_slash24.maximum
        )
    )


if __name__ == "__main__":
    main()
